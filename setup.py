"""Legacy setup shim.

The offline environment lacks the ``wheel`` package needed for PEP 660
editable installs, so ``pip install -e .`` falls back to this classic
``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
