"""Platform static analysis: determinism, shard-race and protocol lints.

Run as ``python -m repro lint``.  Three passes over the platform's own
source tree, sharing one memoized AST core with :mod:`repro.vetting`:

- :mod:`repro.analysis.determinism` — wall clocks, unseeded randomness,
  ambient entropy, unstable hashes and unordered set iteration inside
  fingerprint-critical modules;
- :mod:`repro.analysis.shards` — mutable state crossing shard/region
  contexts without the epoch-quantized handoff or the accept queue;
- :mod:`repro.analysis.protocol` — every sent transport op
  cross-referenced against registered handlers, plus unguarded request
  paths and mixed send modes.

Suppression is two-tier: inline ``# lint: allow(rule) — why`` waivers
for sanctioned sites, and a checked-in ``lint-baseline.json`` for
accepted findings (matched line-independently).  See ``docs/lint.md``.
"""

from repro.analysis.baseline import Baseline, load_baseline
from repro.analysis.core import (
    FileAst,
    TreeIndex,
    clear_ast_caches,
    load_file,
    load_tree,
)
from repro.analysis.findings import (
    ERROR,
    INFO,
    RULES,
    WARNING,
    LintFinding,
    LintResult,
)
from repro.analysis.runner import (
    DETERMINISM_SCOPE,
    SHARD_SCOPE,
    LintConfig,
    run_lint,
)

__all__ = [
    "Baseline",
    "DETERMINISM_SCOPE",
    "ERROR",
    "FileAst",
    "INFO",
    "LintConfig",
    "LintFinding",
    "LintResult",
    "RULES",
    "SHARD_SCOPE",
    "TreeIndex",
    "WARNING",
    "clear_ast_caches",
    "load_baseline",
    "load_file",
    "load_tree",
    "run_lint",
]
