"""Shared static-analysis core: ASTs, import maps, waivers, caching.

Both analysis consumers sit on this module:

- :mod:`repro.vetting.footprint` (extension vetting) resolves dotted
  names, module import maps and class source through it;
- :mod:`repro.analysis` (the platform lints) walks whole source trees
  through :class:`FileAst` and :class:`TreeIndex`.

Everything here is memoized.  Class-level caches key on the class object
(sources cannot change under a live class); file-level caches key on
``(path, mtime, size)`` so a repeated ``python -m repro lint`` run — or
the warm half of the lint benchmark — re-parses nothing that did not
change on disk.
"""

from __future__ import annotations

import ast
import inspect
import re
import sys
import textwrap
from dataclasses import dataclass, field
from pathlib import Path

# -- dotted names -----------------------------------------------------------


def dotted_name(node: ast.AST) -> str | None:
    """Render a ``Name``/``Attribute`` chain as a dotted path, if pure.

    ``a.b.c`` becomes ``"a.b.c"``; anything with a call or subscript in
    the chain returns None (not a static name).
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# -- import maps ------------------------------------------------------------


def import_map_from_tree(tree: ast.AST) -> dict[str, str]:
    """local alias -> dotted origin, from a module AST's import statements.

    Matches the historical :mod:`repro.vetting.footprint` semantics:
    ``import a.b`` binds ``a`` -> ``a`` (the root package is what the
    name reaches), ``import a.b as c`` binds ``c`` -> ``a.b``, and
    ``from m import x as y`` binds ``y`` -> ``m.x``.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.partition(".")[0]
                target = alias.name if alias.asname else bound
                aliases[bound] = target
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                bound = alias.asname or alias.name
                aliases[bound] = f"{node.module}.{alias.name}"
    return aliases


_module_imports_cache: dict[str, dict[str, str]] = {}


def module_import_map(module_name: str) -> dict[str, str]:
    """Import aliases of a *live* module (by name in ``sys.modules``).

    The vetting path: a class's defining module is imported already, so
    its source is retrieved via :func:`inspect.getsource`.  Returns an
    empty map when the source is unavailable.
    """
    cached = _module_imports_cache.get(module_name)
    if cached is not None:
        return cached
    aliases: dict[str, str] = {}
    module = sys.modules.get(module_name)
    if module is not None:
        try:
            tree = ast.parse(inspect.getsource(module))
        except (OSError, TypeError, SyntaxError):
            tree = None
        if tree is not None:
            aliases = import_map_from_tree(tree)
    _module_imports_cache[module_name] = aliases
    return aliases


# -- class source -----------------------------------------------------------

_class_def_cache: dict[type, ast.ClassDef | None] = {}


def class_def(cls: type) -> ast.ClassDef | None:
    """The parsed ``ClassDef`` of ``cls``, or None when unavailable.

    Memoized per class object — the vetting hot path re-analyzes the
    same catalog classes on every publish→install round.
    """
    if cls in _class_def_cache:
        return _class_def_cache[cls]
    node: ast.ClassDef | None = None
    try:
        source = textwrap.dedent(inspect.getsource(cls))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError):
        tree = None
    if tree is not None:
        node = next(
            (item for item in tree.body if isinstance(item, ast.ClassDef)), None
        )
    _class_def_cache[cls] = node
    return node


# -- waivers ----------------------------------------------------------------

#: ``# lint: allow(rule-a, rule-b) — justification`` (justification
#: optional but strongly encouraged; the doc asks for one).
_WAIVER_RE = re.compile(r"#\s*lint:\s*allow\(([^)]*)\)")


def parse_waivers(source_lines: list[str]) -> dict[int, frozenset[str]]:
    """line number (1-based) -> rules waived on that line.

    A waiver covers the line it sits on *and* the following line, so
    both trailing-comment and comment-above styles work::

        self._handoffs.append(h)  # lint: allow(shard.cross-context-write) — the channel itself
        # lint: allow(det.wall-clock) — operator-facing timestamp only
        stamp = time.time()
    """
    waivers: dict[int, set[str]] = {}
    for index, line in enumerate(source_lines, start=1):
        match = _WAIVER_RE.search(line)
        if match is None:
            continue
        rules = {
            rule.strip() for rule in match.group(1).split(",") if rule.strip()
        }
        if not rules:
            continue
        waivers.setdefault(index, set()).update(rules)
        waivers.setdefault(index + 1, set()).update(rules)
    return {line: frozenset(rules) for line, rules in waivers.items()}


# -- files and trees --------------------------------------------------------


@dataclass
class FileAst:
    """One parsed source file plus the per-file facts every pass needs."""

    path: Path
    #: Path relative to the lint root, with forward slashes (stable in
    #: findings and baselines across platforms).
    rel_path: str
    tree: ast.Module
    source_lines: list[str] = field(default_factory=list)
    #: line -> waived rules (see :func:`parse_waivers`).
    waivers: dict[int, frozenset[str]] = field(default_factory=dict)
    #: Module-level ``NAME = "literal"`` string constants.
    constants: dict[str, str] = field(default_factory=dict)
    #: local alias -> dotted import origin.
    imports: dict[str, str] = field(default_factory=dict)

    def waived(self, rule: str, line: int) -> bool:
        return rule in self.waivers.get(line, frozenset())


def _module_constants(tree: ast.Module) -> dict[str, str]:
    constants: dict[str, str] = {}
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not isinstance(value, ast.Constant) or not isinstance(value.value, str):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                constants[target.id] = value.value
    return constants


#: (resolved path) -> (mtime_ns, size, FileAst) — the lint's memoized AST
#: cache.  Hit when the file is unchanged on disk.
_file_cache: dict[str, tuple[int, int, FileAst]] = {}


def load_file(path: Path, root: Path) -> FileAst | None:
    """Parse ``path`` (memoized by mtime+size); None on syntax errors."""
    resolved = str(path.resolve())
    try:
        stat = path.stat()
    except OSError:
        return None
    cached = _file_cache.get(resolved)
    if cached is not None and cached[0] == stat.st_mtime_ns and cached[1] == stat.st_size:
        return cached[2]
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source)
    except (OSError, SyntaxError):
        return None
    try:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    lines = source.splitlines()
    file_ast = FileAst(
        path=path,
        rel_path=rel,
        tree=tree,
        source_lines=lines,
        waivers=parse_waivers(lines),
        constants=_module_constants(tree),
        imports=import_map_from_tree(tree),
    )
    _file_cache[resolved] = (stat.st_mtime_ns, stat.st_size, file_ast)
    return file_ast


class TreeIndex:
    """All parsed files under one lint root, with cross-file resolution."""

    def __init__(self, root: Path, files: list[FileAst]):
        self.root = root
        self.files = files
        #: dotted module name fragments -> FileAst, for resolving
        #: ``from repro.discovery.registrar import OFFER`` style constants
        #: against the defining file.  Keyed by the rel path without the
        #: ``.py`` suffix, dots for slashes (``repro/midas/base`` maps
        #: from both ``repro.midas.base`` and ``midas.base``).
        self._by_module: dict[str, FileAst] = {}
        for file in files:
            stem = file.rel_path[:-3] if file.rel_path.endswith(".py") else file.rel_path
            if stem.endswith("/__init__"):
                stem = stem[: -len("/__init__")]
            dotted = stem.replace("/", ".")
            parts = dotted.split(".")
            for start in range(len(parts)):
                self._by_module.setdefault(".".join(parts[start:]), file)
            # Prefer the exact dotted name over suffix matches.
            self._by_module[dotted] = file

    def module(self, dotted: str) -> FileAst | None:
        """Best-effort lookup of a module by (suffix of a) dotted name."""
        while dotted:
            found = self._by_module.get(dotted)
            if found is not None:
                return found
            _, _, dotted = dotted.partition(".")
        return None

    def resolve_constant(self, file: FileAst, node: ast.expr) -> str | None:
        """The string value of ``node`` in ``file``'s namespace, if static.

        Handles literals, module-level constants, imported constants
        (``from m import OP``) and attribute reads of imported modules
        (``m.OP``) — the shapes transport operations take in this tree.
        """
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.JoinedStr):
            return None  # f-string: dynamic by construction
        dotted = dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if not rest:
            if head in file.constants:
                return file.constants[head]
            origin = file.imports.get(head)
            if origin is None:
                return None
            origin_module, _, symbol = origin.rpartition(".")
            defining = self.module(origin_module)
            if defining is not None and symbol in defining.constants:
                return defining.constants[symbol]
            return None
        origin = file.imports.get(head)
        if origin is None:
            return None
        defining = self.module(origin)
        if defining is not None and rest in defining.constants:
            return defining.constants[rest]
        return None


def discover_files(targets: list[Path]) -> list[Path]:
    """All ``*.py`` files under the targets, sorted, de-duplicated."""
    seen: set[str] = set()
    out: list[Path] = []
    for target in targets:
        if target.is_dir():
            candidates = sorted(target.rglob("*.py"))
        elif target.suffix == ".py":
            candidates = [target]
        else:
            candidates = []
        for path in candidates:
            resolved = str(path.resolve())
            if resolved in seen or "__pycache__" in path.parts:
                continue
            seen.add(resolved)
            out.append(path)
    return out


def load_tree(root: Path, targets: list[Path] | None = None) -> TreeIndex:
    """Parse every source file under ``root`` (or explicit targets)."""
    files = []
    for path in discover_files(targets if targets else [root]):
        file_ast = load_file(path, root)
        if file_ast is not None:
            files.append(file_ast)
    return TreeIndex(root, files)


def clear_ast_caches() -> None:
    """Drop all memoized parses (tests redefining sources use this)."""
    _module_imports_cache.clear()
    _class_def_cache.clear()
    _file_cache.clear()
