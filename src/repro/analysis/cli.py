"""``python -m repro lint`` — the platform lint's command line.

Exit codes follow the vetting CLI convention:

- ``0`` — clean (no gating findings);
- ``1`` — findings gate the run (errors, or warnings under ``--strict``);
- ``2`` — usage error (bad target, unreadable baseline).

``--json`` emits the full machine-readable report (the CI job uploads
it as an artifact on failure); ``--baseline`` points at an accepted-
findings file (``lint-baseline.json`` next to the first target is
auto-loaded when present); ``--write-baseline`` accepts the current
tree's findings wholesale — for bootstrapping only, justify entries by
editing the file afterwards.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    Baseline,
    load_baseline,
)
from repro.analysis.findings import LintResult
from repro.analysis.runner import LintConfig, run_lint


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Static analysis over the platform source tree: determinism, "
            "shard discipline, protocol completeness."
        ),
    )
    parser.add_argument(
        "targets",
        nargs="*",
        default=[],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the full report as JSON on stdout",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also gate on warnings (errors always gate)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=(
            "accepted-findings file (default: lint-baseline.json next to "
            "the first target, when present)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="write the current findings as the new baseline and exit 0",
    )
    return parser


def _default_targets() -> list[Path]:
    here = Path.cwd()
    for candidate in (here / "src" / "repro", here / "repro"):
        if candidate.is_dir():
            return [candidate]
    return [here]


def _render_text(result: LintResult, strict: bool) -> str:
    lines = [finding.render() for finding in result.findings]
    for entry in result.stale_baseline:
        lines.append(
            f"stale baseline entry: {entry['rule']} {entry['path']} "
            f"{entry['key']!r} matched nothing (prune it)"
        )
    summary = result.as_dict()["summary"]
    verdict = "FAIL" if result.failed(strict) else "OK"
    lines.append(
        f"{verdict}: {summary['files_scanned']} files, "
        f"{summary['errors']} errors, {summary['warnings']} warnings, "
        f"{summary['info']} info, {summary['waived']} waived, "
        f"{summary['baselined']} baselined "
        f"({summary['elapsed_seconds']:.2f}s)"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    targets = [Path(t) for t in args.targets] or _default_targets()
    for target in targets:
        if not target.exists():
            print(f"repro lint: no such target: {target}", file=sys.stderr)
            return 2
    root = targets[0] if targets[0].is_dir() else targets[0].parent

    baseline = Baseline()
    if args.baseline is not None:
        baseline_path = Path(args.baseline)
        if not baseline_path.is_file():
            print(
                f"repro lint: no such baseline: {baseline_path}",
                file=sys.stderr,
            )
            return 2
        baseline = load_baseline(baseline_path)
    elif args.write_baseline is None:
        implicit = root / DEFAULT_BASELINE_NAME
        if implicit.is_file():
            baseline = load_baseline(implicit)

    config = LintConfig(root=root, targets=targets, baseline=baseline)
    result = run_lint(config)

    if args.write_baseline is not None:
        fresh = Baseline.from_findings(
            result.findings, justification="accepted at baseline creation"
        )
        fresh.save(Path(args.write_baseline))
        print(
            f"wrote {len(fresh.entries)} baseline entries to "
            f"{args.write_baseline}"
        )
        return 0

    if args.json:
        print(json.dumps(result.as_dict(), indent=2))
    else:
        print(_render_text(result, args.strict))

    # Info-only findings never gate; stale baseline entries gate under
    # --strict so the accepted set cannot silently rot.
    if result.failed(args.strict):
        return 1
    if args.strict and result.stale_baseline:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
