"""The shard-race detector: ownership discipline for sharded state.

The sharded kernel (:mod:`repro.fleet.regions`) keeps determinism by a
single rule: regions interact only through the epoch-quantized handoff
buffer (or, on the base station, through the pipeline's accept queue).
This pass checks the rule statically, per class:

1. Every method is assigned the set of **contexts** it can run in.
   Methods handed as callbacks to ``schedule``/``schedule_at`` on a
   *parameterized* simulator — ``self.simulator(region).schedule(...)``,
   ``kernel.schedule(region, ...)``, ``self._shards[i].schedule(...)`` —
   run in the context named by that routing expression (``sim:region``,
   ``shards[i]``).  Methods handed to ``handoff(...)`` run at the epoch
   barrier (sanctioned: they *passed through* the quantized channel);
   methods handed to ``submit(...)`` run via the accept queue
   (sanctioned likewise).  Everything else — direct calls, callbacks on
   the object's own un-parameterized simulator — is the **home**
   context.  Contexts propagate through the self-call graph.

2. Per method, the attributes of ``self`` it writes (assignment,
   augmented assignment, ``del``, and mutating method calls such as
   ``.append``/``.clear``/``.update``) and reads are collected.

3. An attribute **written** under two *different* parameterized contexts
   is a shard race (:data:`~repro.analysis.findings.RULE_CROSS_CONTEXT_WRITE`):
   two region heaps mutate one cell with no barrier between them.  An
   attribute written under one parameterized context and **read** under
   a different one is the stale-read variant
   (:data:`~repro.analysis.findings.RULE_CROSS_CONTEXT_READ`).

Contexts are compared *textually* (the unparsed routing expression), so
the detector is deliberately conservative: it only fires when two
provably different routing expressions touch the same attribute.  The
sanctioned channels themselves (the handoff buffer, the accept queue)
are annotated with inline waivers where they must mutate shared cells —
that is the point: every crossing is either quantized or justified.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis import findings as F
from repro.analysis.core import FileAst, dotted_name

#: Method-call names that mutate their receiver in place.
MUTATING_CALLS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "setdefault",
        "sort",
        "update",
    }
)

#: Scheduling callee names that establish a deferred context.
_SCHEDULERS = frozenset({"schedule", "schedule_at"})

HOME = "home"
BARRIER = "barrier"
QUEUE = "queue"

#: Contexts that never conflict: the home heap, the epoch barrier and
#: the accept queue are each serialized by construction.
SANCTIONED = frozenset({HOME, BARRIER, QUEUE})


@dataclass
class _MethodFacts:
    name: str
    lineno: int
    writes: dict[str, int] = field(default_factory=dict)  # attr -> line
    reads: dict[str, int] = field(default_factory=dict)
    self_calls: set[str] = field(default_factory=set)
    #: (context, line) pairs this method registers for *other* methods.
    registers: list[tuple[str, str, int]] = field(default_factory=list)
    #: Lines where the method reaches into a foreign ``_shards``.
    foreign_heap_reaches: list[int] = field(default_factory=list)


def _routing_context(call: ast.Call) -> str | None:
    """The context a ``schedule``-family call defers its callback into.

    Returns None when the call is not a scheduler; ``HOME`` when it
    schedules on an un-parameterized simulator.
    """
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr not in _SCHEDULERS:
        if isinstance(func, ast.Attribute) and func.attr == "handoff":
            return BARRIER
        if isinstance(func, ast.Attribute) and func.attr == "submit":
            return QUEUE
        return None
    receiver = func.value
    # self.simulator(region).schedule(...) / kernel.simulator(r).schedule_at
    if isinstance(receiver, ast.Call):
        inner = receiver.func
        if isinstance(inner, ast.Attribute) and inner.attr == "simulator" and receiver.args:
            return f"sim:{ast.unparse(receiver.args[0])}"
        return HOME
    # self._shards[i].schedule(...)
    if isinstance(receiver, ast.Subscript):
        base = dotted_name(receiver.value) or ast.unparse(receiver.value)
        if base.endswith("_shards") or base.endswith("shards"):
            return f"shards[{ast.unparse(receiver.slice)}]"
        return HOME
    # kernel.schedule(region, delay, fn) — region-routed by first arg.
    dotted = dotted_name(receiver)
    if dotted is not None and (dotted == "kernel" or dotted.endswith(".kernel")):
        if call.args:
            return f"sim:{ast.unparse(call.args[0])}"
    return HOME


def _callback_names(call: ast.Call) -> list[str]:
    """``self.<method>`` callables among the call's arguments."""
    names = []
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        if (
            isinstance(arg, ast.Attribute)
            and isinstance(arg.value, ast.Name)
            and arg.value.id == "self"
        ):
            names.append(arg.attr)
    return names


class _MethodVisitor(ast.NodeVisitor):
    def __init__(self, facts: _MethodFacts):
        self.facts = facts

    def visit_Call(self, node: ast.Call) -> None:
        context = _routing_context(node)
        if context is not None:
            for callback in _callback_names(node):
                self.facts.registers.append((context, callback, node.lineno))
        func = node.func
        if isinstance(func, ast.Attribute):
            # self.attr.append(...) → mutation of self.attr
            if func.attr in MUTATING_CALLS:
                receiver = func.value
                if (
                    isinstance(receiver, ast.Attribute)
                    and isinstance(receiver.value, ast.Name)
                    and receiver.value.id == "self"
                ):
                    self.facts.writes.setdefault(receiver.attr, node.lineno)
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and func.attr not in _SCHEDULERS
            ):
                self.facts.self_calls.add(func.attr)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                self.facts.writes.setdefault(node.attr, node.lineno)
            else:
                self.facts.reads.setdefault(node.attr, node.lineno)
        elif node.attr == "_shards" and isinstance(node.ctx, ast.Load):
            # Foreign heap reach: `something._shards` where something is
            # not self.  `self._shards` is the kernel's own state.
            if not (isinstance(node.value, ast.Name) and node.value.id == "self"):
                self.facts.foreign_heap_reaches.append(node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        target = node.target
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            self.facts.writes.setdefault(target.attr, node.lineno)
        self.generic_visit(node)


def _class_facts(node: ast.ClassDef) -> dict[str, _MethodFacts]:
    methods: dict[str, _MethodFacts] = {}
    for item in node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        facts = _MethodFacts(name=item.name, lineno=item.lineno)
        visitor = _MethodVisitor(facts)
        for statement in item.body:
            visitor.visit(statement)
        methods[item.name] = facts
    return methods


def _propagate_contexts(
    methods: dict[str, _MethodFacts]
) -> dict[str, set[str]]:
    """method name -> set of contexts it can run under."""
    contexts: dict[str, set[str]] = {name: set() for name in methods}
    # Seed: registrations made anywhere in the class.
    for facts in methods.values():
        for context, callback, _ in facts.registers:
            if callback in contexts:
                contexts[callback].add(context)
    # Methods never deferred run in the home context (direct calls).
    for name, facts in methods.items():
        if not contexts[name]:
            contexts[name].add(HOME)
    # Propagate through self-calls to a fixpoint: a helper called from a
    # deferred method inherits the deferred context.
    changed = True
    while changed:
        changed = False
        for name, facts in methods.items():
            for callee in facts.self_calls:
                if callee not in contexts:
                    continue
                before = len(contexts[callee])
                contexts[callee] |= contexts[name]
                if len(contexts[callee]) != before:
                    changed = True
    return contexts


def check_file(file: FileAst) -> list[F.LintFinding]:
    """All shard-discipline findings in one file (waivers not applied)."""
    out: list[F.LintFinding] = []
    for node in ast.walk(file.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        methods = _class_facts(node)
        contexts = _propagate_contexts(methods)

        for facts in methods.values():
            for line in facts.foreign_heap_reaches:
                out.append(
                    F.LintFinding(
                        rule=F.RULE_PRIVATE_HEAP_REACH,
                        severity=F.RULES[F.RULE_PRIVATE_HEAP_REACH][0],
                        path=file.rel_path,
                        line=line,
                        message=(
                            "reaches into a foreign kernel's _shards heaps; "
                            "cross-region work must go through schedule()/"
                            "handoff()"
                        ),
                        key=f"{node.name}.{facts.name}:_shards",
                    )
                )

        # attr -> {parameterized context -> (method, line)} for writes/reads.
        writes: dict[str, dict[str, tuple[str, int]]] = {}
        reads: dict[str, dict[str, tuple[str, int]]] = {}
        for name, facts in methods.items():
            parameterized = {
                ctx for ctx in contexts[name] if ctx not in SANCTIONED
            }
            for attr, line in facts.writes.items():
                for ctx in parameterized:
                    writes.setdefault(attr, {}).setdefault(ctx, (name, line))
            for attr, line in facts.reads.items():
                for ctx in parameterized:
                    reads.setdefault(attr, {}).setdefault(ctx, (name, line))

        for attr, by_context in sorted(writes.items()):
            if len(by_context) > 1:
                sites = ", ".join(
                    f"{method}() in context {ctx!r}"
                    for ctx, (method, _) in sorted(by_context.items())
                )
                _, (method, line) = sorted(by_context.items())[0]
                out.append(
                    F.LintFinding(
                        rule=F.RULE_CROSS_CONTEXT_WRITE,
                        severity=F.RULES[F.RULE_CROSS_CONTEXT_WRITE][0],
                        path=file.rel_path,
                        line=line,
                        message=(
                            f"self.{attr} is mutated from different shard "
                            f"contexts ({sites}) without the epoch-quantized "
                            "handoff or accept queue"
                        ),
                        key=f"{node.name}:{attr}",
                    )
                )
                continue
            # Single writer context: flag reads from *other* parameterized
            # contexts (stale-read across region heaps).
            writer_ctx = next(iter(by_context))
            for reader_ctx, (method, line) in sorted(
                reads.get(attr, {}).items()
            ):
                if reader_ctx != writer_ctx:
                    out.append(
                        F.LintFinding(
                            rule=F.RULE_CROSS_CONTEXT_READ,
                            severity=F.RULES[F.RULE_CROSS_CONTEXT_READ][0],
                            path=file.rel_path,
                            line=line,
                            message=(
                                f"self.{attr} is written in context "
                                f"{writer_ctx!r} but read by {method}() in "
                                f"context {reader_ctx!r}; pass it through a "
                                "handoff instead"
                            ),
                            key=f"{node.name}:{attr}:read",
                        )
                    )
    return out
