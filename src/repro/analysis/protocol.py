"""The protocol-completeness pass: every sent op meets a handler.

The request/reply transport (:mod:`repro.net.transport`) is stringly
typed: senders name an operation, receivers register a handler under
the same string, and nothing checks the two sides against each other.
A typo'd op, a handler that was never wired, or a send mode that skips
the dedup window all fail only at runtime — as a timeout, which the
resilience layer then dutifully retries.  This pass closes the loop
statically over the whole tree:

- **unhandled ops** — an operation sent via ``request``/``notify``/
  ``broadcast`` (or the resilient ``call``) that no file ever
  ``register``\\ s;
- **unguarded requests** — ``transport.request`` with no ``on_error``:
  the transport logs-and-swallows timeouts, so the caller never learns
  the request died.  Retried sends through
  :class:`repro.resilience.client.ResilientClient` are guarded by
  construction;
- **mixed send modes** — one op sent both through the request path
  (deduped by the at-most-once window, acked) and through
  ``notify``/``broadcast`` (request id ``""`` — *no* dedup): the
  handler must be idempotent, which deserves a waiver saying why;
- **dynamic ops** (info only) — op expressions the resolver cannot
  reduce to a string (f-strings, parameters): listed so a human can
  eyeball the dynamic surface, never gating.

Operation strings resolve through :meth:`TreeIndex.resolve_constant`:
literals, module constants, ``from m import OP`` and ``m.OP`` all reach
the defining assignment, so the cross-reference works across files.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis import findings as F
from repro.analysis.core import FileAst, TreeIndex, dotted_name

#: Receiver attribute names treated as "a transport object".
_TRANSPORT_NAMES = frozenset({"transport", "_transport"})
#: Receiver attribute names treated as "a resilient client".
_CLIENT_NAMES = frozenset({"client", "_client"})

#: Modes that go through the request path (dedup window, ack).
_REQUEST_MODES = frozenset({"request", "call"})
#: Modes with no request id and therefore no dedup.
_FIRE_AND_FORGET_MODES = frozenset({"notify", "broadcast"})


@dataclass
class SendSite:
    """One statically discovered operation send."""

    op: str | None  # None when not statically resolvable
    op_text: str  # source text of the op expression (for messages)
    mode: str  # request | notify | broadcast | call
    file: FileAst
    line: int
    qualname: str
    guarded: bool  # has on_error, or is a retried resilient call


@dataclass
class RegisterSite:
    """One statically discovered handler registration."""

    op: str | None
    op_text: str
    file: FileAst
    line: int
    qualname: str


def _receiver_kind(func: ast.Attribute) -> str | None:
    """'transport', 'client', or None for an attribute call's receiver."""
    dotted = dotted_name(func.value)
    if dotted is None:
        return None
    tail = dotted.rpartition(".")[2]
    if tail in _TRANSPORT_NAMES:
        return "transport"
    if tail in _CLIENT_NAMES:
        return "client"
    return None


def _has_on_error(call: ast.Call) -> bool:
    """True when the request passes an on_error callback (any form).

    ``transport.request(dest, op, body, on_reply, on_error, timeout)``:
    a fifth positional argument or an ``on_error=`` keyword counts, as
    long as it is not a literal ``None``.
    """
    for keyword in call.keywords:
        if keyword.arg == "on_error":
            return not (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is None
            )
    if len(call.args) >= 5:
        arg = call.args[4]
        return not (isinstance(arg, ast.Constant) and arg.value is None)
    return False


class _ProtocolVisitor(ast.NodeVisitor):
    def __init__(self, file: FileAst, tree_index: TreeIndex):
        self.file = file
        self.index = tree_index
        self.sends: list[SendSite] = []
        self.registers: list[RegisterSite] = []
        self._scope: list[str] = []

    def _qualname(self) -> str:
        return ".".join(self._scope) or "<module>"

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _op_expr(self, call: ast.Call, position: int) -> ast.expr | None:
        if len(call.args) > position:
            return call.args[position]
        for keyword in call.keywords:
            if keyword.arg == "operation":
                return keyword.value
        return None

    def visit_Call(self, node: ast.Call) -> None:
        self.generic_visit(node)
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        kind = _receiver_kind(func)
        if kind == "transport":
            if func.attr == "register" and node.args:
                expr = node.args[0]
                self.registers.append(
                    RegisterSite(
                        op=self.index.resolve_constant(self.file, expr),
                        op_text=ast.unparse(expr),
                        file=self.file,
                        line=node.lineno,
                        qualname=self._qualname(),
                    )
                )
            elif func.attr in ("request", "notify"):
                expr = self._op_expr(node, 1)
                if expr is None:
                    return
                self.sends.append(
                    SendSite(
                        op=self.index.resolve_constant(self.file, expr),
                        op_text=ast.unparse(expr),
                        mode=func.attr,
                        file=self.file,
                        line=node.lineno,
                        qualname=self._qualname(),
                        guarded=func.attr != "request" or _has_on_error(node),
                    )
                )
            elif func.attr == "broadcast":
                expr = self._op_expr(node, 0)
                if expr is None:
                    return
                self.sends.append(
                    SendSite(
                        op=self.index.resolve_constant(self.file, expr),
                        op_text=ast.unparse(expr),
                        mode="broadcast",
                        file=self.file,
                        line=node.lineno,
                        qualname=self._qualname(),
                        guarded=True,  # one-way by design: nothing to guard
                    )
                )
        elif kind == "client" and func.attr == "call":
            expr = self._op_expr(node, 1)
            if expr is None:
                return
            op = self.index.resolve_constant(self.file, expr)
            if op is None:
                # Other objects also expose .call (e.g. the remote-service
                # proxy, whose second argument is a body, not an op); only
                # a statically resolvable op marks a resilient send.
                return
            self.sends.append(
                SendSite(
                    op=op,
                    op_text=ast.unparse(expr),
                    mode="call",
                    file=self.file,
                    line=node.lineno,
                    qualname=self._qualname(),
                    guarded=True,  # retry + backoff + breaker by contract
                )
            )


def collect(tree: TreeIndex) -> tuple[list[SendSite], list[RegisterSite]]:
    """Every send and registration site across the tree, in file order."""
    sends: list[SendSite] = []
    registers: list[RegisterSite] = []
    for file in tree.files:
        visitor = _ProtocolVisitor(file, tree)
        visitor.visit(file.tree)
        sends.extend(visitor.sends)
        registers.extend(visitor.registers)
    return sends, registers


def check_tree(tree: TreeIndex) -> list[F.LintFinding]:
    """All protocol findings across the tree (waivers not applied)."""
    sends, registers = collect(tree)
    handled = {site.op for site in registers if site.op is not None}
    modes_by_op: dict[str, set[str]] = {}
    for site in sends:
        if site.op is not None:
            modes_by_op.setdefault(site.op, set()).add(site.mode)

    out: list[F.LintFinding] = []

    for site in registers:
        if site.op is None:
            out.append(
                F.LintFinding(
                    rule=F.RULE_DYNAMIC_OP,
                    severity=F.RULES[F.RULE_DYNAMIC_OP][0],
                    path=site.file.rel_path,
                    line=site.line,
                    message=(
                        f"handler registered under dynamic op "
                        f"{site.op_text!r}; unhandled-op analysis cannot "
                        "see it"
                    ),
                    key=f"{site.qualname}:register:{site.op_text}",
                )
            )

    for site in sends:
        if site.op is None:
            out.append(
                F.LintFinding(
                    rule=F.RULE_DYNAMIC_OP,
                    severity=F.RULES[F.RULE_DYNAMIC_OP][0],
                    path=site.file.rel_path,
                    line=site.line,
                    message=(
                        f"{site.mode} of dynamic op {site.op_text!r}; "
                        "unhandled-op analysis cannot see it"
                    ),
                    key=f"{site.qualname}:{site.mode}:{site.op_text}",
                )
            )
            continue
        if site.op not in handled:
            out.append(
                F.LintFinding(
                    rule=F.RULE_UNHANDLED_OP,
                    severity=F.RULES[F.RULE_UNHANDLED_OP][0],
                    path=site.file.rel_path,
                    line=site.line,
                    message=(
                        f"op {site.op!r} is sent via {site.mode} but no "
                        "file registers a handler for it"
                    ),
                    key=f"{site.qualname}:{site.op}",
                )
            )
        if site.mode == "request" and not site.guarded:
            out.append(
                F.LintFinding(
                    rule=F.RULE_UNGUARDED_REQUEST,
                    severity=F.RULES[F.RULE_UNGUARDED_REQUEST][0],
                    path=site.file.rel_path,
                    line=site.line,
                    message=(
                        f"request for op {site.op!r} passes no on_error; "
                        "a timeout or remote fault vanishes into the debug "
                        "log (add on_error or use ResilientClient.call)"
                    ),
                    key=f"{site.qualname}:{site.op}",
                )
            )
        if (
            site.mode in _FIRE_AND_FORGET_MODES
            and modes_by_op.get(site.op, set()) & _REQUEST_MODES
        ):
            out.append(
                F.LintFinding(
                    rule=F.RULE_MIXED_SEND_MODES,
                    severity=F.RULES[F.RULE_MIXED_SEND_MODES][0],
                    path=site.file.rel_path,
                    line=site.line,
                    message=(
                        f"op {site.op!r} is sent via {site.mode} here but "
                        "via the request path elsewhere; notify copies skip "
                        "at-most-once dedup, so the handler must be "
                        "idempotent"
                    ),
                    key=f"{site.qualname}:{site.op}:{site.mode}",
                )
            )
    return out
