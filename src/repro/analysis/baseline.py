"""Checked-in lint baselines: accepted findings with justifications.

A baseline entry matches findings on their line-independent
:meth:`~repro.analysis.findings.LintFinding.fingerprint` — ``(rule,
path, key)`` — so accepted findings survive unrelated edits that shift
line numbers.  Every entry carries a ``justification``; an entry that
matches nothing on the current tree is **stale** and reported so it can
be pruned (baselines only ever shrink).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import LintFinding

#: Conventional baseline file name, auto-loaded from the lint root.
DEFAULT_BASELINE_NAME = "lint-baseline.json"


@dataclass
class Baseline:
    """A set of accepted findings, keyed by fingerprint."""

    #: fingerprint -> entry dict {rule, path, key, justification}.
    entries: dict[tuple[str, str, str], dict] = field(default_factory=dict)

    def matches(self, finding: LintFinding) -> bool:
        return finding.fingerprint() in self.entries

    def partition(
        self, findings: list[LintFinding]
    ) -> tuple[list[LintFinding], list[LintFinding], list[dict]]:
        """(kept, suppressed, stale entries) for one run's findings."""
        kept: list[LintFinding] = []
        suppressed: list[LintFinding] = []
        used: set[tuple[str, str, str]] = set()
        for finding in findings:
            if self.matches(finding):
                suppressed.append(finding)
                used.add(finding.fingerprint())
            else:
                kept.append(finding)
        stale = [
            entry
            for fingerprint, entry in sorted(self.entries.items())
            if fingerprint not in used
        ]
        return kept, suppressed, stale

    @classmethod
    def from_findings(
        cls, findings: list[LintFinding], justification: str = "accepted"
    ) -> "Baseline":
        entries = {}
        for finding in findings:
            entries[finding.fingerprint()] = {
                "rule": finding.rule,
                "path": finding.path,
                "key": finding.key,
                "justification": justification,
            }
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        payload = [
            self.entries[fingerprint]
            for fingerprint in sorted(self.entries)
        ]
        path.write_text(
            json.dumps({"version": 1, "entries": payload}, indent=2) + "\n",
            encoding="utf-8",
        )


def load_baseline(path: Path) -> Baseline:
    """Parse a baseline file; missing/empty files mean an empty baseline."""
    baseline = Baseline()
    if not path.is_file():
        return baseline
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return baseline
    for entry in payload.get("entries", []):
        if not isinstance(entry, dict):
            continue
        fingerprint = (
            str(entry.get("rule", "")),
            str(entry.get("path", "")),
            str(entry.get("key", "")),
        )
        baseline.entries[fingerprint] = {
            "rule": fingerprint[0],
            "path": fingerprint[1],
            "key": fingerprint[2],
            "justification": str(entry.get("justification", "")),
        }
    return baseline
