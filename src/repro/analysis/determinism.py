"""The determinism lint: sources of replay divergence in critical modules.

Fleet fingerprints, storm replays and chaos tests all rest on one claim:
the same seed produces the same run, bit for bit.  Any ambient
nondeterminism inside the modules those fingerprints observe breaks the
claim silently — the replay test that catches it fires *after* the
divergence shipped.  This pass moves the check to lint time:

- **wall-clock reads** — ``time.time``/``monotonic``/``perf_counter``,
  ``datetime.now``/``utcnow``/``today``: virtual time must come from the
  simulator's clock;
- **unseeded randomness** — module-level ``random.choice`` etc. (the
  process-global stream any import can perturb) and ``random.Random()``
  with no seed;
- **ambient entropy** — ``uuid.uuid1``/``uuid4``, ``os.urandom``,
  anything from ``secrets``;
- **unstable hashes** — builtin ``hash()`` (randomized per process) and
  ``id()`` (allocator addresses): neither may feed replayable state;
- **unordered iteration** — ``for x in {…}`` / ``set(…)`` /
  set-comprehensions / ``a | b`` on sets, unless wrapped in ``sorted``:
  set order is insertion-and-hash dependent and must not feed ordered
  output.

Scope is configured per tree (default: the fingerprint-critical
packages); telemetry and the AOP engine intentionally read real clocks
and stay out of scope.
"""

from __future__ import annotations

import ast

from repro.analysis import findings as F
from repro.analysis.core import FileAst, dotted_name

#: Dotted call targets that read the wall clock.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "date.today",
        "datetime.date.today",
    }
)

#: Dotted call targets that draw ambient entropy.
ENTROPY_CALLS = frozenset(
    {"uuid.uuid1", "uuid.uuid4", "os.urandom", "os.getrandom"}
)

#: ``random.<fn>`` calls on the module (not on an instance) are the
#: process-global stream; constructing ``random.Random`` / ``Random``
#: *with* a seed argument is the sanctioned pattern.
_RANDOM_CONSTRUCTORS = frozenset({"random.Random", "random.SystemRandom"})

def _origin(file: FileAst, dotted: str) -> str:
    """Rewrite the head of ``dotted`` through the file's import map."""
    head, _, rest = dotted.partition(".")
    resolved = file.imports.get(head)
    if resolved is None:
        return dotted
    return f"{resolved}.{rest}" if rest else resolved


def _is_set_expression(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        # a | b, a & b, a - b where either side is itself a set display.
        return _is_set_expression(node.left) or _is_set_expression(node.right)
    return False


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, file: FileAst, out: list[F.LintFinding]):
        self.file = file
        self.out = out
        self._scope: list[str] = []

    # -- scope tracking ------------------------------------------------------

    def _qualname(self) -> str:
        return ".".join(self._scope) or "<module>"

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    # -- findings ------------------------------------------------------------

    def _emit(self, rule: str, line: int, message: str, symbol: str) -> None:
        severity = F.RULES[rule][0]
        self.out.append(
            F.LintFinding(
                rule=rule,
                severity=severity,
                path=self.file.rel_path,
                line=line,
                message=message,
                key=f"{self._qualname()}:{symbol}",
            )
        )

    def visit_Call(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func)
        if dotted is not None:
            origin = _origin(self.file, dotted)
            if origin in WALL_CLOCK_CALLS or dotted in WALL_CLOCK_CALLS:
                self._emit(
                    F.RULE_WALL_CLOCK,
                    node.lineno,
                    f"{dotted}() reads the wall clock; fingerprint-critical "
                    "code must use the simulator clock",
                    dotted,
                )
            elif origin in ENTROPY_CALLS or dotted in ENTROPY_CALLS:
                self._emit(
                    F.RULE_ENTROPY,
                    node.lineno,
                    f"{dotted}() draws ambient entropy; derive ids from "
                    "seeded state instead",
                    dotted,
                )
            elif origin.startswith("secrets.") or dotted.startswith("secrets."):
                self._emit(
                    F.RULE_ENTROPY,
                    node.lineno,
                    f"{dotted}() draws ambient entropy (secrets module)",
                    dotted,
                )
            elif self._is_global_random(dotted, origin):
                self._emit(
                    F.RULE_UNSEEDED_RANDOM,
                    node.lineno,
                    f"{dotted}() uses the process-global random stream; "
                    "draw from a seeded random.Random instance",
                    dotted,
                )
            elif (
                (origin in _RANDOM_CONSTRUCTORS or dotted in _RANDOM_CONSTRUCTORS)
                and not node.args
                and not node.keywords
            ):
                self._emit(
                    F.RULE_UNSEEDED_RANDOM,
                    node.lineno,
                    f"{dotted}() constructed without a seed is entropy-"
                    "seeded; pass an explicit seed",
                    dotted,
                )
        if isinstance(node.func, ast.Name) and node.func.id in ("hash", "id"):
            self._emit(
                F.RULE_UNSTABLE_HASH,
                node.lineno,
                f"builtin {node.func.id}() varies across processes; use "
                "zlib.crc32/hashlib for replayable state",
                node.func.id,
            )
        self.generic_visit(node)

    @staticmethod
    def _is_global_random(dotted: str, origin: str) -> bool:
        for name in (dotted, origin):
            head, _, rest = name.partition(".")
            if head == "random" and rest and rest not in (
                "Random",
                "SystemRandom",
            ) and "." not in rest:
                return True
        return False

    # -- unordered iteration -------------------------------------------------

    def _check_iter(self, node: ast.expr, line: int) -> None:
        if _is_set_expression(node):
            self._emit(
                F.RULE_UNORDERED_ITER,
                line,
                "iterating a set expression; wrap in sorted() so the "
                "order cannot leak into ordered output",
                "set-iteration",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter, node.lineno)
        self.generic_visit(node)


def check_file(file: FileAst) -> list[F.LintFinding]:
    """All determinism findings in one file (waivers not yet applied)."""
    out: list[F.LintFinding] = []
    visitor = _DeterminismVisitor(file, out)
    visitor.visit(file.tree)
    # Comprehension generators are not visited by NodeVisitor by default
    # name; walk them explicitly for the set-iteration check.
    for node in ast.walk(file.tree):
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for generator in node.generators:
                if _is_set_expression(generator.iter):
                    scope = "<comprehension>"
                    out.append(
                        F.LintFinding(
                            rule=F.RULE_UNORDERED_ITER,
                            severity=F.RULES[F.RULE_UNORDERED_ITER][0],
                            path=file.rel_path,
                            line=node.lineno,
                            message=(
                                "comprehension iterates a set expression; "
                                "wrap in sorted() so the order cannot leak "
                                "into ordered output"
                            ),
                            key=f"{scope}:set-iteration",
                        )
                    )
    return out
