"""The platform lint's finding model and rule registry.

A :class:`LintFinding` is file-anchored (path, line) rather than
class-anchored like :class:`repro.vetting.report.Finding` — platform
lints walk source *trees*, not live aspect classes.  Each finding also
carries a ``key``: a line-number-independent identity (rule + path +
the symbol or expression at fault) that the baseline file matches on,
so accepted findings survive unrelated edits that shift line numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Severity levels, in increasing order of consequence (mirrors
#: :mod:`repro.vetting.report`, kept separate so the analysis core does
#: not depend on the vetting data model).
INFO = "info"
WARNING = "warning"
ERROR = "error"

SEVERITIES = (INFO, WARNING, ERROR)

# -- determinism rules ------------------------------------------------------

#: Wall-clock read (``time.time``, ``datetime.now``, ``perf_counter``,
#: ...) inside a fingerprint-critical module.
RULE_WALL_CLOCK = "det.wall-clock"
#: Module-level ``random.*`` call (process-global, unseeded stream) or a
#: ``random.Random()`` constructed without a seed.
RULE_UNSEEDED_RANDOM = "det.unseeded-random"
#: Ambient entropy: ``uuid.uuid1/uuid4``, ``os.urandom``, ``secrets.*``.
RULE_ENTROPY = "det.entropy"
#: Builtin ``hash()`` / ``id()`` — both vary across processes (hash
#: randomization, allocator addresses) so neither may feed replayable
#: state in a fingerprint-critical module.
RULE_UNSTABLE_HASH = "det.unstable-hash"
#: Iteration over a set expression whose order feeds ordered output.
RULE_UNORDERED_ITER = "det.unordered-iter"

# -- shard-discipline rules -------------------------------------------------

#: One attribute mutated from two different shard/region contexts
#: without passing through the epoch-quantized handoff or accept queue.
RULE_CROSS_CONTEXT_WRITE = "shard.cross-context-write"
#: Attribute written in one parameterized shard context and read in a
#: different one (stale-read hazard across region heaps).
RULE_CROSS_CONTEXT_READ = "shard.cross-context-read"
#: Reaching into another object's ``_shards`` heap list directly instead
#: of going through ``schedule``/``handoff``.
RULE_PRIVATE_HEAP_REACH = "shard.private-heap-reach"

# -- protocol rules ---------------------------------------------------------

#: Operation sent via request/notify/broadcast with no registered
#: handler anywhere in the analyzed tree.
RULE_UNHANDLED_OP = "proto.unhandled-op"
#: ``transport.request`` with no ``on_error`` and no retry wrapper: a
#: timeout or remote fault vanishes into a debug log.
RULE_UNGUARDED_REQUEST = "proto.unguarded-request"
#: Operation sent both via ``request`` (deduped, acked) and via
#: ``notify`` (neither): the notify copies bypass at-most-once dedup, so
#: the handler must be idempotent — justify or fix.
RULE_MIXED_SEND_MODES = "proto.mixed-send-modes"
#: Operation expression not statically resolvable (dynamic dispatch).
RULE_DYNAMIC_OP = "proto.dynamic-op"

#: rule id -> (default severity, one-line description).
RULES: dict[str, tuple[str, str]] = {
    RULE_WALL_CLOCK: (
        ERROR,
        "wall-clock read in a fingerprint-critical module (use the "
        "simulator clock)",
    ),
    RULE_UNSEEDED_RANDOM: (
        ERROR,
        "process-global or unseeded random stream in a fingerprint-"
        "critical module (use a seeded random.Random)",
    ),
    RULE_ENTROPY: (
        ERROR,
        "ambient entropy source (uuid4, os.urandom, secrets) in a "
        "fingerprint-critical module",
    ),
    RULE_UNSTABLE_HASH: (
        WARNING,
        "builtin hash()/id() varies across processes; use a stable hash "
        "(zlib.crc32, hashlib) for replayable state",
    ),
    RULE_UNORDERED_ITER: (
        WARNING,
        "iteration over a set expression; wrap in sorted() when the "
        "order can feed ordered output or hashes",
    ),
    RULE_CROSS_CONTEXT_WRITE: (
        ERROR,
        "attribute mutated from two different shard/region contexts "
        "without the epoch-quantized handoff or accept queue",
    ),
    RULE_CROSS_CONTEXT_READ: (
        WARNING,
        "attribute written in one shard context and read in another",
    ),
    RULE_PRIVATE_HEAP_REACH: (
        ERROR,
        "direct reach into another object's _shards heaps; use "
        "schedule()/handoff()",
    ),
    RULE_UNHANDLED_OP: (
        ERROR,
        "operation sent but never registered with any transport",
    ),
    RULE_UNGUARDED_REQUEST: (
        WARNING,
        "request with no on_error and no retry wrapper; failures vanish",
    ),
    RULE_MIXED_SEND_MODES: (
        WARNING,
        "operation sent via both request and notify; notify bypasses "
        "at-most-once dedup",
    ),
    RULE_DYNAMIC_OP: (
        INFO,
        "operation expression not statically resolvable",
    ),
}


@dataclass(frozen=True)
class LintFinding:
    """One platform-lint defect, anchored to a source file."""

    rule: str
    severity: str
    path: str
    line: int
    message: str
    #: Stable, line-independent identity for baseline matching:
    #: typically the enclosing ``Class.method`` plus the symbol at fault.
    key: str = ""

    def fingerprint(self) -> tuple[str, str, str]:
        """What the baseline matches on (never the line number)."""
        return (self.rule, self.path, self.key)

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "key": self.key,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LintFinding":
        return cls(
            rule=str(data["rule"]),
            severity=str(data["severity"]),
            path=str(data["path"]),
            line=int(data.get("line", 0)),
            message=str(data["message"]),
            key=str(data.get("key", "")),
        )

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}: {self.severity.upper():7s} "
            f"{self.rule} {self.message}"
        )


@dataclass
class LintResult:
    """Outcome of one lint run over a tree."""

    findings: list[LintFinding] = field(default_factory=list)
    #: Findings suppressed by an inline ``# lint: allow(...)`` waiver.
    waived: list[LintFinding] = field(default_factory=list)
    #: Findings matched (and suppressed) by the baseline file.
    baselined: list[LintFinding] = field(default_factory=list)
    #: Baseline entries that matched nothing (stale — should be pruned).
    stale_baseline: list[dict] = field(default_factory=list)
    files_scanned: int = 0
    #: Wall seconds spent (reported, never part of any verdict).
    elapsed: float = 0.0

    def by_severity(self, severity: str) -> list[LintFinding]:
        return [f for f in self.findings if f.severity == severity]

    def errors(self) -> list[LintFinding]:
        return self.by_severity(ERROR)

    def warnings(self) -> list[LintFinding]:
        return self.by_severity(WARNING)

    def failed(self, strict: bool = False) -> bool:
        """True when the run should gate (exit non-zero).

        Plain mode fails on errors; ``strict`` also fails on warnings
        (info findings never gate).
        """
        if self.errors():
            return True
        return bool(strict and self.warnings())

    def as_dict(self) -> dict:
        return {
            "findings": [f.as_dict() for f in self.findings],
            "waived": [f.as_dict() for f in self.waived],
            "baselined": [f.as_dict() for f in self.baselined],
            "stale_baseline": list(self.stale_baseline),
            "summary": {
                "files_scanned": self.files_scanned,
                "errors": len(self.errors()),
                "warnings": len(self.warnings()),
                "info": len(self.by_severity(INFO)),
                "waived": len(self.waived),
                "baselined": len(self.baselined),
                "elapsed_seconds": self.elapsed,
            },
        }
