"""The lint runner: scopes, passes, waivers, baseline — one entry point.

:func:`run_lint` parses the tree once (memoized in
:mod:`repro.analysis.core`), applies each pass to its configured scope,
filters inline waivers, then filters the baseline.  Scopes mirror the
platform's determinism contract: the fingerprint-critical packages get
the determinism pass, the sharded kernel and pipeline get the
shard-race pass, and the protocol pass is whole-tree by construction
(its question — "does anything register this op?" — is global).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis import determinism, protocol, shards
from repro.analysis.baseline import Baseline
from repro.analysis.core import FileAst, TreeIndex, load_tree
from repro.analysis.findings import LintFinding, LintResult

#: Packages whose behavior feeds replay fingerprints: the simulator and
#: everything the fleet/storm fingerprints hash over.
DETERMINISM_SCOPE = (
    "repro/sim/",
    "repro/fleet/",
    "repro/scenarios/",
    "repro/net/",
    "repro/midas/",
    "repro/discovery/",
    "repro/leasing/",
    "repro/tuplespace/",
)

#: Modules that own sharded or pipelined mutable state.
SHARD_SCOPE = (
    "repro/fleet/",
    "repro/midas/pipeline.py",
)


@dataclass
class LintConfig:
    """What to lint and which suppressions to honor."""

    root: Path
    targets: list[Path] = field(default_factory=list)
    baseline: Baseline = field(default_factory=Baseline)
    determinism_scope: tuple[str, ...] = DETERMINISM_SCOPE
    shard_scope: tuple[str, ...] = SHARD_SCOPE


def _in_scope(rel_path: str, scope: tuple[str, ...]) -> bool:
    """Whether ``rel_path`` falls under a scope prefix.

    Scope prefixes are rooted at the ``repro`` package; rel paths vary
    with the lint root (``src`` → ``repro/net/...``, ``src/repro`` →
    ``net/...``, repo root → ``src/repro/net/...``), so match both the
    path as-is (re-anchored under ``repro/``) and by containment.
    """
    candidates = (rel_path, f"repro/{rel_path}")
    for prefix in scope:
        if any(c == prefix or c.startswith(prefix) for c in candidates):
            return True
        if f"/{prefix}" in f"/{rel_path}":
            return True
    return False


def _apply_waivers(
    files_by_path: dict[str, FileAst], findings: list[LintFinding]
) -> tuple[list[LintFinding], list[LintFinding]]:
    kept: list[LintFinding] = []
    waived: list[LintFinding] = []
    for finding in findings:
        file = files_by_path.get(finding.path)
        if file is not None and file.waived(finding.rule, finding.line):
            waived.append(finding)
        else:
            kept.append(finding)
    return kept, waived


def run_lint(config: LintConfig) -> LintResult:
    """Run every pass over the configured tree and fold in suppressions."""
    started = time.perf_counter()  # lint: allow(det.wall-clock) — tooling timer, never in a fingerprint
    tree: TreeIndex = load_tree(
        config.root, config.targets if config.targets else None
    )
    files_by_path = {file.rel_path: file for file in tree.files}

    raw: list[LintFinding] = []
    for file in tree.files:
        if _in_scope(file.rel_path, config.determinism_scope):
            raw.extend(determinism.check_file(file))
        if _in_scope(file.rel_path, config.shard_scope):
            raw.extend(shards.check_file(file))
    raw.extend(protocol.check_tree(tree))

    raw.sort(key=lambda f: (f.path, f.line, f.rule, f.key))

    kept, waived = _apply_waivers(files_by_path, raw)
    kept, baselined, stale = config.baseline.partition(kept)

    return LintResult(
        findings=kept,
        waived=waived,
        baselined=baselined,
        stale_baseline=stale,
        files_scanned=len(tree.files),
        elapsed=time.perf_counter() - started,  # lint: allow(det.wall-clock) — tooling timer
    )
