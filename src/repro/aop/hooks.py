"""Minimal hooks and advice dispatch.

This module is the Python analogue of PROSE's JIT-level weaving (Fig. 1).
When a class is loaded, every method is replaced by a *stub* produced by
:func:`make_method_stub`.  A stub closes over a one-element ``cell``:

- fast path — ``cell[0] is None`` — no advice anywhere at this join
  point; the stub calls the original directly.  This is the "minimal
  hook" whose constant cost experiment E1 measures.
- slow path — ``cell[0]`` holds a compiled dispatch closure built from
  the currently active advice; the stub delegates to it.  This is the
  interception path experiment E2 measures.

Inserting or withdrawing an aspect edits the :class:`MethodHookTable` /
:class:`FieldHookTable` advice lists and recompiles the cell, so the cost
of (de)activation is paid at weave time, never per call.

Field-write join points use a stubbed ``__setattr__``
(:func:`make_setattr_stub`) with the same fast-path design.
"""

from __future__ import annotations

import functools
from time import perf_counter
from typing import Any, Callable

from repro.aop.advice import Advice, AdviceKind
from repro.aop.context import ExecutionContext, FieldWriteContext, _MISSING
from repro.aop.crosscut import ExceptionCut, FieldWriteCut
from repro.aop.joinpoint import JoinPoint, JoinPointKind
from repro.telemetry import runtime as _telemetry

# Stub call-target styles.
INSTANCE = "instance"
CLASS = "class"
STATIC = "static"


class AdviceContainment:
    """Weaver-level containment hook applied to advice at weave time.

    When an aspect is inserted with a containment object
    (:meth:`ProseVM.insert(..., containment=...)`), every advice callback
    is passed through :meth:`wrap` *after* sandbox wrapping, so the
    containment layer is outermost: it sees everything the advice does —
    exceptions it raises, sandbox violations it triggers, time it burns —
    before any of it reaches the application call path.

    The base implementation is transparent.  The extension supervisor
    (:mod:`repro.supervision`) subclasses this to build its error
    barrier; custom runtimes can install their own (e.g. an
    advice-profiling wrapper) without touching the weaver.
    """

    __slots__ = ()

    def wrap(
        self, advice: Advice, callback: Callable[..., Any]
    ) -> Callable[..., Any]:
        """Return the callback to weave in place of ``callback``."""
        return callback


def _sort_key(entry: tuple[int, int, Any]) -> tuple[int, int]:
    order, seq, _ = entry
    return (order, seq)


class MethodHookTable:
    """Per-method-join-point advice registry and dispatch compiler."""

    __slots__ = (
        "joinpoint",
        "original",
        "style",
        "owner",
        "cell",
        "interceptions",
        "on_state_change",
        "_entries",
        "_seq",
        "_jp_label",
    )

    def __init__(
        self,
        joinpoint: JoinPoint,
        original: Callable[..., Any],
        style: str = INSTANCE,
        owner: str = "prose",
    ):
        self.joinpoint = joinpoint
        self.original = original
        self.style = style
        #: Name of the VM (= node id on platform nodes) owning this hook;
        #: stamps dispatch-error events onto the right flight ring.
        self.owner = owner
        #: Optional observer called with (table, active) when the hook
        #: transitions between advised and unadvised (swap-mode weaving).
        self.on_state_change: Callable[["MethodHookTable", bool], None] | None = None
        #: One-element list read by the stub: None, or the dispatch closure.
        self.cell: list[Callable[..., Any] | None] = [None]
        #: Number of times the slow (interception) path ran.
        self.interceptions = 0
        # entries: kind -> list of (order, seq, Advice)
        self._entries: dict[AdviceKind, list[tuple[int, int, Advice]]] = {
            kind: [] for kind in AdviceKind
        }
        self._seq = 0
        # Telemetry label, precomputed so dispatch never formats strings.
        self._jp_label = f"{joinpoint.cls.__name__}.{joinpoint.member}"

    @property
    def advised(self) -> bool:
        """True if any advice is active at this join point."""
        return self.cell[0] is not None

    def advice_count(self) -> int:
        """Total number of active advice entries."""
        return sum(len(entries) for entries in self._entries.values())

    def advices(self) -> list[Advice]:
        """All active advice, in (kind, order) registration order."""
        out = []
        for entries in self._entries.values():
            out.extend(advice for _, _, advice in sorted(entries, key=_sort_key))
        return out

    def add(self, advice: Advice, callback: Callable[..., Any]) -> None:
        """Activate ``advice`` here, using ``callback`` (possibly wrapped)."""
        bound = Advice(
            advice.kind,
            advice.crosscut,
            callback,
            order=advice.order,
            aspect=advice.aspect,
            name=advice.name,
        )
        self._entries[advice.kind].append((advice.order, self._seq, bound))
        self._seq += 1
        self._recompile()

    def remove_aspect(self, aspect: object) -> int:
        """Deactivate all advice contributed by ``aspect``; returns count."""
        removed = 0
        for kind, entries in self._entries.items():
            kept = [entry for entry in entries if entry[2].aspect is not aspect]
            removed += len(entries) - len(kept)
            self._entries[kind] = kept
        if removed:
            self._recompile()
        return removed

    def _recompile(self) -> None:
        if self.advice_count() == 0:
            was_active = self.cell[0] is not None
            self.cell[0] = None
            if was_active and self.on_state_change is not None:
                self.on_state_change(self, False)
            return
        was_active = self.cell[0] is not None

        befores = tuple(
            entry[2].callback
            for entry in sorted(self._entries[AdviceKind.BEFORE], key=_sort_key)
        )
        afters = tuple(
            entry[2].callback
            for entry in sorted(self._entries[AdviceKind.AFTER], key=_sort_key)
        )
        arounds = tuple(
            entry[2].callback
            for entry in sorted(self._entries[AdviceKind.AROUND], key=_sort_key)
        )
        throwers = tuple(
            (entry[2].crosscut, entry[2].callback)
            for entry in sorted(
                self._entries[AdviceKind.AFTER_THROWING], key=_sort_key
            )
        )
        joinpoint = self.joinpoint
        if self.style == STATIC:
            # Static methods take no target; drop it before the real call.
            raw = self.original

            def original(_target: Any, *args: Any, **kwargs: Any) -> Any:
                return raw(*args, **kwargs)

        else:
            original = self.original
        table = self
        jp_label = self._jp_label
        owner = self.owner
        telemetry_cell = _telemetry.cell()

        def dispatch(target: Any, args: tuple, kwargs: dict) -> Any:
            table.interceptions += 1
            recorder = telemetry_cell[0]
            if recorder is None:
                # Untimed path: identical to the timed one below, kept
                # inline so an uninstrumented interception pays only the
                # cell read and this branch.
                ctx = ExecutionContext(
                    joinpoint, target, args, kwargs, original, arounds
                )
                for callback in befores:
                    callback(ctx)
                try:
                    ctx.result = ctx.proceed()
                except BaseException as exc:
                    ctx.exception = exc
                    for crosscut, callback in throwers:
                        if not isinstance(crosscut, ExceptionCut) or crosscut.accepts(exc):
                            callback(ctx)
                    raise
                for callback in afters:
                    callback(ctx)
                return ctx.result
            start = perf_counter()
            try:
                ctx = ExecutionContext(
                    joinpoint, target, args, kwargs, original, arounds
                )
                for callback in befores:
                    callback(ctx)
                try:
                    ctx.result = ctx.proceed()
                except BaseException as exc:
                    ctx.exception = exc
                    for crosscut, callback in throwers:
                        if not isinstance(crosscut, ExceptionCut) or crosscut.accepts(exc):
                            callback(ctx)
                    recorder.event(
                        "prose.dispatch_error",
                        node=owner,
                        joinpoint=jp_label,
                        error=type(exc).__name__,
                    )
                    raise
                for callback in afters:
                    callback(ctx)
                return ctx.result
            finally:
                recorder.observe(
                    "prose.dispatch", perf_counter() - start, joinpoint=jp_label
                )
                recorder.count("prose.interceptions", 1, joinpoint=jp_label)

        self.cell[0] = dispatch
        if not was_active and self.on_state_change is not None:
            self.on_state_change(self, True)

    def __repr__(self) -> str:
        return f"<MethodHookTable {self.joinpoint} advice={self.advice_count()}>"


def _codegen_stub(table: MethodHookTable, style: str) -> Callable | None:
    """Generate a stub with the original's exact signature.

    Avoiding ``*args`` packing on the fast path roughly halves the hook's
    constant cost — the Python analogue of keeping the minimal hook down
    to a couple of instructions.  Returns None for signatures the
    generator does not handle (keyword-only parameters); the caller falls
    back to the generic wrapper.
    """
    import inspect

    original = table.original
    try:
        signature = inspect.signature(original)
    except (TypeError, ValueError):
        return None

    declared: list[str] = []
    passthrough: list[str] = []
    tuple_items: list[str] = []
    var_keyword: str | None = None
    for param in signature.parameters.values():
        if param.name.startswith("_prose"):
            return None  # would shadow the generator's internals
        if param.kind in (param.POSITIONAL_ONLY, param.POSITIONAL_OR_KEYWORD):
            declared.append(param.name)
            passthrough.append(param.name)
            tuple_items.append(param.name)
        elif param.kind is param.VAR_POSITIONAL:
            declared.append(f"*{param.name}")
            passthrough.append(f"*{param.name}")
            tuple_items.append(f"*{param.name}")
        elif param.kind is param.VAR_KEYWORD:
            declared.append(f"**{param.name}")
            passthrough.append(f"**{param.name}")
            var_keyword = param.name
        else:  # keyword-only: not worth the complexity here
            return None

    if style == INSTANCE or style == CLASS:
        if not tuple_items:
            return None  # no receiver parameter: malformed method
        target = tuple_items[0]
        rest = tuple_items[1:]
    else:  # STATIC
        target = "None"
        rest = tuple_items

    args_tuple = "(" + ", ".join(rest) + ("," if rest else "") + ")"
    kwargs_expr = var_keyword if var_keyword is not None else "{}"
    name = getattr(original, "__name__", "method")
    if not name.isidentifier():
        return None

    source = (
        "def _factory(_prose_original, _prose_cell):\n"
        f" def {name}({', '.join(declared)}):\n"
        "  _prose_d = _prose_cell[0]\n"
        "  if _prose_d is None:\n"
        f"   return _prose_original({', '.join(passthrough)})\n"
        f"  return _prose_d({target}, {args_tuple}, {kwargs_expr})\n"
        f" return {name}\n"
    )
    namespace: dict[str, Any] = {}
    try:
        exec(source, namespace)  # noqa: S102 - controlled codegen
    except SyntaxError:
        return None
    stub = namespace["_factory"](original, table.cell)
    try:
        stub.__defaults__ = original.__defaults__
    except AttributeError:
        pass
    return stub


def make_method_stub(table: MethodHookTable, style: str | None = None) -> Callable:
    """Build the minimal-hook wrapper installed in place of a method."""
    original = table.original
    cell = table.cell
    if style is None:
        style = table.style

    generated = _codegen_stub(table, style)
    if generated is not None:
        functools.update_wrapper(generated, original)
        generated.__prose_table__ = table  # type: ignore[attr-defined]
        return generated

    if style == INSTANCE:

        def prose_stub(self: Any, *args: Any, **kwargs: Any) -> Any:
            dispatch = cell[0]
            if dispatch is None:
                return original(self, *args, **kwargs)
            return dispatch(self, args, kwargs)

    elif style == CLASS:

        def prose_stub(cls: Any, *args: Any, **kwargs: Any) -> Any:  # type: ignore[misc]
            dispatch = cell[0]
            if dispatch is None:
                return original(cls, *args, **kwargs)
            return dispatch(cls, args, kwargs)

    elif style == STATIC:

        def prose_stub(*args: Any, **kwargs: Any) -> Any:  # type: ignore[misc]
            dispatch = cell[0]
            if dispatch is None:
                return original(*args, **kwargs)
            return dispatch(None, args, kwargs)

    else:  # pragma: no cover - internal misuse
        raise ValueError(f"unknown stub style {style!r}")

    functools.update_wrapper(prose_stub, original)
    prose_stub.__prose_table__ = table  # type: ignore[attr-defined]
    return prose_stub


class FieldHookTable:
    """Per-class field-write advice registry.

    Field names have no static declaration in Python, so entries hold
    (crosscut, advice) pairs and the compiled chain is cached per
    ``(dynamic type, field name)`` the first time that field is written.
    The dynamic type (``type(target)``) is used for type-pattern matching
    so a crosscut on a subclass works even when the ``__setattr__`` stub
    was installed on a base class.
    """

    __slots__ = ("cls", "original_setattr", "cell", "interceptions",
                 "on_state_change", "_entries", "_seq", "_chains")

    def __init__(self, cls: type, original_setattr: Callable[..., None]):
        self.cls = cls
        self.original_setattr = original_setattr
        self.cell: list[Callable[..., None] | None] = [None]
        self.interceptions = 0
        #: Optional observer called with (table, active) on transitions.
        self.on_state_change: Callable[["FieldHookTable", bool], None] | None = None
        self._entries: list[tuple[int, int, Advice]] = []
        self._seq = 0
        # (type, field) -> compiled (befores, afters, joinpoint) or None
        self._chains: dict[tuple[type, str], tuple | None] = {}

    def advice_count(self) -> int:
        """Number of active field-write advice entries."""
        return len(self._entries)

    def add(self, advice: Advice, callback: Callable[..., Any]) -> None:
        """Activate field-write ``advice`` on this class's instances."""
        bound = Advice(
            advice.kind,
            advice.crosscut,
            callback,
            order=advice.order,
            aspect=advice.aspect,
            name=advice.name,
        )
        self._entries.append((advice.order, self._seq, bound))
        self._seq += 1
        self._recompile()

    def remove_aspect(self, aspect: object) -> int:
        """Deactivate all field advice contributed by ``aspect``."""
        kept = [entry for entry in self._entries if entry[2].aspect is not aspect]
        removed = len(self._entries) - len(kept)
        if removed:
            self._entries = kept
            self._recompile()
        return removed

    def _recompile(self) -> None:
        self._chains.clear()
        was_active = self.cell[0] is not None
        self.cell[0] = self._dispatch if self._entries else None
        is_active = self.cell[0] is not None
        if was_active != is_active and self.on_state_change is not None:
            self.on_state_change(self, is_active)

    def _chain_for(self, cls: type, field: str) -> tuple | None:
        key = (cls, field)
        chain = self._chains.get(key, _MISSING)
        if chain is not _MISSING:
            return chain  # type: ignore[return-value]
        joinpoint = JoinPoint(JoinPointKind.FIELD_WRITE, cls, field)
        befores: list = []
        afters: list = []
        for _, _, advice in sorted(self._entries, key=_sort_key):
            crosscut = advice.crosscut
            if isinstance(crosscut, FieldWriteCut) and crosscut.matches(joinpoint):
                if advice.kind is AdviceKind.BEFORE:
                    befores.append(advice.callback)
                elif advice.kind is AdviceKind.AFTER:
                    afters.append(advice.callback)
        compiled = (tuple(befores), tuple(afters), joinpoint) if befores or afters else None
        self._chains[key] = compiled
        return compiled

    def _dispatch(self, target: Any, field: str, value: Any) -> None:
        chain = self._chain_for(type(target), field)
        if chain is None:
            self.original_setattr(target, field, value)
            return
        self.interceptions += 1
        recorder = _telemetry.cell()[0]
        start = perf_counter() if recorder is not None else 0.0
        befores, afters, joinpoint = chain
        old = target.__dict__.get(field, _MISSING) if hasattr(target, "__dict__") else _MISSING
        ctx = FieldWriteContext(joinpoint, target, field, old, value)
        for callback in befores:
            callback(ctx)
        self.original_setattr(target, field, ctx.new_value)
        for callback in afters:
            callback(ctx)
        if recorder is not None:
            label = f"{joinpoint.cls.__name__}.{field}"
            recorder.observe("prose.dispatch", perf_counter() - start, joinpoint=label)
            recorder.count("prose.field_interceptions", 1, joinpoint=label)

    def __repr__(self) -> str:
        return f"<FieldHookTable {self.cls.__name__} advice={self.advice_count()}>"


def make_setattr_stub(table: FieldHookTable) -> Callable[..., None]:
    """Build the minimal-hook ``__setattr__`` replacement for a class."""
    original = table.original_setattr
    cell = table.cell

    def prose_setattr(self: Any, name: str, value: Any) -> None:
        dispatch = cell[0]
        if dispatch is None:
            original(self, name, value)
        else:
            dispatch(self, name, value)

    prose_setattr.__name__ = "__setattr__"
    prose_setattr.__qualname__ = f"{table.cls.__name__}.__setattr__"
    prose_setattr.__prose_field_table__ = table  # type: ignore[attr-defined]
    return prose_setattr
