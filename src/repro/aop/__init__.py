"""PROSE — a dynamic aspect-oriented programming engine for Python.

This package reproduces the first layer of the paper's platform: PROSE
(PROgrammable extensions of sErvices).  In the original system a modified
JIT compiler plants *minimal hooks* (stubs) at every potential join point
of every loaded class; inserting a first-class aspect object activates
advice at the join points matched by its crosscut, withdrawing it
deactivates them, all at run time and without restarting the application.

Our Python analogue keeps the same architecture:

- :class:`~repro.aop.vm.ProseVM` "loads" classes by rewriting them in
  place — every method is replaced by a stub with a constant-cost fast
  path, and ``__setattr__`` is stubbed for field-write join points.
- :class:`~repro.aop.aspect.Aspect` is the first-class extension unit;
  advice methods are declared with :func:`before` / :func:`after` /
  :func:`around` / :func:`after_throwing` decorators over crosscuts.
- Crosscuts use the paper's wildcard signature language
  (``"* *.send*(bytes, ..)"``) via :func:`~repro.aop.signature.parse_signature`.
- :class:`~repro.aop.sandbox.AspectSandbox` isolates extension code from
  system resources with a capability policy (the "aspect sandbox").
"""

from repro.aop.advice import Advice, AdviceKind
from repro.aop.aspect import (
    Aspect,
    after,
    after_throwing,
    around,
    before,
)
from repro.aop.context import ExecutionContext, FieldWriteContext
from repro.aop.hooks import AdviceContainment
from repro.aop.crosscut import (
    REST,
    Crosscut,
    ExceptionCut,
    FieldWriteCut,
    MethodCut,
)
from repro.aop.joinpoint import JoinPoint, JoinPointKind
from repro.aop.sandbox import (
    AspectSandbox,
    Capability,
    SandboxPolicy,
    SystemGateway,
    UnknownCapabilityWarning,
    current_sandbox,
)
from repro.aop.signature import MethodSignature, parse_signature
from repro.aop.vm import RESIDENT, SWAP, ProseVM

__all__ = [
    "Advice",
    "AdviceContainment",
    "AdviceKind",
    "Aspect",
    "AspectSandbox",
    "Capability",
    "Crosscut",
    "ExceptionCut",
    "ExecutionContext",
    "FieldWriteContext",
    "FieldWriteCut",
    "JoinPoint",
    "JoinPointKind",
    "MethodCut",
    "MethodSignature",
    "ProseVM",
    "RESIDENT",
    "REST",
    "SWAP",
    "SandboxPolicy",
    "SystemGateway",
    "UnknownCapabilityWarning",
    "after",
    "after_throwing",
    "around",
    "before",
    "current_sandbox",
    "parse_signature",
]
