"""The aspect sandbox.

Extensions arrive from foreign hosts and could contain malicious code, so
PROSE "defines an aspect sandbox in which interceptions, although spread
through various components, are treated as if they belong to the same
component" (§3.1).  We reproduce the *property* — extension code is
isolated from system resources unless its policy allows them — with a
capability model:

- a :class:`SandboxPolicy` names the capabilities an extension may use;
- the weaver wraps every advice callback with :meth:`AspectSandbox.wrap`,
  which makes the sandbox the *current* one for the duration of the
  advice;
- system resources are reached only through a :class:`SystemGateway`,
  which checks the current (or bound) sandbox before handing a resource
  out and raises :class:`~repro.errors.SandboxViolation` otherwise.

Python cannot enforce memory isolation, so this is a cooperative model —
faithful to the role the sandbox plays in the platform's protocols (MIDAS
refuses capabilities, extensions observe denials), which is what the
reproduction's tests and experiments exercise.
"""

from __future__ import annotations

import contextvars
import warnings
from typing import Any, Callable, Iterable, Mapping

from repro.errors import SandboxViolation
from repro.telemetry import runtime as _telemetry


class UnknownCapabilityWarning(UserWarning):
    """A policy names a capability not in :data:`Capability.ALL`.

    Custom capabilities are legal (nodes may expose bespoke services
    under any name), but a misspelling here is otherwise only caught at
    ``acquire`` time, deep inside advice — hence the warning.
    """


class Capability:
    """Well-known capability names (plain strings; extensible)."""

    NETWORK = "network"
    STORE = "store"
    HARDWARE = "hardware"
    CLOCK = "clock"
    SCHEDULER = "scheduler"
    SESSION = "session"
    CRYPTO = "crypto"
    PERSISTENCE = "persistence"
    TRANSACTIONS = "transactions"
    ALL = (
        NETWORK,
        STORE,
        HARDWARE,
        CLOCK,
        SCHEDULER,
        SESSION,
        CRYPTO,
        PERSISTENCE,
        TRANSACTIONS,
    )

    @classmethod
    def is_known(cls, name: str) -> bool:
        """True if ``name`` is one of the well-known capabilities."""
        return name in cls.ALL


class SandboxPolicy:
    """An immutable set of allowed capabilities.

    Capability names are validated at construction: names outside
    :data:`Capability.ALL` raise :class:`UnknownCapabilityWarning` (a
    warning — custom capabilities are legal) or, with ``strict=True``
    (used by the static vetter), raise ``ValueError`` so typos like
    ``"newtork"`` cannot slip through to ``acquire`` time.
    """

    __slots__ = ("_allowed", "_allow_all")

    def __init__(
        self,
        allowed: Iterable[str] = (),
        allow_all: bool = False,
        strict: bool = False,
    ):
        self._allowed = frozenset(allowed)
        self._allow_all = allow_all
        unknown = sorted(
            name for name in self._allowed if not Capability.is_known(name)
        )
        if unknown:
            if strict:
                raise ValueError(
                    f"unknown capabilities in sandbox policy: {unknown} "
                    f"(known: {sorted(Capability.ALL)})"
                )
            warnings.warn(
                f"sandbox policy names unknown capabilities {unknown}; "
                "a typo here only fails at acquire time",
                UnknownCapabilityWarning,
                stacklevel=2,
            )

    @classmethod
    def permissive(cls) -> "SandboxPolicy":
        """A policy allowing every capability (trusted local aspects)."""
        return cls(allow_all=True)

    @classmethod
    def restrictive(cls) -> "SandboxPolicy":
        """A policy allowing nothing (fully untrusted extensions)."""
        return cls()

    @property
    def allowed(self) -> frozenset[str]:
        """The explicitly allowed capabilities."""
        return self._allowed

    def allows(self, capability: str) -> bool:
        """True if ``capability`` may be used under this policy."""
        return self._allow_all or capability in self._allowed

    def restricted_to(self, capabilities: Iterable[str]) -> "SandboxPolicy":
        """A narrower policy: the intersection with ``capabilities``."""
        requested = frozenset(capabilities)
        if self._allow_all:
            return SandboxPolicy(requested)
        return SandboxPolicy(self._allowed & requested)

    def __repr__(self) -> str:
        if self._allow_all:
            return "SandboxPolicy(allow_all=True)"
        return f"SandboxPolicy({sorted(self._allowed)})"


_current: contextvars.ContextVar["AspectSandbox | None"] = contextvars.ContextVar(
    "prose_current_sandbox", default=None
)


def current_sandbox() -> "AspectSandbox | None":
    """The sandbox of the advice currently executing, if any."""
    return _current.get()


class AspectSandbox:
    """The execution sandbox of one inserted aspect."""

    __slots__ = ("policy", "aspect_name", "violations")

    def __init__(self, policy: SandboxPolicy, aspect_name: str = "extension"):
        self.policy = policy
        self.aspect_name = aspect_name
        #: Capabilities whose acquisition was denied (for auditing).
        self.violations: list[str] = []

    def require(self, capability: str) -> None:
        """Raise :class:`SandboxViolation` unless ``capability`` is allowed."""
        if not self.policy.allows(capability):
            self.violations.append(capability)
            raise SandboxViolation(capability, self.aspect_name)

    def wrap(self, callback: Callable[..., Any]) -> Callable[..., Any]:
        """Wrap an advice callback so this sandbox is current while it runs."""

        def sandboxed(*args: Any, **kwargs: Any) -> Any:
            token = _current.set(self)
            try:
                return callback(*args, **kwargs)
            finally:
                _current.reset(token)

        sandboxed.__name__ = getattr(callback, "__name__", "advice")
        sandboxed.__prose_sandbox__ = self  # type: ignore[attr-defined]
        return sandboxed

    def __repr__(self) -> str:
        return f"<AspectSandbox {self.aspect_name} {self.policy!r}>"


class SystemGateway:
    """Mediated access to a node's system resources.

    A node (MIDAS receiver) builds one gateway per extension, binding the
    extension's sandbox to the node's service objects (network transport,
    store proxy, hardware, clock ...).  Extension code calls
    :meth:`acquire` to obtain a service; the bound sandbox — or, if none
    was bound, the *current* sandbox — must allow the capability.
    """

    __slots__ = ("_services", "_sandbox")

    def __init__(
        self,
        services: Mapping[str, Any],
        sandbox: AspectSandbox | None = None,
    ):
        self._services = dict(services)
        self._sandbox = sandbox

    def acquire(self, capability: str) -> Any:
        """Return the service registered under ``capability`` or raise.

        Every denial — whether the sandbox policy refuses the capability
        or no service is registered under it — is counted as a
        ``sandbox.violation`` (labelled by extension and capability)
        before the :class:`SandboxViolation` propagates, so audits do not
        depend on the extension surfacing the error.
        """
        sandbox = self._sandbox or current_sandbox()
        if sandbox is not None:
            try:
                sandbox.require(capability)
            except SandboxViolation:
                self._count_violation(capability, sandbox.aspect_name)
                raise
        try:
            return self._services[capability]
        except KeyError:
            who = sandbox.aspect_name if sandbox else None
            self._count_violation(capability, who)
            raise SandboxViolation(capability, who) from None

    @staticmethod
    def _count_violation(capability: str, aspect_name: str | None) -> None:
        _telemetry.get_recorder().count(
            "sandbox.violation",
            extension=aspect_name or "unknown",
            capability=capability,
        )

    def offers(self, capability: str) -> bool:
        """True if a service is registered under ``capability``."""
        return capability in self._services

    def capabilities(self) -> frozenset[str]:
        """The capabilities this gateway can serve (policy permitting)."""
        return frozenset(self._services)

    def __repr__(self) -> str:
        return f"<SystemGateway {sorted(self._services)}>"
