"""Dynamic execution contexts passed to advice.

When a stub fires, the dispatcher builds a context describing the dynamic
join point — the target object, arguments, result or exception — and hands
it to every piece of advice.  Advice communicates back through the same
object: a ``before`` advice may rewrite ``args`` (the paper's encryption
example), an ``around`` advice calls :meth:`ExecutionContext.proceed`, an
``after`` advice may replace ``result``.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.aop.joinpoint import JoinPoint

_MISSING = object()


class ExecutionContext:
    """The dynamic context of one intercepted method execution."""

    __slots__ = (
        "joinpoint",
        "target",
        "args",
        "kwargs",
        "result",
        "exception",
        "session",
        "proceeded",
        "escaped",
        "_original",
        "_arounds",
        "_depth",
        "_last_proceed",
    )

    def __init__(
        self,
        joinpoint: JoinPoint,
        target: Any,
        args: tuple[Any, ...],
        kwargs: dict[str, Any],
        original: Callable[..., Any],
        arounds: tuple[Callable[["ExecutionContext"], Any], ...] = (),
    ):
        self.joinpoint = joinpoint
        #: The object the method was invoked on.
        self.target = target
        #: Positional arguments; advice may replace this tuple.
        self.args = args
        #: Keyword arguments; advice may mutate or replace this dict.
        self.kwargs = kwargs
        #: Return value, available to ``after`` advice (and replaceable).
        self.result: Any = None
        #: The escaping exception, available to ``after_throwing`` advice.
        self.exception: BaseException | None = None
        #: Scratch space shared by all advice of this execution.  The
        #: session-management extension stores caller identity here for the
        #: access-control extension to read (Fig. 2, steps 2-3).
        self.session: dict[str, Any] = {}
        #: Number of :meth:`proceed` calls that completed normally.  The
        #: supervision layer reads this to tell whether a failing
        #: ``around`` advice already ran the rest of the chain.
        self.proceeded = 0
        #: The exception (if any) that escaped :meth:`proceed` — i.e. one
        #: raised by the application (or deeper advice), not by the advice
        #: currently on top.  Containment barriers let it pass through.
        self.escaped: BaseException | None = None
        self._original = original
        self._arounds = arounds
        self._depth = -1
        self._last_proceed: Any = None

    @property
    def method_name(self) -> str:
        """Name of the intercepted method."""
        return self.joinpoint.member

    def proceed(self) -> Any:
        """Continue to the next ``around`` advice, or the real method.

        Only meaningful inside ``around`` advice (the dispatcher also uses
        it to start the chain).  Each level may call it zero times (to
        short-circuit) or once; calling it repeatedly re-executes the
        remainder of the chain, which around-caching advice may exploit.
        """
        self._depth += 1
        try:
            if self._depth < len(self._arounds):
                value = self._arounds[self._depth](self)
            else:
                value = self._original(self.target, *self.args, **self.kwargs)
        except BaseException as exc:
            self.escaped = exc
            raise
        finally:
            self._depth -= 1
        self.proceeded += 1
        self._last_proceed = value
        return value

    def __repr__(self) -> str:
        return f"<ExecutionContext {self.joinpoint.class_name}.{self.method_name}>"


class FieldWriteContext:
    """The dynamic context of one intercepted field assignment."""

    __slots__ = ("joinpoint", "target", "field", "old_value", "new_value", "_had_old")

    def __init__(
        self,
        joinpoint: JoinPoint,
        target: Any,
        field: str,
        old_value: Any = _MISSING,
        new_value: Any = None,
    ):
        self.joinpoint = joinpoint
        self.target = target
        #: Name of the field being assigned.
        self.field = field
        self._had_old = old_value is not _MISSING
        #: Previous value (None if the field did not exist yet).
        self.old_value = None if old_value is _MISSING else old_value
        #: Value being assigned; ``before`` advice may replace it.
        self.new_value = new_value

    @property
    def is_initialization(self) -> bool:
        """True when the field is being created rather than updated."""
        return not self._had_old

    def __repr__(self) -> str:
        return (
            f"<FieldWriteContext {self.joinpoint.class_name}.{self.field} "
            f"= {self.new_value!r}>"
        )


AdviceCallable = Callable[[ExecutionContext], Any]
FieldAdviceCallable = Callable[[FieldWriteContext], Any]


def snapshot_call(ctx: ExecutionContext) -> Mapping[str, Any]:
    """A serializable summary of a call context (used by logging advice)."""
    return {
        "class": ctx.joinpoint.class_name,
        "method": ctx.method_name,
        "args": ctx.args,
        "kwargs": dict(ctx.kwargs),
    }
