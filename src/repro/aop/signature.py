"""The crosscut signature language.

The paper writes crosscuts as wildcard method signatures::

    before methods-with-signature 'void *.send*(byte[] x, ..)' do encrypt(x)

:func:`parse_signature` accepts that syntax (modulo Python type names) and
produces a :class:`MethodSignature` that can be matched against a loaded
method.  Grammar::

    signature  := [return_pat] class_pat '.' method_pat [ '(' params ')' ]
    params     := ''  |  param_pat (',' param_pat)*  [',' '..']  |  '..'
    *_pat      := identifier with '*' wildcards;  '..' matches any tail

Matching against Python methods is structural where Python lets it be:

- class and method names match by wildcard against the join point (a type
  pattern matches if it matches *any* name in the owning class's MRO, so a
  crosscut on ``Device`` also covers ``Motor``);
- parameter patterns match against the method's positional parameter
  *annotations* when present (by type name, walking the annotation's MRO
  is not attempted — names only); an unannotated parameter matches any
  pattern, and the pattern ``*`` matches anything;
- the return pattern matches the return annotation by the same rule
  (``void`` is accepted as an alias for ``None``).
"""

from __future__ import annotations

import inspect
from typing import Sequence

from repro.errors import PatternSyntaxError
from repro.util.patterns import WildcardPattern


class RestMarker:
    """Sentinel for ``..`` — "any remaining parameters, of any type".

    Exposed as :data:`repro.aop.crosscut.REST`, mirroring the paper's
    ``REST`` parameter in the ``HwMonitoring`` example (Fig. 5).
    """

    _instance: "RestMarker | None" = None

    def __new__(cls) -> "RestMarker":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "REST"


REST = RestMarker()

# Parameter list meaning "don't constrain parameters at all" — shorthand
# for a lone REST.  Used when a signature omits the parentheses.
_UNCONSTRAINED: tuple[object, ...] = (REST,)


def _annotation_name(annotation: object) -> str | None:
    """Best-effort printable name of a parameter/return annotation."""
    if annotation is inspect.Signature.empty:
        return None
    if annotation is None or annotation is type(None):
        return "None"
    if isinstance(annotation, type):
        return annotation.__name__
    if isinstance(annotation, str):
        return annotation
    return getattr(annotation, "__name__", str(annotation))


class MethodSignature:
    """A parsed wildcard method signature.

    Attributes:
        return_pattern: wildcard on the return annotation name.
        type_pattern: wildcard on the owning class name (any MRO name).
        method_pattern: wildcard on the method name.
        param_patterns: tuple of wildcard patterns and/or the REST marker
            (REST may only appear last).
    """

    __slots__ = ("return_pattern", "type_pattern", "method_pattern", "param_patterns")

    def __init__(
        self,
        type_pattern: str = "*",
        method_pattern: str = "*",
        param_patterns: Sequence[object] | None = None,
        return_pattern: str = "*",
    ):
        self.return_pattern = WildcardPattern(_normalize_return(return_pattern))
        self.type_pattern = WildcardPattern(type_pattern)
        self.method_pattern = WildcardPattern(method_pattern)
        self.param_patterns = _normalize_params(param_patterns)

    # -- matching -----------------------------------------------------------

    def matches_names(self, mro_names: Sequence[str] | None, method_name: str) -> bool:
        """Match only the class/method name parts (cheap pre-filter)."""
        if not self.method_pattern.matches(method_name):
            return False
        if self.type_pattern.is_universal or mro_names is None:
            return self.type_pattern.is_universal
        return any(self.type_pattern.matches(name) for name in mro_names)

    def matches_callable(self, func: object) -> bool:
        """Match the parameter and return patterns against ``func``.

        Class/method names are not considered here; combine with
        :meth:`matches_names`.  Unintrospectable callables match only
        unconstrained signatures.
        """
        if self.param_patterns == _UNCONSTRAINED and self.return_pattern.is_universal:
            return True
        try:
            sig = inspect.signature(func)
        except (TypeError, ValueError):
            return self.param_patterns == _UNCONSTRAINED and (
                self.return_pattern.is_universal
            )
        if not self._match_return(sig):
            return False
        return self._match_params(sig)

    def _match_return(self, sig: inspect.Signature) -> bool:
        if self.return_pattern.is_universal:
            return True
        name = _annotation_name(sig.return_annotation)
        return name is None or self.return_pattern.matches(name)

    def _match_params(self, sig: inspect.Signature) -> bool:
        params = [
            p
            for p in sig.parameters.values()
            if p.kind
            in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD, p.VAR_POSITIONAL)
        ]
        # Drop the bound-instance parameter of unbound functions.
        if params and params[0].name in ("self", "cls"):
            params = params[1:]
        has_var_positional = any(p.kind == p.VAR_POSITIONAL for p in params)
        params = [p for p in params if p.kind != p.VAR_POSITIONAL]

        patterns = list(self.param_patterns)
        rest = bool(patterns) and patterns[-1] is REST
        if rest:
            patterns.pop()

        if len(patterns) > len(params):
            # More explicit patterns than declared parameters: only a
            # *args can absorb them.
            return has_var_positional
        if len(patterns) < len(params) and not rest:
            return False
        for pattern, param in zip(patterns, params):
            assert isinstance(pattern, WildcardPattern)
            if pattern.is_universal:
                continue
            name = _annotation_name(param.annotation)
            if name is not None and not pattern.matches(name):
                return False
        return True

    # -- cosmetics ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, MethodSignature)
            and other.return_pattern == self.return_pattern
            and other.type_pattern == self.type_pattern
            and other.method_pattern == self.method_pattern
            and other.param_patterns == self.param_patterns
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.return_pattern,
                self.type_pattern,
                self.method_pattern,
                self.param_patterns,
            )
        )

    def __repr__(self) -> str:
        params = ", ".join(
            "..." if p is REST else p.pattern for p in self.param_patterns  # type: ignore[union-attr]
        )
        return (
            f"MethodSignature('{self.return_pattern.pattern} "
            f"{self.type_pattern.pattern}.{self.method_pattern.pattern}({params})')"
        )


def _normalize_return(pattern: str) -> str:
    pattern = pattern.strip()
    if not pattern:
        return "*"
    if pattern == "void":
        return "None"
    return pattern


def _normalize_params(
    param_patterns: Sequence[object] | None,
) -> tuple[object, ...]:
    if param_patterns is None:
        return _UNCONSTRAINED
    out: list[object] = []
    for index, item in enumerate(param_patterns):
        if item is REST or item == "..":
            if index != len(param_patterns) - 1:
                raise PatternSyntaxError("'..' (REST) may only appear last")
            out.append(REST)
        elif isinstance(item, WildcardPattern):
            out.append(item)
        elif isinstance(item, str):
            out.append(WildcardPattern(item.strip()))
        elif isinstance(item, type):
            out.append(WildcardPattern(item.__name__))
        else:
            raise PatternSyntaxError(f"invalid parameter pattern {item!r}")
    return tuple(out)


def parse_signature(text: str) -> MethodSignature:
    """Parse the paper's signature syntax into a :class:`MethodSignature`.

    >>> sig = parse_signature("void *.send*(bytes, ..)")
    >>> sig.method_pattern.pattern
    'send*'
    >>> parse_signature("Motor.*")  # doctest: +ELLIPSIS
    MethodSignature(...)
    """
    text = text.strip()
    if not text:
        raise PatternSyntaxError("empty signature")

    params: Sequence[object] | None
    if "(" in text:
        if not text.endswith(")"):
            raise PatternSyntaxError(f"unterminated parameter list in {text!r}")
        head, _, param_text = text[:-1].partition("(")
        if "(" in param_text or ")" in param_text:
            raise PatternSyntaxError(f"nested parentheses in {text!r}")
        params = _parse_params(param_text)
    else:
        head = text
        params = None

    head = head.strip()
    pieces = head.split()
    if len(pieces) == 1:
        return_pattern, qualified = "*", pieces[0]
    elif len(pieces) == 2:
        return_pattern, qualified = pieces
    else:
        raise PatternSyntaxError(f"too many tokens in signature {text!r}")

    type_pattern, dot, method_pattern = qualified.rpartition(".")
    if not dot:
        # Bare name: method pattern on any class.
        type_pattern, method_pattern = "*", qualified
    if not type_pattern or not method_pattern:
        raise PatternSyntaxError(f"malformed qualified name in {text!r}")

    return MethodSignature(
        type_pattern=type_pattern,
        method_pattern=method_pattern,
        param_patterns=params,
        return_pattern=return_pattern,
    )


def _parse_params(param_text: str) -> Sequence[object]:
    param_text = param_text.strip()
    if not param_text:
        return ()
    items: list[object] = []
    for raw in param_text.split(","):
        token = raw.strip()
        if not token:
            raise PatternSyntaxError(f"empty parameter pattern in ({param_text})")
        if token == "..":
            items.append(REST)
            continue
        # Tolerate 'byte[] x'-style "type name" pairs: keep the type part.
        token = token.split()[0]
        # Tolerate Java-style array suffixes.
        token = token.removesuffix("[]")
        items.append(token)
    return items
