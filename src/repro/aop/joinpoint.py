"""Join points — the static shadows where advice can attach.

A *join point* is a well-defined point in the execution of a program.  As
in PROSE, the weaver plants a hook at every potential join point when a
class is loaded; a join point therefore has a static identity (class,
member, kind) independent of whether any advice is currently active there.

Kinds reproduce the paper's list: method boundaries (entry/exit are the
``before``/``after`` halves of a ``METHOD`` join point), field changes, and
exception throws (the ``after_throwing`` half of a ``METHOD`` join point is
modelled separately as ``EXCEPTION`` for crosscut matching).
"""

from __future__ import annotations

import enum
from typing import Iterator


class JoinPointKind(enum.Enum):
    """The kind of program point a join point denotes."""

    METHOD = "method"
    FIELD_WRITE = "field_write"
    EXCEPTION = "exception"


class JoinPoint:
    """The static identity of a hook: ``(kind, class, member)``.

    ``member`` is a method name for ``METHOD``/``EXCEPTION`` join points
    and a field name for ``FIELD_WRITE``.  Field-write join points are
    created lazily per field name the first time that field is assigned on
    an instrumented class, since Python fields have no static declaration.
    """

    __slots__ = ("kind", "cls", "member")

    def __init__(self, kind: JoinPointKind, cls: type, member: str):
        self.kind = kind
        self.cls = cls
        self.member = member

    @property
    def class_name(self) -> str:
        """Unqualified name of the class owning this join point."""
        return self.cls.__name__

    def mro_names(self) -> Iterator[str]:
        """Names of the owning class and its bases (``object`` excluded).

        Crosscut type patterns match against any of these, so a crosscut
        on ``Device`` also picks up join points of its ``Motor`` subclass.
        """
        for base in self.cls.__mro__:
            if base is not object:
                yield base.__name__

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, JoinPoint)
            and other.kind is self.kind
            and other.cls is self.cls
            and other.member == self.member
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.cls, self.member))

    def __repr__(self) -> str:
        return f"<JoinPoint {self.kind.value} {self.class_name}.{self.member}>"
