"""The PROSE-enabled virtual machine.

:class:`ProseVM` is the run-time weaver — the analogue of the paper's
modified JVM.  Loading a class rewrites it in place:

- every method defined on the class is replaced by a minimal-hook stub
  (:mod:`repro.aop.hooks`), creating one method join point per method;
- ``__setattr__`` is replaced by a field-write stub, creating field-write
  join points lazily per assigned field.

Aspects are inserted and withdrawn at any time; insertion matches each
advice's crosscut against every loaded join point and activates the
matching hooks.  Classes loaded *after* an insertion are matched against
all currently inserted aspects, so the order of arrival (application code
vs. extensions) does not matter — exactly the property MIDAS relies on.

Unloading a class restores its original, unstubbed definition.
"""

from __future__ import annotations

import inspect
import logging
from time import perf_counter
from typing import Any, Callable, Iterator

from repro.aop.advice import Advice, AdviceKind
from repro.aop.aspect import Aspect
from repro.aop.crosscut import FieldWriteCut
from repro.aop.hooks import (
    CLASS,
    INSTANCE,
    STATIC,
    AdviceContainment,
    FieldHookTable,
    MethodHookTable,
    make_method_stub,
    make_setattr_stub,
)
from repro.aop.joinpoint import JoinPoint, JoinPointKind
from repro.aop.sandbox import AspectSandbox
from repro.errors import (
    ClassNotLoadedError,
    NotWovenError,
    WeaveError,
)
from repro.telemetry import runtime as _telemetry

logger = logging.getLogger(__name__)

#: Dunder members that are still valid join points.  ``__init__`` is
#: needed by e.g. the age/trust extension (record construction time);
#: ``__call__`` by function-object services.
_ALLOWED_DUNDERS = {"__init__", "__call__"}


def _is_weavable(name: str, value: object) -> tuple[bool, str]:
    """Classify a class attribute: (weavable, stub style)."""
    if name.startswith("__") and name.endswith("__") and name not in _ALLOWED_DUNDERS:
        return False, INSTANCE
    if isinstance(value, staticmethod):
        return True, STATIC
    if isinstance(value, classmethod):
        return True, CLASS
    if inspect.isfunction(value):
        return True, INSTANCE
    return False, INSTANCE


class _LoadedClass:
    """Bookkeeping for one instrumented class."""

    __slots__ = ("cls", "method_tables", "field_table", "saved_attrs",
                 "saved_setattr", "had_own_setattr")

    def __init__(self, cls: type):
        self.cls = cls
        # method name -> MethodHookTable
        self.method_tables: dict[str, MethodHookTable] = {}
        self.field_table: FieldHookTable | None = None
        # original attribute objects, for unload
        self.saved_attrs: dict[str, Any] = {}
        self.saved_setattr: Callable[..., None] | None = None
        self.had_own_setattr = False


class _Insertion:
    """Bookkeeping for one inserted aspect."""

    __slots__ = ("aspect", "advices", "sandbox", "containment", "tables")

    def __init__(
        self,
        aspect: Aspect,
        advices: list[tuple[Advice, Callable[..., Any]]],
        sandbox: AspectSandbox | None,
        containment: "AdviceContainment | None" = None,
    ):
        self.aspect = aspect
        # (advice, possibly-sandbox/containment-wrapped callback) pairs
        self.advices = advices
        self.sandbox = sandbox
        self.containment = containment
        # tables currently holding entries for this aspect
        self.tables: set[MethodHookTable | FieldHookTable] = set()


class VMStats:
    """Aggregate counters over a VM's lifetime.

    Since the telemetry subsystem exists this is a thin compatibility
    view: every increment also feeds the global recorder as a
    ``prose.vm.<field>`` counter labelled with the VM's name, while the
    attributes keep their original always-available integer semantics.
    """

    __slots__ = ("classes_loaded", "methods_stubbed", "inserts", "withdrawals",
                 "weave_seconds", "_vm")

    #: Attributes mirrored as ``prose.vm.*`` counters.
    FIELDS = ("classes_loaded", "methods_stubbed", "inserts", "withdrawals")

    def __init__(self, vm: str = "prose"):
        self.classes_loaded = 0
        self.methods_stubbed = 0
        self.inserts = 0
        self.withdrawals = 0
        #: Cumulative weave/unweave time (mirrors ``ProseVM.weave_seconds``).
        self.weave_seconds = 0.0
        self._vm = vm

    def note(self, field: str, amount: int = 1) -> None:
        """Bump ``field`` locally and in the installed metrics registry."""
        setattr(self, field, getattr(self, field) + amount)
        _telemetry.get_recorder().count(f"prose.vm.{field}", amount, vm=self._vm)

    def as_dict(self) -> dict[str, int | float]:
        """All counters (plus cumulative weave time), keyed by field name."""
        out: dict[str, int | float] = {
            field: getattr(self, field) for field in self.FIELDS
        }
        out["weave_seconds"] = self.weave_seconds
        return out

    def __repr__(self) -> str:
        return (
            f"<VMStats classes={self.classes_loaded} methods={self.methods_stubbed}"
            f" inserts={self.inserts} withdrawals={self.withdrawals}>"
        )


#: Hooks stay installed at every join point from class load on; aspects
#: toggle dispatch cells.  The PROSE JIT model (E1 measures its cost).
RESIDENT = "resident"
#: Hooks are installed only while at least one advice is active at the
#: join point, and removed again afterwards.  Zero overhead when
#: unadvised, higher weave/unweave latency.  The DESIGN §6 ablation.
SWAP = "swap"


class ProseVM:
    """A run-time weaver over ordinary Python classes.

    ``mode`` selects the weaving strategy: :data:`RESIDENT` (default,
    the paper's stub-everywhere design) or :data:`SWAP` (install hooks
    on demand — the weave-on-demand alternative the evaluation ablates).
    """

    def __init__(self, name: str = "prose", mode: str = RESIDENT):
        if mode not in (RESIDENT, SWAP):
            raise WeaveError(f"unknown weaving mode {mode!r}")
        self.name = name
        self.mode = mode
        self.stats = VMStats(vm=name)
        #: Optional :class:`~repro.telemetry.profiler.JoinPointProfiler`
        #: (duck-typed: anything with ``wrap(advice, callback)`` and
        #: ``record_weave(vm, operation, seconds)``).  Attach *before*
        #: inserting aspects — wrapping happens at weave time.
        self.profiler: Any = None
        #: Cumulative seconds spent weaving and unweaving aspects.
        self.weave_seconds = 0.0
        self._loaded: dict[type, _LoadedClass] = {}
        self._insertions: dict[Aspect, _Insertion] = {}

    # -- class loading --------------------------------------------------------

    @property
    def loaded_classes(self) -> tuple[type, ...]:
        """Classes currently instrumented by this VM."""
        return tuple(self._loaded)

    def is_loaded(self, cls: type) -> bool:
        """True if ``cls`` is instrumented by this VM."""
        return cls in self._loaded

    def load_class(self, cls: type, include_inherited: bool = False) -> type:
        """Instrument ``cls`` in place, planting hooks at all join points.

        With ``include_inherited=True``, public methods inherited from
        uninstrumented bases are materialized as class-local stubs too, so
        crosscuts naming ``cls`` can reach them.  Returns ``cls``.
        """
        if cls in self._loaded:
            return cls
        if not isinstance(cls, type):
            raise WeaveError(f"can only load classes, got {cls!r}")

        record = _LoadedClass(cls)
        self._loaded[cls] = record

        names = list(vars(cls))
        if include_inherited:
            own = set(names)
            for name in dir(cls):
                if name in own or name.startswith("_"):
                    continue
                names.append(name)

        for name in names:
            if name in vars(cls):
                raw = vars(cls)[name]
                inherited = False
            else:
                raw = _find_inherited(cls, name)
                if raw is None:
                    continue
                inherited = True
            weavable, style = _is_weavable(name, raw)
            if not weavable:
                continue
            if hasattr(_unwrap(raw), "__prose_table__"):
                continue  # already a stub (e.g. inherited from a loaded base)
            original = _unwrap(raw)
            table = MethodHookTable(
                JoinPoint(JoinPointKind.METHOD, cls, name),
                original,
                style,
                owner=self.name,
            )
            if not inherited:
                record.saved_attrs[name] = raw
            record.method_tables[name] = table
            if self.mode == RESIDENT:
                self._install_method_stub(record, name, table)
            else:
                table.on_state_change = self._swap_method_hook(record, name)
            self.stats.note("methods_stubbed")

        self._stub_setattr(record)
        self.stats.note("classes_loaded")

        # Late loading: weave already-inserted aspects through the new class.
        for insertion in self._insertions.values():
            self._register_on_class(insertion, record)
        return cls

    def _install_method_stub(
        self, record: _LoadedClass, name: str, table: MethodHookTable
    ) -> None:
        stub = make_method_stub(table)
        wrapped: Any = stub
        if table.style == STATIC:
            wrapped = staticmethod(stub)
        elif table.style == CLASS:
            wrapped = classmethod(stub)
        setattr(record.cls, name, wrapped)

    def _restore_method(self, record: _LoadedClass, name: str) -> None:
        if name in record.saved_attrs:
            setattr(record.cls, name, record.saved_attrs[name])
        else:
            # Materialized inherited stub: remove the class-local copy.
            try:
                delattr(record.cls, name)
            except AttributeError:
                pass

    def _swap_method_hook(self, record: _LoadedClass, name: str):
        def on_state_change(table: MethodHookTable, active: bool) -> None:
            if active:
                self._install_method_stub(record, name, table)
            else:
                self._restore_method(record, name)

        return on_state_change

    def _stub_setattr(self, record: _LoadedClass) -> None:
        cls = record.cls
        record.had_own_setattr = "__setattr__" in vars(cls)
        current = cls.__setattr__
        if hasattr(current, "__prose_field_table__"):
            # Inherited from an already-loaded base: share that table's
            # machinery by installing a class-local stub over the same
            # *original* so writes are not intercepted twice.
            current = current.__prose_field_table__.original_setattr  # type: ignore[attr-defined]
        record.saved_setattr = vars(cls).get("__setattr__")
        table = FieldHookTable(cls, current)
        record.field_table = table
        if self.mode == RESIDENT:
            cls.__setattr__ = make_setattr_stub(table)  # type: ignore[assignment]
        else:
            table.on_state_change = self._swap_field_hook(record)

    def _swap_field_hook(self, record: _LoadedClass):
        def on_state_change(table: FieldHookTable, active: bool) -> None:
            if active:
                record.cls.__setattr__ = make_setattr_stub(table)  # type: ignore[assignment]
            else:
                self._restore_setattr(record)

        return on_state_change

    def _restore_setattr(self, record: _LoadedClass) -> None:
        cls = record.cls
        if record.had_own_setattr and record.saved_setattr is not None:
            cls.__setattr__ = record.saved_setattr  # type: ignore[assignment]
        else:
            try:
                delattr(cls, "__setattr__")
            except AttributeError:
                pass

    def unload_class(self, cls: type) -> None:
        """Restore ``cls`` to its original, uninstrumented definition."""
        record = self._loaded.pop(cls, None)
        if record is None:
            raise ClassNotLoadedError(f"{cls!r} is not loaded in this VM")
        for name, table in record.method_tables.items():
            table.on_state_change = None
            self._restore_method(record, name)
            for insertion in self._insertions.values():
                insertion.tables.discard(table)
        self._restore_setattr(record)
        if record.field_table is not None:
            record.field_table.on_state_change = None
            for insertion in self._insertions.values():
                insertion.tables.discard(record.field_table)

    # -- join point queries ----------------------------------------------------

    def joinpoints(self, kind: JoinPointKind | None = None) -> list[JoinPoint]:
        """All static join points currently hooked (method join points;
        field join points are dynamic and not enumerated)."""
        out = []
        for record in self._loaded.values():
            for table in record.method_tables.values():
                if kind is None or table.joinpoint.kind is kind:
                    out.append(table.joinpoint)
        return out

    def advised_joinpoints(self) -> list[JoinPoint]:
        """Method join points with at least one active advice."""
        return [
            table.joinpoint
            for record in self._loaded.values()
            for table in record.method_tables.values()
            if table.advised
        ]

    def interception_count(self) -> int:
        """Total slow-path dispatches across all hooks."""
        total = 0
        for record in self._loaded.values():
            for table in record.method_tables.values():
                total += table.interceptions
            if record.field_table is not None:
                total += record.field_table.interceptions
        return total

    def table_for(self, cls: type, method: str) -> MethodHookTable:
        """The hook table of ``cls.method`` (mainly for tests/benchmarks)."""
        record = self._loaded.get(cls)
        if record is None:
            raise ClassNotLoadedError(f"{cls!r} is not loaded in this VM")
        try:
            return record.method_tables[method]
        except KeyError:
            raise ClassNotLoadedError(
                f"{cls.__name__}.{method} has no hook in this VM"
            ) from None

    # -- aspect insertion -------------------------------------------------------

    @property
    def aspects(self) -> tuple[Aspect, ...]:
        """Aspects currently inserted, in insertion order."""
        return tuple(self._insertions)

    def is_inserted(self, aspect: Aspect) -> bool:
        """True if ``aspect`` is currently woven into this VM."""
        return aspect in self._insertions

    def insert(
        self,
        aspect: Aspect,
        sandbox: AspectSandbox | None = None,
        containment: AdviceContainment | None = None,
    ) -> None:
        """Weave ``aspect`` through all loaded classes, atomically visible.

        If ``sandbox`` is given, every advice callback runs with that
        sandbox current (see :mod:`repro.aop.sandbox`).  If
        ``containment`` is given, each (sandbox-wrapped) callback is
        additionally passed through its :meth:`AdviceContainment.wrap`,
        making the containment barrier the outermost layer around the
        foreign code.
        """
        if aspect in self._insertions:
            raise WeaveError(f"{aspect!r} is already inserted")
        start = perf_counter()
        advices = []
        for advice in aspect.advices():
            if isinstance(advice.crosscut, FieldWriteCut) and advice.kind not in (
                AdviceKind.BEFORE,
                AdviceKind.AFTER,
            ):
                raise WeaveError(
                    "field-write crosscuts support only before/after advice"
                )
            callback = advice.callback
            if sandbox is not None:
                callback = sandbox.wrap(callback)
            if self.profiler is not None:
                # Inside containment: the barrier still sees (and may
                # suppress) advice failures, the profiler still times them.
                callback = self.profiler.wrap(advice, callback)
            if containment is not None:
                callback = containment.wrap(advice, callback)
            advices.append((advice, callback))
        insertion = _Insertion(aspect, advices, sandbox, containment)
        self._insertions[aspect] = insertion
        for record in self._loaded.values():
            self._register_on_class(insertion, record)
        self.stats.note("inserts")
        self._note_weave("prose.weave", "insert", aspect, perf_counter() - start)
        aspect.on_insert(self)

    def withdraw(self, aspect: Aspect) -> None:
        """Remove every trace of ``aspect`` from the VM."""
        insertion = self._insertions.pop(aspect, None)
        if insertion is None:
            raise NotWovenError(f"{aspect!r} is not inserted in this VM")
        start = perf_counter()
        for table in insertion.tables:
            table.remove_aspect(aspect)
        self.stats.note("withdrawals")
        self._note_weave("prose.unweave", "withdraw", aspect, perf_counter() - start)
        aspect.on_withdraw(self)

    def _note_weave(
        self, event: str, operation: str, aspect: Aspect, seconds: float
    ) -> None:
        """Account one (un)weave: cumulative total, telemetry, profiler."""
        self.weave_seconds += seconds
        self.stats.weave_seconds = self.weave_seconds
        recorder = _telemetry.get_recorder()
        if recorder.enabled:
            recorder.observe(
                "prose.weave_seconds", seconds, vm=self.name, operation=operation
            )
            recorder.event(
                event,
                node=self.name,
                aspect=type(aspect).__name__,
                seconds=seconds,
            )
        if self.profiler is not None:
            self.profiler.record_weave(self.name, operation, seconds)

    def withdraw_all(self) -> None:
        """Withdraw every inserted aspect (in reverse insertion order)."""
        for aspect in reversed(list(self._insertions)):
            self.withdraw(aspect)

    def _register_on_class(self, insertion: _Insertion, record: _LoadedClass) -> None:
        for advice, callback in insertion.advices:
            if isinstance(advice.crosscut, FieldWriteCut):
                if record.field_table is not None and self._field_cut_relevant(
                    advice.crosscut, record.cls
                ):
                    record.field_table.add(advice, callback)
                    insertion.tables.add(record.field_table)
                continue
            for table in record.method_tables.values():
                if advice.crosscut.matches(table.joinpoint, table.original):
                    table.add(advice, callback)
                    insertion.tables.add(table)

    @staticmethod
    def _field_cut_relevant(cut: FieldWriteCut, cls: type) -> bool:
        """Could ``cut`` match writes going through ``cls``'s field stub?

        True if the type pattern matches the class, any ancestor, or any
        (current) subclass — subclass instances dispatch through the base
        stub when they do not carry their own.
        """
        if cut.type_pattern.is_universal:
            return True
        for base in cls.__mro__:
            if base is not object and cut.type_pattern.matches(base.__name__):
                return True
        return any(
            cut.type_pattern.matches(sub.__name__) for sub in _all_subclasses(cls)
        )

    def __repr__(self) -> str:
        return (
            f"<ProseVM {self.name!r} classes={len(self._loaded)} "
            f"aspects={len(self._insertions)}>"
        )


def _unwrap(raw: Any) -> Callable[..., Any]:
    if isinstance(raw, (staticmethod, classmethod)):
        return raw.__func__
    return raw


def _find_inherited(cls: type, name: str) -> Any:
    for base in cls.__mro__[1:]:
        if name in vars(base):
            return vars(base)[name]
    return None


def _all_subclasses(cls: type) -> Iterator[type]:
    for sub in cls.__subclasses__():
        yield sub
        yield from _all_subclasses(sub)
