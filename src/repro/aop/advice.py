"""Advice — the crosscut actions.

An :class:`Advice` pairs a crosscut with the callable to run at matched
join points, plus an ``order`` controlling execution position.  Lower
orders run closer to the caller: their ``before`` advice runs earlier and
their ``around`` advice wraps outermost.  The paper's Fig. 2 relies on this
— the session-information interception (step 2) must run before the
access-control interception (step 3), so session management uses a lower
order than access control.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Callable

from repro.aop.crosscut import Crosscut

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.aop.aspect import Aspect


class AdviceKind(enum.Enum):
    """Where advice runs relative to the join point."""

    BEFORE = "before"
    AFTER = "after"
    AROUND = "around"
    AFTER_THROWING = "after_throwing"


#: Default order for advice that does not care about its position.
DEFAULT_ORDER = 100


class Advice:
    """A bound piece of advice, ready for weaving.

    ``callback`` receives an :class:`~repro.aop.context.ExecutionContext`
    (or :class:`~repro.aop.context.FieldWriteContext` for field crosscuts).
    ``aspect`` back-references the owning aspect so the weaver can withdraw
    everything an aspect contributed, and so sandbox policies can be
    attributed to the right extension.
    """

    __slots__ = ("kind", "crosscut", "callback", "order", "aspect", "name")

    def __init__(
        self,
        kind: AdviceKind,
        crosscut: Crosscut,
        callback: Callable[..., Any],
        order: int = DEFAULT_ORDER,
        aspect: "Aspect | None" = None,
        name: str | None = None,
    ):
        self.kind = kind
        self.crosscut = crosscut
        self.callback = callback
        self.order = order
        self.aspect = aspect
        self.name = name or getattr(callback, "__name__", "advice")

    def __repr__(self) -> str:
        owner = self.aspect.name if self.aspect is not None else "unbound"
        return f"<Advice {self.kind.value} {owner}.{self.name} order={self.order}>"
