"""First-class aspects.

As in PROSE, an aspect is an ordinary object of the base language: you
subclass :class:`Aspect`, mark advice methods with the :func:`before` /
:func:`after` / :func:`around` / :func:`after_throwing` decorators, and
hand an *instance* to :meth:`ProseVM.insert`.  The paper's Fig. 5 example
translates directly::

    class HwMonitoring(Aspect):
        def __init__(self, owner_proxy):
            super().__init__()
            self.owner_proxy = owner_proxy

        @before(MethodCut(type="Motor", method="*", params=(REST,)))
        def ANYMETHOD(self, ctx):
            self.owner_proxy.post(ctx.target.get_id(), ...)

Aspects also declare:

- ``REQUIRED_CAPABILITIES`` — sandbox capabilities their advice needs
  (checked by MIDAS when building the extension's gateway);
- ``REQUIRES`` — aspect classes that must be co-inserted (the paper's
  *implicit extensions*: inserting access control automatically inserts
  session management);
- lifecycle hooks ``on_insert`` / ``on_withdraw`` / ``shutdown`` (the last
  is invoked by MIDAS before revocation so the extension can reach a
  consistent state, per §3.2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, ClassVar, Iterable, Sequence

from repro.aop.advice import DEFAULT_ORDER, Advice, AdviceKind
from repro.aop.crosscut import Crosscut, MethodCut
from repro.util.ids import fresh_id

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.aop.vm import ProseVM

_SPEC_ATTR = "_prose_advice_specs"


class _AdviceSpec:
    """Declaration attached to a function by an advice decorator."""

    __slots__ = ("kind", "crosscut", "order")

    def __init__(self, kind: AdviceKind, crosscut: Crosscut, order: int):
        self.kind = kind
        self.crosscut = crosscut
        self.order = order


def _coerce_crosscut(crosscut: Crosscut | str) -> Crosscut:
    if isinstance(crosscut, str):
        return MethodCut(crosscut)
    return crosscut


def _advice_decorator(
    kind: AdviceKind,
) -> Callable[[Crosscut | str, int], Callable[[Callable], Callable]]:
    def decorator_factory(
        crosscut: Crosscut | str, order: int = DEFAULT_ORDER
    ) -> Callable[[Callable], Callable]:
        cut = _coerce_crosscut(crosscut)

        def decorator(func: Callable) -> Callable:
            specs = getattr(func, _SPEC_ATTR, None)
            if specs is None:
                specs = []
                setattr(func, _SPEC_ATTR, specs)
            specs.append(_AdviceSpec(kind, cut, order))
            return func

        return decorator

    return decorator_factory


#: Declare advice running before matched join points.  A string crosscut
#: is parsed as a method signature pattern.
before = _advice_decorator(AdviceKind.BEFORE)
#: Declare advice running after normal completion of matched join points.
after = _advice_decorator(AdviceKind.AFTER)
#: Declare advice wrapping matched join points; it must call
#: ``ctx.proceed()`` (or deliberately short-circuit).
around = _advice_decorator(AdviceKind.AROUND)
#: Declare advice running when an exception escapes a matched join point.
after_throwing = _advice_decorator(AdviceKind.AFTER_THROWING)


class Aspect:
    """Base class for run-time extensions.

    Subclasses declare advice with the module-level decorators; extra
    advice can be added per instance with :meth:`add_advice` (useful for
    extensions whose crosscuts are configured at instantiation time, e.g.
    a control extension parameterized with forbidden coordinates).
    """

    #: Sandbox capabilities the aspect's advice needs at run time.
    REQUIRED_CAPABILITIES: ClassVar[frozenset[str]] = frozenset()
    #: Aspect classes that must be inserted alongside this one (the
    #: paper's implicit extensions).  Entries are classes, instantiated
    #: with no arguments when auto-resolved by MIDAS.
    REQUIRES: ClassVar[Sequence[type["Aspect"]]] = ()

    def __init__(self, name: str | None = None):
        self.name = name or f"{type(self).__name__}#{fresh_id('aspect')}"
        self._instance_advices: list[Advice] = []
        #: The :class:`~repro.aop.sandbox.SystemGateway` bound by the
        #: receiving node before insertion; None for purely local aspects.
        self.gateway = None

    def bind(self, gateway) -> None:
        """Attach the receiving node's resource gateway (MIDAS calls this).

        Extensions shipped over the network cannot carry live references
        to node resources; they are rebound on arrival, before insertion.
        """
        self.gateway = gateway

    def __getstate__(self) -> dict:
        # Gateways are node-local live objects: never serialized.
        state = dict(self.__dict__)
        state["gateway"] = None
        return state

    # -- advice collection ---------------------------------------------------

    def add_advice(
        self,
        kind: AdviceKind,
        crosscut: Crosscut | str,
        callback: Callable[..., Any],
        order: int = DEFAULT_ORDER,
    ) -> Advice:
        """Attach one more piece of advice to this aspect instance."""
        advice = Advice(
            kind, _coerce_crosscut(crosscut), callback, order=order, aspect=self
        )
        self._instance_advices.append(advice)
        return advice

    def advices(self) -> list[Advice]:
        """All advice this aspect contributes, bound to this instance."""
        out: list[Advice] = []
        seen: set[str] = set()
        for klass in type(self).__mro__:
            for attr_name, func in vars(klass).items():
                if attr_name in seen:
                    continue
                specs: Iterable[_AdviceSpec] | None = getattr(func, _SPEC_ATTR, None)
                if not specs:
                    continue
                seen.add(attr_name)
                bound = getattr(self, attr_name)
                for spec in specs:
                    out.append(
                        Advice(
                            spec.kind,
                            spec.crosscut,
                            bound,
                            order=spec.order,
                            aspect=self,
                            name=attr_name,
                        )
                    )
        out.extend(self._instance_advices)
        return out

    # -- lifecycle ------------------------------------------------------------

    def on_insert(self, vm: "ProseVM") -> None:
        """Called after the aspect has been woven into ``vm``."""

    def on_withdraw(self, vm: "ProseVM") -> None:
        """Called after the aspect has been removed from ``vm``."""

    def shutdown(self) -> None:
        """Called before revocation so the extension can finish cleanly.

        The paper (§3.2): "Each extension is notified before leaving a
        proactive space so that it can execute a shut-down procedure
        ensuring that all current operations are completed and a
        consistent state is achieved."
        """

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
