"""Crosscuts — predicates over join points.

A crosscut selects the set of join points where an aspect's advice must
run (the paper: "the crosscut of this aspect is the collection of method
entries ... that matches the specified signature patterns").  Three kinds
reproduce the paper's join-point model:

- :class:`MethodCut` — method boundaries, by wildcard signature;
- :class:`FieldWriteCut` — changes to object fields;
- :class:`ExceptionCut` — exceptions escaping matched methods.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.aop.joinpoint import JoinPoint, JoinPointKind
from repro.aop.signature import REST, MethodSignature, parse_signature
from repro.util.patterns import WildcardPattern

__all__ = ["Crosscut", "MethodCut", "FieldWriteCut", "ExceptionCut", "REST"]


class Crosscut(ABC):
    """A predicate over join points."""

    #: The join-point kind this crosscut selects.
    kind: JoinPointKind

    @abstractmethod
    def matches(self, joinpoint: JoinPoint, func: object | None = None) -> bool:
        """Return True if advice on this crosscut runs at ``joinpoint``.

        ``func`` is the original callable at a method join point, used to
        match parameter/return patterns; it may be None for cheap
        name-only matching (field join points pass None).
        """

    def overlaps(self, other: "Crosscut") -> bool:
        """Symbolic interference check: can both cuts select one join point?

        Evaluated over the patterns alone, without a loaded class set —
        this is what pre-insertion vetting (:mod:`repro.vetting`) uses to
        reason about extensions that are not woven yet.  Conservative in
        one documented direction: two *anchored* type names are treated
        as disjoint even though subclassing could make both match the
        same class through its MRO.
        """
        return False


class MethodCut(Crosscut):
    """Selects method join points by wildcard signature.

    Can be built from the paper's signature text or keyword parts::

        MethodCut("void *.send*(bytes, ..)")
        MethodCut(type="Motor", method="*", params=(REST,))
    """

    kind = JoinPointKind.METHOD

    def __init__(
        self,
        signature: str | MethodSignature | None = None,
        *,
        type: str = "*",  # noqa: A002 - mirrors the paper's vocabulary
        method: str = "*",
        params: Sequence[object] | None = None,
        returns: str = "*",
    ):
        if signature is None:
            self.signature = MethodSignature(
                type_pattern=type,
                method_pattern=method,
                param_patterns=params,
                return_pattern=returns,
            )
        elif isinstance(signature, MethodSignature):
            self.signature = signature
        else:
            self.signature = parse_signature(signature)

    def matches(self, joinpoint: JoinPoint, func: object | None = None) -> bool:
        if joinpoint.kind is not self.kind:
            return False
        if not self.signature.matches_names(
            tuple(joinpoint.mro_names()), joinpoint.member
        ):
            return False
        if func is None:
            return True
        return self.signature.matches_callable(func)

    def overlaps(self, other: Crosscut) -> bool:
        if not isinstance(other, MethodCut):
            return False
        return self.signature.type_pattern.overlaps(
            other.signature.type_pattern
        ) and self.signature.method_pattern.overlaps(other.signature.method_pattern)

    def __repr__(self) -> str:
        return f"MethodCut({self.signature!r})"


class FieldWriteCut(Crosscut):
    """Selects assignments to fields matching ``type``/``field`` patterns.

    The robot example uses this to trap "changes to the state of a robot"
    (the ``*`` in Fig. 2): ``FieldWriteCut(type="Robot", field="state")``.
    """

    kind = JoinPointKind.FIELD_WRITE

    def __init__(self, *, type: str = "*", field: str = "*"):  # noqa: A002
        self.type_pattern = WildcardPattern(type)
        self.field_pattern = WildcardPattern(field)

    def matches(self, joinpoint: JoinPoint, func: object | None = None) -> bool:
        if joinpoint.kind is not self.kind:
            return False
        if not self.field_pattern.matches(joinpoint.member):
            return False
        if self.type_pattern.is_universal:
            return True
        return any(self.type_pattern.matches(name) for name in joinpoint.mro_names())

    def overlaps(self, other: Crosscut) -> bool:
        if not isinstance(other, FieldWriteCut):
            return False
        return self.type_pattern.overlaps(
            other.type_pattern
        ) and self.field_pattern.overlaps(other.field_pattern)

    def __repr__(self) -> str:
        return (
            f"FieldWriteCut(type={self.type_pattern.pattern!r}, "
            f"field={self.field_pattern.pattern!r})"
        )


class ExceptionCut(Crosscut):
    """Selects exceptions escaping methods matched by a signature.

    ``exception`` optionally restricts to a family of exception types
    (matched by ``isinstance`` at run time, checked by the dispatcher).
    """

    kind = JoinPointKind.EXCEPTION

    def __init__(
        self,
        signature: str | MethodSignature | None = None,
        *,
        type: str = "*",  # noqa: A002
        method: str = "*",
        exception: type[BaseException] | None = None,
    ):
        if signature is None:
            self.signature = MethodSignature(type_pattern=type, method_pattern=method)
        elif isinstance(signature, MethodSignature):
            self.signature = signature
        else:
            self.signature = parse_signature(signature)
        self.exception = exception

    def matches(self, joinpoint: JoinPoint, func: object | None = None) -> bool:
        # Exception join points share their shadow with the method join
        # point; dispatch registers them on METHOD hooks.
        if joinpoint.kind is not JoinPointKind.METHOD:
            return False
        if not self.signature.matches_names(
            tuple(joinpoint.mro_names()), joinpoint.member
        ):
            return False
        if func is None:
            return True
        return self.signature.matches_callable(func)

    def accepts(self, exc: BaseException) -> bool:
        """Run-time filter: does this cut care about ``exc``?"""
        return self.exception is None or isinstance(exc, self.exception)

    def overlaps(self, other: Crosscut) -> bool:
        if not isinstance(other, ExceptionCut):
            return False
        if not (
            self.signature.type_pattern.overlaps(other.signature.type_pattern)
            and self.signature.method_pattern.overlaps(other.signature.method_pattern)
        ):
            return False
        if self.exception is None or other.exception is None:
            return True
        return issubclass(self.exception, other.exception) or issubclass(
            other.exception, self.exception
        )

    def __repr__(self) -> str:
        exc = self.exception.__name__ if self.exception else "*"
        return f"ExceptionCut({self.signature!r}, exception={exc})"
