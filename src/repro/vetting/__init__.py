"""Static vetting of extensions before publication and installation.

The sandbox, budgets, and supervisor (PRs 1–4) contain misbehaving
extensions *at run time*; this package moves the same defect classes to
*before insertion*, where the paper's catalog/adaptation pipeline can
refuse them outright:

- :mod:`repro.vetting.footprint` — AST capability-footprint inference,
  gateway-bypass and budget-hazard detection;
- :mod:`repro.vetting.interference` — symbolic crosscut-overlap analysis
  between extensions (and within one);
- :mod:`repro.vetting.vetter` — the orchestrating :class:`Vetter`,
  adding declaration diffs and ``REQUIRES``-cycle checks;
- :mod:`repro.vetting.report` — the :class:`VetReport` / :class:`Finding`
  data model, with a canonical digest the catalog signs into envelopes;
- :mod:`repro.vetting.cli` — the ``python -m repro vet`` entry point.
"""

from repro.vetting.footprint import (
    ClassFootprint,
    capability_footprint,
    clear_caches,
    instance_entry_points,
)
from repro.vetting.interference import (
    DEFAULT_ALLOWLIST,
    AdviceShape,
    ExtensionSummary,
    interference_findings,
    self_interference_findings,
    summarize,
    summarize_class,
)
from repro.vetting.report import (
    ERROR,
    INFO,
    SEVERITIES,
    WARNING,
    Finding,
    VetReport,
    report_digest,
)
from repro.vetting.vetter import (
    Vetter,
    requires_closure,
    requires_cycle,
    vet_class,
    vet_instance,
)

__all__ = [
    "AdviceShape",
    "ClassFootprint",
    "DEFAULT_ALLOWLIST",
    "ERROR",
    "ExtensionSummary",
    "Finding",
    "INFO",
    "SEVERITIES",
    "VetReport",
    "Vetter",
    "WARNING",
    "capability_footprint",
    "clear_caches",
    "instance_entry_points",
    "interference_findings",
    "report_digest",
    "requires_closure",
    "requires_cycle",
    "self_interference_findings",
    "summarize",
    "summarize_class",
    "vet_class",
    "vet_instance",
]
