"""``python -m repro vet`` — static vetting from the command line.

Targets are dotted module names (``repro.extensions.access_control``) or
filesystem paths; a directory is walked recursively for ``*.py`` files.
Every :class:`~repro.aop.aspect.Aspect` subclass *defined* in a target
module is vetted at class level, and interference is checked across the
whole target set, so a CI job over ``src/repro/extensions`` sees exactly
the catalog's view of the bundled extensions.

Exit status is 1 when any report carries an error-severity finding,
0 otherwise — suitable for a CI gate.  ``--json`` emits the reports as a
JSON array; ``--strict`` escalates capability-name hygiene to errors.
"""

from __future__ import annotations

import argparse
import importlib
import importlib.util
import json
import sys
from pathlib import Path
from types import ModuleType

from repro.aop.aspect import Aspect
from repro.vetting import interference as I
from repro.vetting.report import VetReport
from repro.vetting.vetter import Vetter


def _load_path(path: Path) -> ModuleType:
    """Import a file path as an anonymous module."""
    name = f"_vet_target_{path.stem}_{abs(hash(str(path))) % 10**8}"
    spec = importlib.util.spec_from_file_location(name, path)
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load {path}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def _resolve_targets(targets: list[str]) -> list[ModuleType]:
    modules: list[ModuleType] = []
    for target in targets:
        path = Path(target)
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                if file.name.startswith("_"):
                    continue
                modules.append(_load_path(file))
        elif path.is_file():
            modules.append(_load_path(path))
        else:
            modules.append(importlib.import_module(target))
    return modules


def _aspect_classes(module: ModuleType) -> list[type]:
    """Aspect subclasses defined (not merely imported) in ``module``."""
    classes = []
    for value in vars(module).values():
        if (
            isinstance(value, type)
            and issubclass(value, Aspect)
            and value is not Aspect
            and value.__module__ == module.__name__
        ):
            classes.append(value)
    return classes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro vet",
        description="Statically vet extension aspect classes.",
    )
    parser.add_argument(
        "targets",
        nargs="+",
        help="dotted module names, .py files, or directories",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit reports as a JSON array"
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="escalate capability-name hygiene findings to errors",
    )
    args = parser.parse_args(argv)

    try:
        modules = _resolve_targets(args.targets)
    except (ImportError, OSError, SyntaxError) as exc:
        print(f"repro vet: cannot load target: {exc}", file=sys.stderr)
        return 2

    classes: list[type] = []
    for module in modules:
        classes.extend(_aspect_classes(module))
    if not classes:
        print("repro vet: no Aspect subclasses found in targets", file=sys.stderr)
        return 2

    vetter = Vetter(strict=args.strict)
    summaries = {cls: I.summarize_class(cls) for cls in classes}
    reports: list[VetReport] = []
    for cls in classes:
        against = [
            summary for other, summary in summaries.items() if other is not cls
        ]
        reports.append(vetter.vet_class(cls, against=against))

    failed = any(report.has_errors for report in reports)
    if args.json:
        print(json.dumps([report.as_dict() for report in reports], indent=2))
    else:
        for report in reports:
            print(report.render())
        errors = sum(len(report.errors()) for report in reports)
        warnings = sum(len(report.warnings()) for report in reports)
        print(
            f"vetted {len(reports)} aspect class(es): "
            f"{errors} error(s), {warnings} warning(s)"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
