"""Crosscut interference analysis — symbolic join-point overlap.

Composing independently authored extensions is only safe if someone
reasons about what happens when their crosscuts select the same join
points.  This module does that reasoning *symbolically* — over the
wildcard patterns themselves (:meth:`Crosscut.overlaps`), without a
loaded class set — so the catalog can check a new extension against
everything already published, and a receiver against everything already
installed:

- two ``around`` advices that can wrap the same method are an error:
  either may short-circuit ``proceed()`` and silently disable the other;
- overlapping field-write advices are reported as possible shadowed
  writes (one advice overwriting what another just journaled);
- any other overlap is informational — stacking *before* advices is the
  normal composition model (Fig. 2's session → access-control → rest
  sequence relies on it).

Intentional stacks are allowlisted by class-name pair; the default
allowlist covers the paper's own session + access-control combination.
Findings against allowlisted pairs are downgraded to info rather than
suppressed, so the report still documents the interaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.aop.advice import AdviceKind
from repro.aop.aspect import Aspect
from repro.aop.crosscut import Crosscut, ExceptionCut, FieldWriteCut, MethodCut
from repro.vetting import report as R

_SPEC_ATTR = "_prose_advice_specs"

#: Class-name pairs whose join-point sharing is by design.  The paper's
#: implicit-extension pattern *requires* session management to stack
#: under its dependents at shared join points.
DEFAULT_ALLOWLIST: frozenset[frozenset[str]] = frozenset(
    {
        frozenset({"SessionManagement", "AccessControl"}),
        frozenset({"SessionManagement", "Billing"}),
        frozenset({"SessionManagement", "CallLogging"}),
    }
)


@dataclass(frozen=True)
class AdviceShape:
    """The symbolic footprint of one advice: who, what kind, where."""

    aspect_class: str
    advice_name: str
    kind: AdviceKind
    crosscut: Crosscut

    def describe(self) -> str:
        return (
            f"{self.aspect_class}.{self.advice_name} "
            f"({self.kind.name.lower()} {self.crosscut!r})"
        )


@dataclass(frozen=True)
class ExtensionSummary:
    """Everything interference analysis needs to know about one extension.

    Stored by the catalog per published entry, so checking a new
    publication against N existing ones never re-instantiates them.
    """

    extension: str
    aspect_class: str
    shapes: tuple[AdviceShape, ...] = field(default_factory=tuple)


_class_shape_cache: dict[type, tuple[AdviceShape, ...]] = {}


def shapes_of_class(cls: type) -> tuple[AdviceShape, ...]:
    """Advice shapes declared with decorators on ``cls`` (static view).

    Cached per class: decorator specs are fixed at class creation, and
    publish-time vetting calls this for every catalog entry it compares
    against.
    """
    cached = _class_shape_cache.get(cls)
    if cached is not None:
        return cached
    shapes: list[AdviceShape] = []
    seen: set[str] = set()
    for klass in cls.__mro__:
        for attr_name, func in vars(klass).items():
            if attr_name in seen:
                continue
            specs = getattr(func, _SPEC_ATTR, None)
            if not specs:
                continue
            seen.add(attr_name)
            for spec in specs:
                shapes.append(
                    AdviceShape(cls.__name__, attr_name, spec.kind, spec.crosscut)
                )
    result = tuple(shapes)
    _class_shape_cache[cls] = result
    return result


def shapes_of_instance(aspect: Aspect) -> tuple[AdviceShape, ...]:
    """All advice shapes of a configured instance (decorators + add_advice).

    Decorator shapes come from the cached class walk; imperatively
    registered advice is read off the instance's own list — no bound
    :class:`~repro.aop.advice.Advice` objects are rebuilt just to be
    summarized.
    """
    shapes = list(shapes_of_class(type(aspect)))
    for advice in aspect._instance_advices:
        name = advice.name or getattr(advice.callback, "__name__", "advice")
        shapes.append(
            AdviceShape(type(aspect).__name__, name, advice.kind, advice.crosscut)
        )
    return tuple(shapes)


def clear_shape_cache() -> None:
    """Drop cached class shapes (tests redefining classes use this)."""
    _class_shape_cache.clear()


def summarize(extension: str, aspect: Aspect) -> ExtensionSummary:
    """Symbolic summary of a configured aspect instance."""
    return ExtensionSummary(
        extension=extension,
        aspect_class=type(aspect).__name__,
        shapes=shapes_of_instance(aspect),
    )


def summarize_class(cls: type) -> ExtensionSummary:
    """Symbolic summary from the class alone (CLI / pre-instantiation)."""
    return ExtensionSummary(
        extension=cls.__name__, aspect_class=cls.__name__, shapes=shapes_of_class(cls)
    )


def _allowlisted(
    first: ExtensionSummary,
    second: ExtensionSummary,
    allowlist: frozenset[frozenset[str]],
) -> bool:
    pair_classes = frozenset({first.aspect_class, second.aspect_class})
    pair_names = frozenset({first.extension, second.extension})
    return pair_classes in allowlist or pair_names in allowlist


def interference_findings(
    candidate: ExtensionSummary,
    against: ExtensionSummary,
    allowlist: frozenset[frozenset[str]] = DEFAULT_ALLOWLIST,
) -> list[R.Finding]:
    """Overlap findings between two extensions' advice sets."""
    downgrade = _allowlisted(candidate, against, allowlist)
    findings: list[R.Finding] = []
    for mine in candidate.shapes:
        for theirs in against.shapes:
            if not mine.crosscut.overlaps(theirs.crosscut):
                continue
            findings.append(
                _overlap_finding(candidate, mine, against, theirs, downgrade)
            )
    return findings


def self_interference_findings(
    summary: ExtensionSummary,
) -> list[R.Finding]:
    """Around/around conflicts *within* one extension's own advice set.

    A single extension wrapping the same method with two around advices
    is almost always a packaging error (one of them loses the ability to
    observe the real join point).
    """
    findings: list[R.Finding] = []
    shapes = summary.shapes
    for index, mine in enumerate(shapes):
        for theirs in shapes[index + 1:]:
            if mine.kind is not AdviceKind.AROUND:
                continue
            if theirs.kind is not AdviceKind.AROUND:
                continue
            if mine.advice_name == theirs.advice_name:
                continue
            if mine.crosscut.overlaps(theirs.crosscut):
                findings.append(
                    R.Finding(
                        R.RULE_AROUND_CONFLICT,
                        R.WARNING,
                        f"{mine.describe()} and {theirs.describe()} can wrap "
                        "the same method within one extension",
                        subject=summary.extension,
                    )
                )
    return findings


def _overlap_finding(
    candidate: ExtensionSummary,
    mine: AdviceShape,
    against: ExtensionSummary,
    theirs: AdviceShape,
    downgrade: bool,
) -> R.Finding:
    subject = f"{candidate.extension}~{against.extension}"
    both_around = (
        mine.kind is AdviceKind.AROUND and theirs.kind is AdviceKind.AROUND
    )
    if both_around and isinstance(mine.crosscut, MethodCut):
        severity = R.INFO if downgrade else R.ERROR
        return R.Finding(
            R.RULE_AROUND_CONFLICT,
            severity,
            f"{mine.describe()} and {theirs.describe()} can both wrap the "
            "same method; either may short-circuit the other"
            + (" (allowlisted stack)" if downgrade else ""),
            subject=subject,
        )
    if isinstance(mine.crosscut, FieldWriteCut):
        severity = R.INFO if downgrade else R.WARNING
        return R.Finding(
            R.RULE_FIELD_SHADOWING,
            severity,
            f"{mine.describe()} and {theirs.describe()} advise overlapping "
            "field writes; later advice can shadow what earlier advice saw"
            + (" (allowlisted stack)" if downgrade else ""),
            subject=subject,
        )
    if isinstance(mine.crosscut, ExceptionCut):
        return R.Finding(
            R.RULE_CROSSCUT_OVERLAP,
            R.INFO,
            f"{mine.describe()} and {theirs.describe()} observe overlapping "
            "exception families",
            subject=subject,
        )
    return R.Finding(
        R.RULE_CROSSCUT_OVERLAP,
        R.INFO,
        f"{mine.describe()} and {theirs.describe()} share join points "
        "(ordinary advice stacking)",
        subject=subject,
    )
