"""Capability-footprint inference — AST analysis of advice classes.

The sandbox and supervisor catch misbehaving extensions only *after*
advice has run on the mobile node; this module finds the same classes of
defects before insertion by walking the aspect class's source:

- every ``gateway.acquire(Capability.X)`` (or string-literal capability)
  reachable from an advice entry point — advice methods declared with
  decorators, callbacks registered through ``self.add_advice(...)``, and
  the lifecycle hooks — following helper-method calls transitively;
- **gateway bypasses**: direct use of ambient-authority modules
  (``socket``, ``os``, ``time``, ``random``, ...), the ``open``/``eval``
  family of builtins, and attribute reads into :mod:`repro.net` /
  :mod:`repro.store` internals that skip the capability check (a small
  sanctioned set of pure helpers, e.g. ``current_caller``, is exempt);
- **budget hazards**: ``while True`` loops with no reachable ``break`` /
  ``return`` / ``raise``, and (mutual) recursion among reachable
  methods — both of which the supervisor's step budget would otherwise
  only catch mid-flight.

Analysis is per *class* (sources don't change at run time), cached, and
merged across the MRO so helpers inherited from intermediate bases are
followed.  Classes without retrievable source (REPL, exec) degrade to a
single informational finding rather than a false "clean".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.core import (
    class_def,
    clear_ast_caches,
    dotted_name,
    module_import_map,
)
from repro.aop.aspect import Aspect
from repro.aop.sandbox import Capability
from repro.vetting import report as R

#: Modules whose direct use inside advice bypasses the gateway: ambient
#: I/O, process control, and nondeterminism sources (the simulated clock
#: and seeded RNG must be reached through capabilities).
BANNED_MODULES = frozenset(
    {
        "socket",
        "os",
        "sys",
        "subprocess",
        "time",
        "random",
        "threading",
        "multiprocessing",
        "shutil",
        "pathlib",
        "urllib",
        "http",
        "requests",
        "ftplib",
    }
)

#: Builtins that reach the host system directly.
BANNED_BUILTINS = frozenset({"open", "eval", "exec", "compile", "__import__"})

#: Dotted prefixes that are platform internals: advice must go through
#: the gateway, not import the transport or the store directly.
INTERNAL_PREFIXES = ("repro.net", "repro.store")

#: Internal symbols advice may use anyway: pure data types and
#: context-variable reads that carry no ambient authority.
SANCTIONED_INTERNALS = frozenset(
    {
        "repro.net.transport.current_caller",
        "repro.store.database.MovementRecord",
    }
)

#: Lifecycle hooks that run node-side, inside the extension's sandbox.
LIFECYCLE_HOOKS = ("on_insert", "on_withdraw", "shutdown")

_SPEC_ATTR = "_prose_advice_specs"


@dataclass
class _MethodInfo:
    """Facts extracted from one method's AST."""

    owner: str
    name: str
    lineno: int = 0
    self_calls: set[str] = field(default_factory=set)
    #: (capability name or None-for-dynamic, lineno, raw source text)
    acquires: list[tuple[str | None, int, str]] = field(default_factory=list)
    #: Advice callback names registered via ``self.add_advice(...)``.
    registered_callbacks: set[str] = field(default_factory=set)
    #: (rule, message, lineno) gateway-bypass style findings.
    bypasses: list[tuple[str, str, int]] = field(default_factory=list)
    #: Line numbers of ``while True`` loops with no bounded exit.
    unbounded_loops: list[int] = field(default_factory=list)


@dataclass
class _ClassAst:
    """Cached AST-level facts for one class."""

    cls_name: str
    methods: dict[str, _MethodInfo] = field(default_factory=dict)
    source_available: bool = True


@dataclass
class ClassFootprint:
    """The merged, reachability-filtered result for one concrete class."""

    cls_name: str
    #: capability -> locations ("method:lineno") where it is acquired.
    acquired: dict[str, list[str]] = field(default_factory=dict)
    #: Locations of acquires whose capability is not a static constant.
    dynamic_acquires: list[str] = field(default_factory=list)
    #: Findings produced during analysis (bypasses, hazards, no-source).
    findings: list[R.Finding] = field(default_factory=list)
    #: Methods the analysis considered advice-reachable.
    entry_points: set[str] = field(default_factory=set)
    reachable: set[str] = field(default_factory=set)

    @property
    def capabilities(self) -> frozenset[str]:
        return frozenset(self.acquired)

    @property
    def is_exact(self) -> bool:
        """True when no dynamic acquire blurs the footprint."""
        return not self.dynamic_acquires


# -- module import maps -----------------------------------------------------
#
# The AST plumbing (dotted-name rendering, module import maps, class
# source retrieval, and their caches) lives in :mod:`repro.analysis.core`
# now, shared with the platform lints.  The historical private names are
# kept as aliases for compatibility.

_module_import_map = module_import_map
_dotted = dotted_name

# -- per-method extraction --------------------------------------------------


def _resolve_capability(arg: ast.AST) -> tuple[str | None, bool]:
    """(capability, resolved) for the first ``acquire`` argument."""
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value, True
    if (
        isinstance(arg, ast.Attribute)
        and isinstance(arg.value, ast.Name)
        and arg.value.id == "Capability"
    ):
        value = getattr(Capability, arg.attr, None)
        if isinstance(value, str):
            return value, True
        # Capability.NEWTORK — an attribute that does not exist: surfaces
        # as AttributeError at run time, report as unresolvable here.
        return None, False
    return None, False


class _MethodVisitor(ast.NodeVisitor):
    """Extracts acquires, bypasses, hazards and self-calls of one method."""

    def __init__(self, info: _MethodInfo, aliases: dict[str, str]):
        self.info = info
        self.aliases = aliases
        self._local_imports: dict[str, str] = {}

    # -- imports inside the method body (always suspicious) -----------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.partition(".")[0]
            self._local_imports[alias.asname or root] = alias.name
            if root in BANNED_MODULES:
                self.info.bypasses.append(
                    (
                        R.RULE_GATEWAY_BYPASS,
                        f"imports {alias.name!r} inside advice code",
                        node.lineno,
                    )
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        root = module.partition(".")[0]
        for alias in node.names:
            self._local_imports[alias.asname or alias.name] = f"{module}.{alias.name}"
        if root in BANNED_MODULES:
            self.info.bypasses.append(
                (
                    R.RULE_GATEWAY_BYPASS,
                    f"imports from {module!r} inside advice code",
                    node.lineno,
                )
            )
        elif module.startswith(INTERNAL_PREFIXES):
            for alias in node.names:
                full = f"{module}.{alias.name}"
                if full not in SANCTIONED_INTERNALS:
                    self.info.bypasses.append(
                        (
                            R.RULE_INTERNAL_REACH,
                            f"imports platform internal {full!r}",
                            node.lineno,
                        )
                    )
        self.generic_visit(node)

    # -- calls --------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr == "acquire" and node.args:
                capability, resolved = _resolve_capability(node.args[0])
                raw = ast.unparse(node.args[0])
                self.info.acquires.append(
                    (capability if resolved else None, node.lineno, raw)
                )
            elif func.attr == "add_advice" and self._is_self(func.value):
                self._record_callback(node)
            elif self._is_self(func.value):
                self.info.self_calls.add(func.attr)
        elif isinstance(func, ast.Name) and func.id in BANNED_BUILTINS:
            self.info.bypasses.append(
                (
                    R.RULE_GATEWAY_BYPASS,
                    f"calls builtin {func.id}() directly",
                    node.lineno,
                )
            )
        self.generic_visit(node)

    def _record_callback(self, node: ast.Call) -> None:
        callback: ast.AST | None = None
        for keyword in node.keywords:
            if keyword.arg == "callback":
                callback = keyword.value
        if callback is None and len(node.args) >= 3:
            callback = node.args[2]
        if (
            isinstance(callback, ast.Attribute)
            and self._is_self(callback.value)
        ):
            self.info.registered_callbacks.add(callback.attr)

    @staticmethod
    def _is_self(node: ast.AST) -> bool:
        return isinstance(node, ast.Name) and node.id == "self"

    # -- name / attribute uses ----------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and isinstance(node.ctx, ast.Load)
        ):
            # Conservative reachability: a bare ``self.X`` reference may
            # hand the method to a scheduler/timer; non-method attributes
            # are filtered out later by the method table.
            self.info.self_calls.add(node.attr)
        dotted = _dotted(node)
        if dotted is not None:
            self._check_dotted(dotted, node.lineno)
            return  # don't re-flag the chain's root Name
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self._check_dotted(node.id, node.lineno)

    def _check_dotted(self, dotted: str, lineno: int) -> None:
        head, _, rest = dotted.partition(".")
        origin = self._local_imports.get(head) or self.aliases.get(head)
        if origin is None:
            origin = dotted if head in BANNED_MODULES else None
        if origin is None:
            return
        full = f"{origin}.{rest}" if rest else origin
        root = origin.partition(".")[0]
        if root in BANNED_MODULES:
            self.info.bypasses.append(
                (
                    R.RULE_GATEWAY_BYPASS,
                    f"uses {full!r} directly instead of the gateway",
                    lineno,
                )
            )
        elif full.startswith(INTERNAL_PREFIXES) and not any(
            full == symbol or full.startswith(symbol + ".")
            for symbol in SANCTIONED_INTERNALS
        ):
            self.info.bypasses.append(
                (
                    R.RULE_INTERNAL_REACH,
                    f"reaches into platform internal {full!r}",
                    lineno,
                )
            )

    # -- loops --------------------------------------------------------------

    def visit_While(self, node: ast.While) -> None:
        test = node.test
        is_forever = isinstance(test, ast.Constant) and test.value is True
        if is_forever and not _has_bounded_exit(node):
            self.info.unbounded_loops.append(node.lineno)
        self.generic_visit(node)


def _has_bounded_exit(loop: ast.While) -> bool:
    for node in ast.walk(loop):
        if isinstance(node, (ast.Break, ast.Return, ast.Raise)):
            return True
    return False


# -- per-class extraction ---------------------------------------------------

_class_ast_cache: dict[type, _ClassAst] = {}


def _analyze_class_ast(cls: type) -> _ClassAst:
    cached = _class_ast_cache.get(cls)
    if cached is not None:
        return cached
    result = _ClassAst(cls_name=cls.__name__)
    class_node = class_def(cls)
    if class_node is None:
        result.source_available = False
        _class_ast_cache[cls] = result
        return result
    aliases = module_import_map(cls.__module__)
    for node in class_node.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        info = _MethodInfo(owner=cls.__name__, name=node.name, lineno=node.lineno)
        visitor = _MethodVisitor(info, aliases)
        for statement in node.body:
            visitor.visit(statement)
        result.methods[node.name] = info
    _class_ast_cache[cls] = result
    return result


def _analysis_classes(cls: type) -> list[type]:
    """The MRO slice to analyze: the class and bases below Aspect."""
    out = []
    for klass in cls.__mro__:
        if klass in (Aspect, object):
            break
        out.append(klass)
    return out


def _decorator_advice_names(cls: type) -> set[str]:
    names: set[str] = set()
    for klass in cls.__mro__:
        for attr_name, func in vars(klass).items():
            if getattr(func, _SPEC_ATTR, None):
                names.add(attr_name)
    return names


# -- the public entry point -------------------------------------------------

_footprint_cache: dict[tuple[type, frozenset[str]], ClassFootprint] = {}


def capability_footprint(
    cls: type, extra_entry_points: frozenset[str] = frozenset()
) -> ClassFootprint:
    """Infer the capability footprint of ``cls``.

    ``extra_entry_points`` names additional advice callbacks known only
    at instance level (e.g. callables handed to ``add_advice`` after
    construction).  Results are cached per (class, extra entry points).
    """
    key = (cls, extra_entry_points)
    cached = _footprint_cache.get(key)
    if cached is not None:
        return cached

    footprint = ClassFootprint(cls_name=cls.__name__)
    merged: dict[str, _MethodInfo] = {}
    any_source = False
    for klass in reversed(_analysis_classes(cls)):
        analysis = _analyze_class_ast(klass)
        if analysis.source_available:
            any_source = True
        merged.update(analysis.methods)  # derived definitions win
    if not any_source:
        footprint.findings.append(
            R.Finding(
                R.RULE_NO_SOURCE,
                R.WARNING,
                f"source of {cls.__name__} unavailable; static analysis skipped",
                subject=cls.__name__,
            )
        )
        _footprint_cache[key] = footprint
        return footprint

    entries: set[str] = set(extra_entry_points)
    entries.update(_decorator_advice_names(cls))
    entries.update(hook for hook in LIFECYCLE_HOOKS if hook in merged)
    for info in merged.values():
        entries.update(info.registered_callbacks)
    entries &= set(merged)  # only methods we actually have source for
    footprint.entry_points = set(entries)

    # Reachability over the self-call graph.
    reachable: set[str] = set()
    frontier = list(entries)
    while frontier:
        name = frontier.pop()
        if name in reachable:
            continue
        reachable.add(name)
        info = merged.get(name)
        if info is None:
            continue
        for callee in info.self_calls:
            if callee in merged and callee not in reachable:
                frontier.append(callee)
    footprint.reachable = reachable

    for name in sorted(reachable):
        info = merged.get(name)
        if info is None:
            continue
        location = lambda line: f"{info.owner}.{name}:{line}"  # noqa: E731
        for capability, lineno, raw in info.acquires:
            if capability is not None:
                footprint.acquired.setdefault(capability, []).append(
                    location(lineno)
                )
            else:
                footprint.dynamic_acquires.append(location(lineno))
                footprint.findings.append(
                    R.Finding(
                        R.RULE_DYNAMIC_ACQUIRE,
                        R.INFO,
                        f"acquire({raw}) is not statically resolvable; "
                        "the footprint is a lower bound",
                        subject=cls.__name__,
                        location=location(lineno),
                    )
                )
        for rule, message, lineno in info.bypasses:
            footprint.findings.append(
                R.Finding(
                    rule,
                    R.ERROR,
                    message,
                    subject=cls.__name__,
                    location=location(lineno),
                )
            )
        for lineno in info.unbounded_loops:
            footprint.findings.append(
                R.Finding(
                    R.RULE_UNBOUNDED_LOOP,
                    R.ERROR,
                    "'while True' without a bounded exit would only die at "
                    "the supervisor's step budget",
                    subject=cls.__name__,
                    location=location(lineno),
                )
            )

    footprint.findings.extend(_recursion_findings(cls.__name__, merged, reachable))
    _footprint_cache[key] = footprint
    return footprint


def _recursion_findings(
    cls_name: str, merged: dict[str, _MethodInfo], reachable: set[str]
) -> list[R.Finding]:
    """Cycles in the reachable self-call graph (direct or mutual)."""
    findings: list[R.Finding] = []
    reported: set[frozenset[str]] = set()

    def dfs(name: str, stack: list[str]) -> None:
        info = merged.get(name)
        if info is None:
            return
        for callee in sorted(info.self_calls):
            if callee not in reachable or callee not in merged:
                continue
            if callee in stack:
                cycle = stack[stack.index(callee):] + [callee]
                cycle_key = frozenset(cycle)
                if cycle_key not in reported:
                    reported.add(cycle_key)
                    path = " -> ".join(cycle)
                    findings.append(
                        R.Finding(
                            R.RULE_RECURSION,
                            R.WARNING,
                            f"recursion reachable from advice: {path}; "
                            "depth is bounded only by the step budget",
                            subject=cls_name,
                            location=cycle[0],
                        )
                    )
                continue
            dfs(callee, stack + [callee])

    for entry in sorted(reachable):
        dfs(entry, [entry])
    return findings


def instance_entry_points(aspect: Aspect) -> frozenset[str]:
    """Callback method names of an aspect instance's registered advices.

    Complements the static ``add_advice`` extraction: callbacks attached
    after ``__init__`` (or through indirection the AST walk cannot see)
    are still found here, as long as they are bound methods of the
    aspect itself.
    """
    names: set[str] = set()
    # Decorator advices are already static entry points; only the
    # imperatively registered list can add new callbacks here.
    for advice in aspect._instance_advices:
        callback = advice.callback
        bound_self = getattr(callback, "__self__", None)
        func = getattr(callback, "__func__", None)
        if bound_self is aspect and func is not None:
            names.add(func.__name__)
    return frozenset(names)


def clear_caches() -> None:
    """Drop all memoized analyses (tests redefining classes use this)."""
    from repro.vetting.interference import clear_shape_cache
    from repro.vetting.vetter import _vet_cache

    _class_ast_cache.clear()
    _footprint_cache.clear()
    _vet_cache.clear()
    clear_shape_cache()
    clear_ast_caches()
