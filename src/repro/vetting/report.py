"""Vet reports — the structured verdict of a static analysis pass.

A :class:`VetReport` is what travels with an extension: the catalog signs
its canonical digest into the envelope at publish time, and the receiver
either verifies that digest or re-derives the whole report before the
transactional install.  Findings are plain data (rule id, severity,
message, subject, location) so reports serialize to JSON for the CLI and
to a dict for the envelope without carrying live objects.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

#: Severity levels, in increasing order of consequence.
INFO = "info"
WARNING = "warning"
ERROR = "error"

SEVERITIES = (INFO, WARNING, ERROR)

# -- rule ids ---------------------------------------------------------------

#: ``gateway.acquire`` of a capability missing from the declared set.
RULE_UNDER_DECLARED = "capability.under-declared"
#: Declared capability never acquired anywhere reachable (least privilege).
RULE_OVER_DECLARED = "capability.over-declared"
#: Declared capability name outside :data:`Capability.ALL` (likely typo).
RULE_UNKNOWN_CAPABILITY = "capability.unknown-name"
#: ``acquire`` argument could not be resolved statically.
RULE_DYNAMIC_ACQUIRE = "capability.dynamic-acquire"
#: Direct use of a banned module / builtin instead of the gateway.
RULE_GATEWAY_BYPASS = "sandbox.gateway-bypass"
#: Reach into repro.net / repro.store internals from advice code.
RULE_INTERNAL_REACH = "sandbox.internal-reach"
#: ``while True`` without a bounded exit inside reachable advice code.
RULE_UNBOUNDED_LOOP = "budget.unbounded-loop"
#: (Mutual) recursion among methods reachable from advice.
RULE_RECURSION = "budget.recursion"
#: Cyclic ``REQUIRES`` dependency chain.
RULE_REQUIRES_CYCLE = "requires.cycle"
#: Two around advices can share a method join point.
RULE_AROUND_CONFLICT = "crosscut.around-conflict"
#: Overlapping crosscuts between advices (non-around, informational).
RULE_CROSSCUT_OVERLAP = "crosscut.overlap"
#: Overlapping field-write crosscuts (possible shadowed writes).
RULE_FIELD_SHADOWING = "crosscut.field-shadowing"
#: Source unavailable; static analysis skipped for the class.
RULE_NO_SOURCE = "analysis.no-source"


@dataclass(frozen=True)
class Finding:
    """One defect (or observation) the vetter produced."""

    rule: str
    severity: str
    message: str
    #: The class (or extension pair) the finding is about.
    subject: str = ""
    #: ``method:lineno`` within the subject's source, when known.
    location: str = ""

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "subject": self.subject,
            "location": self.location,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(
            rule=str(data["rule"]),
            severity=str(data["severity"]),
            message=str(data["message"]),
            subject=str(data.get("subject", "")),
            location=str(data.get("location", "")),
        )

    def render(self) -> str:
        where = f" [{self.subject}{':' if self.location else ''}{self.location}]"
        return f"{self.severity.upper():7s} {self.rule}{where} {self.message}"


@dataclass
class VetReport:
    """The full verdict on one extension."""

    #: Logical extension name (catalog name) or the class name when the
    #: report was produced outside a catalog (CLI over a module).
    extension: str
    #: Dotted name of the vetted aspect class.
    aspect_class: str
    findings: list[Finding] = field(default_factory=list)
    #: True when the vetter ran with strict severity escalation.
    strict: bool = False
    #: Memoized canonical digest; findings mutations invalidate it.
    _digest_cache: bytes | None = field(
        default=None, repr=False, compare=False
    )

    def add(
        self,
        rule: str,
        severity: str,
        message: str,
        subject: str = "",
        location: str = "",
    ) -> Finding:
        finding = Finding(rule, severity, message, subject, location)
        self.findings.append(finding)
        self._digest_cache = None
        return finding

    def extend(self, findings: list[Finding]) -> None:
        self.findings.extend(findings)
        self._digest_cache = None

    # -- verdicts -----------------------------------------------------------

    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == WARNING]

    @property
    def has_errors(self) -> bool:
        return any(f.severity == ERROR for f in self.findings)

    @property
    def clean(self) -> bool:
        """True when nothing blocks installation."""
        return not self.has_errors

    # -- serialization ------------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "extension": self.extension,
            "aspect_class": self.aspect_class,
            "strict": self.strict,
            "findings": [f.as_dict() for f in self.findings],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "VetReport":
        return cls(
            extension=str(data["extension"]),
            aspect_class=str(data["aspect_class"]),
            strict=bool(data.get("strict", False)),
            findings=[Finding.from_dict(f) for f in data.get("findings", [])],
        )

    def digest(self) -> bytes:
        """Canonical content hash — what the catalog's signer signs.

        Computed over a deterministic encoding of the report's fields
        (finding order included), so the receiver can recompute it from
        the dict that traveled in the envelope and detect any tampering
        with the findings.  Memoized: a catalog signs and re-seals the
        same accepted report many times; the receiver recomputes on a
        freshly parsed report, which is the tamper check.
        """
        if self._digest_cache is None:
            canonical = repr(
                (
                    self.extension,
                    self.aspect_class,
                    self.strict,
                    tuple(
                        (f.rule, f.severity, f.message, f.subject, f.location)
                        for f in self.findings
                    ),
                )
            ).encode()
            self._digest_cache = hashlib.sha256(canonical).digest()
        return self._digest_cache

    def render(self) -> str:
        """Human-readable multi-line report for the CLI."""
        head = (
            f"{self.extension} ({self.aspect_class}): "
            f"{len(self.errors())} error(s), {len(self.warnings())} warning(s)"
        )
        if not self.findings:
            return f"{head}\n  clean"
        body = "\n".join(f"  {finding.render()}" for finding in self.findings)
        return f"{head}\n{body}"

    def __repr__(self) -> str:
        return (
            f"<VetReport {self.extension} errors={len(self.errors())} "
            f"warnings={len(self.warnings())}>"
        )


def report_digest(report_dict: dict) -> bytes:
    """Digest of a report already in dict form (the envelope's copy)."""
    return VetReport.from_dict(report_dict).digest()
