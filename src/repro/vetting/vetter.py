"""The vetter — orchestrates every static check into one report.

One :class:`Vetter` instance holds the analysis options (strictness,
interference allowlist) and produces :class:`~repro.vetting.report.VetReport`
objects for aspect classes or configured instances:

1. **Declared-capability hygiene** — names outside ``Capability.ALL``
   are warnings (errors in strict mode): a typo like ``"newtork"``
   otherwise survives until ``acquire`` raises mid-advice.
2. **Capability-footprint diff** — statically acquired capabilities the
   declaration misses are install-blocking errors (the advice would die
   mid-flight with ``SandboxViolation``); declared-but-never-acquired
   capabilities are least-privilege warnings.  ``REQUIRES`` dependencies
   are analyzed against *their own* declarations (their sandbox is the
   node policy, so gaps there are warnings, not errors).
3. **Gateway bypasses and budget hazards** — carried over from
   :mod:`repro.vetting.footprint` (errors and warnings respectively).
4. **REQUIRES cycles** — reported with the full path (A -> B -> A),
   matching what the receiver would raise at install time.
5. **Crosscut interference** — within the extension and against every
   summary handed in (the catalog's published set, a node's installed
   set), per :mod:`repro.vetting.interference`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.aop.aspect import Aspect
from repro.aop.crosscut import Crosscut, ExceptionCut, FieldWriteCut, MethodCut
from repro.aop.sandbox import Capability
from repro.vetting import footprint as F
from repro.vetting import interference as I
from repro.vetting import report as R
from repro.vetting.interference import DEFAULT_ALLOWLIST, ExtensionSummary


def _crosscut_key(cut: Crosscut) -> tuple:
    """Value-based hash key for a crosscut (instances are per-aspect)."""
    if isinstance(cut, MethodCut):
        return ("method", cut.signature)
    if isinstance(cut, ExceptionCut):
        return ("exception", cut.signature, cut.exception)
    if isinstance(cut, FieldWriteCut):
        return ("field", cut.type_pattern.pattern, cut.field_pattern.pattern)
    return ("other", type(cut).__qualname__, repr(cut))


def _summary_key(summary: ExtensionSummary) -> tuple:
    return (
        summary.extension,
        summary.aspect_class,
        tuple(
            (shape.advice_name, shape.kind, _crosscut_key(shape.crosscut))
            for shape in summary.shapes
        ),
    )


#: Memoized full-analysis results.  Every input the verdict depends on is
#: part of the key (class identity — source is cached per class object
#: anyway — declared set, advice shapes by value, entry points, the
#: against-set's shapes, and the vetter options), so a hit is exactly a
#: re-vet of an unchanged configuration: the catalog's steady state when
#: a hall re-publishes its policy.  Cleared by
#: :func:`repro.vetting.footprint.clear_caches`.
_vet_cache: dict[tuple, R.VetReport] = {}


def requires_cycle(cls: type) -> list[str] | None:
    """The first ``REQUIRES`` cycle reachable from ``cls``, as a path.

    Returns e.g. ``["CycleA", "CycleB", "CycleA"]`` — the same shape the
    receiver's install-time error names — or None when the dependency
    graph is acyclic.
    """

    def visit(klass: type, stack: list[type]) -> list[str] | None:
        for dependency in getattr(klass, "REQUIRES", ()):
            if dependency in stack:
                cycle = stack[stack.index(dependency):] + [dependency]
                return [entry.__name__ for entry in cycle]
            found = visit(dependency, stack + [dependency])
            if found is not None:
                return found
        return None

    return visit(cls, [cls])


def requires_closure(cls: type) -> list[type]:
    """Transitive ``REQUIRES`` closure of ``cls`` (dependencies only).

    Assumes :func:`requires_cycle` returned None; silently stops
    descending into any back edge otherwise.
    """
    order: list[type] = []
    seen: set[type] = set()

    def visit(klass: type) -> None:
        for dependency in getattr(klass, "REQUIRES", ()):
            if dependency in seen:
                continue
            seen.add(dependency)
            visit(dependency)
            order.append(dependency)

    visit(cls)
    return order


class Vetter:
    """Configured static analyzer for extensions."""

    def __init__(
        self,
        strict: bool = False,
        allowlist: Iterable[frozenset[str]] | None = None,
    ):
        #: Strict mode escalates capability-name hygiene findings to
        #: errors; footprint errors are blocking either way.
        self.strict = strict
        self.allowlist: frozenset[frozenset[str]] = (
            DEFAULT_ALLOWLIST
            if allowlist is None
            else frozenset(frozenset(pair) for pair in allowlist)
        )

    # -- entry points --------------------------------------------------------

    def vet_instance(
        self,
        aspect: Aspect,
        extension: str | None = None,
        declared: Iterable[str] | None = None,
        against: Sequence[ExtensionSummary] = (),
        summary: ExtensionSummary | None = None,
    ) -> R.VetReport:
        """Vet a configured aspect instance (the catalog/receiver path).

        ``declared`` defaults to the class's ``REQUIRED_CAPABILITIES``;
        a receiver passes the envelope's capability set instead, which
        is what its sandbox will actually be narrowed to.  A caller that
        already summarized the instance (the catalog keeps summaries per
        entry) passes ``summary`` to skip re-deriving it.
        """
        cls = type(aspect)
        name = extension or aspect.name
        declared_set = frozenset(
            cls.REQUIRED_CAPABILITIES if declared is None else declared
        )
        if summary is None:
            summary = I.summarize(name, aspect)
        extra_entries = F.instance_entry_points(aspect)
        return self._vet(
            cls, name, declared_set, summary, extra_entries, against
        )

    def vet_class(
        self,
        cls: type,
        extension: str | None = None,
        against: Sequence[ExtensionSummary] = (),
    ) -> R.VetReport:
        """Vet an aspect class without instantiating it (the CLI path).

        Only decorator-declared advice is visible for interference;
        crosscuts configured in ``__init__`` are still covered by the
        footprint walk (callback extraction from ``add_advice`` calls).
        """
        name = extension or cls.__name__
        declared_set = frozenset(cls.REQUIRED_CAPABILITIES)
        summary = I.summarize_class(cls)
        return self._vet(cls, name, declared_set, summary, frozenset(), against)

    # -- the pipeline --------------------------------------------------------

    def _vet(
        self,
        cls: type,
        name: str,
        declared: frozenset[str],
        summary: ExtensionSummary,
        extra_entries: frozenset[str],
        against: Sequence[ExtensionSummary],
    ) -> R.VetReport:
        cache_key = (
            cls,
            name,
            declared,
            _summary_key(summary),
            extra_entries,
            tuple(_summary_key(other) for other in against),
            self.strict,
            self.allowlist,
        )
        cached = _vet_cache.get(cache_key)
        if cached is not None:
            return cached
        report = R.VetReport(
            extension=name,
            aspect_class=f"{cls.__module__}.{cls.__qualname__}",
            strict=self.strict,
        )
        self._check_declared_names(report, cls.__name__, declared)
        cycle = requires_cycle(cls)
        if cycle is not None:
            report.add(
                R.RULE_REQUIRES_CYCLE,
                R.ERROR,
                f"cyclic REQUIRES chain: {' -> '.join(cycle)}",
                subject=cls.__name__,
            )
            dependencies: list[type] = []
        else:
            dependencies = requires_closure(cls)

        self._check_footprint(report, cls, declared, extra_entries, root=True)
        for dependency in dependencies:
            self._check_footprint(
                report,
                dependency,
                frozenset(dependency.REQUIRED_CAPABILITIES),
                frozenset(),
                root=False,
            )

        report.extend(I.self_interference_findings(summary))
        for other in against:
            if other.extension == name:
                continue  # re-publication: don't interfere with ourselves
            report.extend(
                I.interference_findings(summary, other, self.allowlist)
            )
        _vet_cache[cache_key] = report
        return report

    def _check_declared_names(
        self, report: R.VetReport, subject: str, declared: frozenset[str]
    ) -> None:
        for capability in sorted(declared):
            if not Capability.is_known(capability):
                report.add(
                    R.RULE_UNKNOWN_CAPABILITY,
                    R.ERROR if self.strict else R.WARNING,
                    f"declared capability {capability!r} is not a known "
                    f"capability (known: {sorted(Capability.ALL)})",
                    subject=subject,
                )

    def _check_footprint(
        self,
        report: R.VetReport,
        cls: type,
        declared: frozenset[str],
        extra_entries: frozenset[str],
        root: bool,
    ) -> None:
        footprint = F.capability_footprint(cls, extra_entries)
        report.extend(footprint.findings)
        if any(f.rule == R.RULE_NO_SOURCE for f in footprint.findings):
            return  # nothing to diff against
        acquired = footprint.capabilities
        for capability in sorted(acquired - declared):
            sites = ", ".join(footprint.acquired[capability][:3])
            # The root extension's sandbox is narrowed to its declared
            # set — an undeclared acquire dies with SandboxViolation
            # mid-advice.  Dependencies run under the full node policy,
            # so their declaration gaps are hygiene warnings.
            report.add(
                R.RULE_UNDER_DECLARED,
                R.ERROR if root else R.WARNING,
                f"advice acquires {capability!r} but the declaration "
                f"omits it (at {sites})",
                subject=cls.__name__,
            )
        if footprint.is_exact:
            for capability in sorted(declared - acquired):
                if not Capability.is_known(capability):
                    continue  # already reported as an unknown name
                report.add(
                    R.RULE_OVER_DECLARED,
                    R.WARNING,
                    f"declared capability {capability!r} is never acquired "
                    "by reachable advice code (least privilege)",
                    subject=cls.__name__,
                )


def vet_instance(aspect: Aspect, **kwargs) -> R.VetReport:
    """Module-level convenience: vet with default options."""
    return Vetter().vet_instance(aspect, **kwargs)


def vet_class(cls: type, **kwargs) -> R.VetReport:
    """Module-level convenience: vet a class with default options."""
    return Vetter().vet_class(cls, **kwargs)
