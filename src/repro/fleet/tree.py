"""The registrar tree: hierarchical aggregation between base and leaves.

A base station cannot hold 100k direct conversations — and per the
paper's own deployment sketch it never has to: devices cluster around
local infrastructure.  The fleet models that as a three-level tree::

    BaseStation (lookup + extension base + pipeline)     region 0
        ▲ real transport: fleet.offer / fleet.revoke /
        │ lookup.register / lookup.renew_batch
    ClusterRegistrar × ~N/8192  (real Transport endpoints) region 0
        ▲ kernel handoffs (epoch-quantized)
    ClusterHead × ~N/512        (__slots__ objects)       regions 1..R
        ▲ array indexing
    leaves × N                  (rows in FleetPopulation)

Aggregation happens at each cut:

- The base verifies and signs envelopes **once per registrar**, not per
  leaf: a registrar opens the envelope against its trust store and fans
  the installed extension out to its heads as kernel handoffs.
- Head liveness is leased in the base's (sweeping) lookup tables — one
  :class:`~repro.discovery.service.ServiceItem` per head — and renewed
  with one ``lookup.renew_batch`` round trip per registrar per interval
  instead of one ``lookup.renew`` per head.
- Leaf leases never reach the base at all: each region sweeps its own
  population slice and hands one aggregate report per sweep back to its
  registrar.

The traffic the base actually serves is therefore O(registrars), while
the modeled fleet is O(leaves).
"""

from __future__ import annotations

import logging
from typing import TYPE_CHECKING, Any, Callable

from repro.discovery.registrar import REGISTER, RENEW_BATCH, CANCEL
from repro.discovery.service import ServiceItem
from repro.errors import SimulationError, VerificationError
from repro.midas.envelope import ExtensionEnvelope
from repro.midas.trust import TrustStore
from repro.net.transport import Transport
from repro.sim.kernel import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.regions import ShardedKernel

logger = logging.getLogger(__name__)

#: Base → registrar: distribute a sealed extension envelope downtree.
FLEET_OFFER = "fleet.offer"
#: Base → registrar: withdraw an extension fleet-wide.
FLEET_REVOKE = "fleet.revoke"
#: Interface under which cluster heads lease their liveness at the base.
HEAD_INTERFACE = "fleet.cluster-head"

#: Tree fan-out defaults: leaves per cluster head, heads per registrar.
DEFAULT_LEAVES_PER_CLUSTER = 512
DEFAULT_CLUSTERS_PER_REGISTRAR = 16


class TreePlan:
    """Pure topology math: how N leaves split into heads and registrars.

    Leaves are contiguous index ranges (head h owns ``[h*L, (h+1)*L)``)
    so population state stays array-sliced rather than pointer-chased.
    Registrar r owns heads ``[r*C, (r+1)*C)`` and leaf region ``r + 1``
    (region 0 is the base region).
    """

    __slots__ = (
        "leaves",
        "leaves_per_cluster",
        "clusters_per_registrar",
        "heads",
        "registrars",
    )

    def __init__(
        self,
        leaves: int,
        leaves_per_cluster: int = DEFAULT_LEAVES_PER_CLUSTER,
        clusters_per_registrar: int = DEFAULT_CLUSTERS_PER_REGISTRAR,
    ):
        if leaves < 1:
            raise SimulationError(f"need >= 1 leaf, got {leaves}")
        if leaves_per_cluster < 1 or clusters_per_registrar < 1:
            raise SimulationError("tree fan-outs must be >= 1")
        self.leaves = leaves
        self.leaves_per_cluster = leaves_per_cluster
        self.clusters_per_registrar = clusters_per_registrar
        self.heads = -(-leaves // leaves_per_cluster)
        self.registrars = -(-self.heads // clusters_per_registrar)

    @property
    def regions(self) -> int:
        """Region count including the base region 0."""
        return self.registrars + 1

    def leaf_range(self, head: int) -> tuple[int, int]:
        """The contiguous ``[start, stop)`` leaf slice of head ``head``."""
        start = head * self.leaves_per_cluster
        return start, min(start + self.leaves_per_cluster, self.leaves)

    def head_range(self, registrar: int) -> tuple[int, int]:
        """The contiguous ``[start, stop)`` head slice of a registrar."""
        start = registrar * self.clusters_per_registrar
        return start, min(start + self.clusters_per_registrar, self.heads)

    def region_of_head(self, head: int) -> int:
        """The leaf region a head's cluster simulates in."""
        return head // self.clusters_per_registrar + 1

    def __repr__(self) -> str:
        return (
            f"<TreePlan leaves={self.leaves} heads={self.heads} "
            f"registrars={self.registrars}>"
        )


class ClusterHead:
    """One cluster head: a leaf range and its lease at the base.

    Heads are *not* transport endpoints — at fleet scale they are plain
    ``__slots__`` records driven by kernel handoffs from their registrar
    and by their region's sweep loop.  Their only protocol presence is
    the leased :data:`HEAD_INTERFACE` item the registrar maintains for
    them at the base.
    """

    __slots__ = ("index", "region", "registrar", "start", "stop", "lease_id")

    def __init__(self, index: int, region: int, registrar: int, start: int, stop: int):
        self.index = index
        self.region = region
        self.registrar = registrar
        self.start = start
        self.stop = stop
        #: Lease id at the base lookup, once registered (None before/after).
        self.lease_id: str | None = None

    @property
    def size(self) -> int:
        return self.stop - self.start

    def service_item(self, provider: str) -> ServiceItem:
        """The liveness item this head leases at the base lookup.

        The service id is stable (derived from the head index) so
        re-registration after a lapse *replaces* the stale entry instead
        of duplicating it.
        """
        return ServiceItem(
            HEAD_INTERFACE,
            provider,
            {"head": self.index, "leaves": self.size},
            service_id=f"fleet-head-{self.index}",
        )

    def __repr__(self) -> str:
        return (
            f"<ClusterHead {self.index} region={self.region} "
            f"leaves=[{self.start},{self.stop})>"
        )


class ClusterRegistrar:
    """One mid-tree aggregator: a real transport endpoint near the base.

    Serves :data:`FLEET_OFFER` / :data:`FLEET_REVOKE` from the base
    station, verifying each envelope **once** before fanning it out to
    its cluster heads as epoch-quantized kernel handoffs; maintains its
    heads' leases at the base lookup with one ``lookup.renew_batch``
    round trip per interval; and accumulates the leaf-level sweep
    reports its regions hand back uptree.
    """

    def __init__(
        self,
        index: int,
        transport: Transport,
        simulator: Simulator,
        kernel: "ShardedKernel",
        trust_store: TrustStore,
        base_id: str,
        heads: list[ClusterHead],
        renew_interval: float,
        lease_duration: float,
        on_offer: Callable[[ClusterHead, str, int], None],
        on_revoke: Callable[[ClusterHead, str], None],
    ):
        self.index = index
        self.transport = transport
        self.simulator = simulator
        self.kernel = kernel
        self.trust_store = trust_store
        self.base_id = base_id
        self.heads = heads
        self.renew_interval = renew_interval
        self.lease_duration = lease_duration
        self._on_offer = on_offer
        self._on_revoke = on_revoke
        self._renew_event = None
        #: Aggregated leaf activity handed up by this registrar's regions.
        self.leaf_installs = 0
        self.leaf_renewals = 0
        self.leaf_expiries = 0
        self.leaf_revocations = 0
        #: Protocol accounting (the numbers the aggregation claim rests on).
        self.envelopes_verified = 0
        self.renew_batches = 0
        self.head_registrations = 0
        self.head_reregistrations = 0
        transport.register(FLEET_OFFER, self._serve_offer)
        transport.register(FLEET_REVOKE, self._serve_revoke)

    @property
    def node_id(self) -> str:
        return self.transport.node.node_id

    # -- head leases (uptree) ----------------------------------------------------

    def register_heads(self) -> None:
        """Lease every head's liveness item at the base, then keep the
        whole set alive on one batched renewal timer."""
        for head in self.heads:
            self._register_head(head)
        if self._renew_event is None:
            self._renew_event = self.simulator.schedule(
                self.renew_interval, self._renew_tick
            )

    def _register_head(self, head: ClusterHead, rebound: bool = False) -> None:
        def on_reply(body: dict[str, Any], head: ClusterHead = head) -> None:
            head.lease_id = body["lease_id"]

        self.head_registrations += 1
        if rebound:
            self.head_reregistrations += 1
        self.transport.request(
            self.base_id,
            REGISTER,
            {
                "item": head.service_item(self.node_id),
                "duration": self.lease_duration,
            },
            on_reply=on_reply,
            on_error=lambda exc, head=head: logger.debug(
                "%s: head registration for %s failed (next renew tick "
                "reconciles): %s", self.node_id, head.node_id, exc
            ),
        )

    def _renew_tick(self) -> None:
        self._renew_event = self.simulator.schedule(
            self.renew_interval, self._renew_tick
        )
        lease_ids = [head.lease_id for head in self.heads if head.lease_id]
        if not lease_ids:
            return
        self.renew_batches += 1
        self.transport.request(
            self.base_id,
            RENEW_BATCH,
            {"lease_ids": lease_ids, "duration": self.lease_duration},
            on_reply=self._renew_replied,
            on_error=lambda exc: logger.debug(
                "%s: renew batch failed (retried next tick): %s",
                self.node_id, exc
            ),
        )

    def _renew_replied(self, body: dict[str, Any]) -> None:
        unknown = set(body.get("unknown", ()))
        if not unknown:
            return
        # The base lapsed (or crashed and lost) these leases: re-register
        # exactly the losers, as a reconciliation loop should.
        for head in self.heads:
            if head.lease_id in unknown:
                head.lease_id = None
                self._register_head(head, rebound=True)

    def stop(self) -> None:
        """Stop renewing (head leases then lapse at the base)."""
        if self._renew_event is not None:
            self._renew_event.cancel()
            self._renew_event = None

    # -- distribution (downtree) -------------------------------------------------

    def _serve_offer(self, sender: str, body: dict[str, Any]) -> dict[str, Any]:
        envelope: ExtensionEnvelope = body["envelope"]
        if not isinstance(envelope, ExtensionEnvelope):
            raise VerificationError(f"expected an envelope, got {envelope!r}")
        # One verification guards the whole subtree: heads and leaves
        # below this point trust their registrar's checked copy.
        aspect = envelope.open(self.trust_store)
        self.envelopes_verified += 1
        del aspect  # the fleet models installation as state, not weaving
        for head in self.heads:
            self.kernel.handoff(
                0, head.region, self._on_offer, head, envelope.name, envelope.version
            )
        return {"heads": len(self.heads), "name": envelope.name}

    def _serve_revoke(self, sender: str, body: dict[str, Any]) -> dict[str, Any]:
        name = body["name"]
        for head in self.heads:
            self.kernel.handoff(0, head.region, self._on_revoke, head, name)
        return {"heads": len(self.heads)}

    # -- leaf reports (handed up by region sweeps) --------------------------------

    def record_leaf_activity(self, renewed: int, expired: int) -> None:
        self.leaf_renewals += renewed
        self.leaf_expiries += expired

    def record_installs(self, count: int) -> None:
        self.leaf_installs += count

    def record_revocations(self, count: int) -> None:
        self.leaf_revocations += count

    def cancel_heads(self) -> None:
        """Cancel every held head lease at the base (orderly shutdown)."""
        for head in self.heads:
            if head.lease_id:
                self.transport.request(
                    self.base_id,
                    CANCEL,
                    {"lease_id": head.lease_id},
                    on_error=lambda exc: logger.debug(
                        "%s: head-lease cancel failed (lease will expire): "
                        "%s", self.node_id, exc
                    ),
                )
                head.lease_id = None

    def __repr__(self) -> str:
        return (
            f"<ClusterRegistrar {self.node_id} heads={len(self.heads)} "
            f"batches={self.renew_batches}>"
        )
