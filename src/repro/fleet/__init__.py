"""Fleet-scale simulation: sharded kernel, registrar tree, array-backed leaves.

The classic stack simulates tens of nodes faithfully — every device gets
a transport, lease tables get a timer per lease, the base answers every
node directly.  This package scales the *same platform* to 100k+
simulated nodes by changing representation, not semantics:

- :mod:`repro.fleet.regions` — region-partitioned event queues
  synchronized at epoch boundaries, with deterministic cross-region
  handoff (shard-count independent by construction);
- :mod:`repro.fleet.tree` — the base ↔ registrar ↔ cluster-head ↔ leaf
  aggregation tree: envelopes verified once per registrar, head leases
  renewed in one batch per registrar, leaf leases swept per region;
- :mod:`repro.fleet.population` — leaves as rows in parallel arrays
  with interned endpoint ids, plus :class:`FleetBuilder`.

Entry point::

    fleet = FleetBuilder(leaves=100_000, shards=4, seed=7).build()
    fleet.distribute("fleet-policy")
    fleet.run_epochs(60)
    print(fleet.stats(), fleet.fingerprint())
"""

from repro.fleet.population import (
    EXPIRED,
    IDLE,
    INSTALLED,
    OFFERED,
    REVOKED,
    STATE_NAMES,
    EndpointInterner,
    Fleet,
    FleetBuilder,
    FleetPolicyAspect,
    FleetPopulation,
)
from repro.fleet.regions import RegionHandoff, ShardedKernel
from repro.fleet.tree import (
    FLEET_OFFER,
    FLEET_REVOKE,
    HEAD_INTERFACE,
    ClusterHead,
    ClusterRegistrar,
    TreePlan,
)

__all__ = [
    "ClusterHead",
    "ClusterRegistrar",
    "EndpointInterner",
    "EXPIRED",
    "Fleet",
    "FleetBuilder",
    "FleetPolicyAspect",
    "FleetPopulation",
    "FLEET_OFFER",
    "FLEET_REVOKE",
    "HEAD_INTERFACE",
    "IDLE",
    "INSTALLED",
    "OFFERED",
    "RegionHandoff",
    "REVOKED",
    "ShardedKernel",
    "STATE_NAMES",
    "TreePlan",
]
