"""The sharded kernel: per-region event queues synced at epoch boundaries.

One global event heap is the structural ceiling on fleet size — every
lease timer, every discovery announcement, every renewal of 100k nodes
contends on one ``heapq`` and one total order.  The fleet kernel
partitions the world into **regions** (the unit of simulation locality:
a hall, a cell, a neighborhood of leaf nodes) and runs each region's
events on its own heap, so cost per epoch is O(events *per region*), and
``pending``/scheduling never touch another region's queue.

Determinism is kept by construction:

- **Within a region** events run exactly as on a single
  :class:`~repro.sim.kernel.Simulator` — same (time, seq) order, same
  FIFO tie-breaks — because each region *is* a ``Simulator``.
- **Between regions** the only communication channel is
  :meth:`ShardedKernel.handoff`: the message is buffered and delivered
  at the next **epoch boundary**, in a deterministic global order
  ``(send_time, source_region, per-region sequence)``.  Cross-region
  latency is therefore quantized to at most one epoch — the documented
  price of sharding — and the interleaving *inside* an epoch can never
  leak across a region boundary.

Regions are grouped onto **shards** (execution heaps): ``shards=1``
degenerates to one shared heap, ``shards=R`` gives every region its
own.  Because regions only interact through the quantized handoff
buffer, the shard count changes memory layout and heap sizes but not
behavior — the property ``tests/fleet/test_determinism.py`` locks in.
Shard execution inside an epoch is sequential today (pure python), but
the barrier discipline is exactly what a multi-process executor needs,
so the shape is load-bearing, not cosmetic.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.kernel import Simulator

__all__ = ["RegionHandoff", "ShardedKernel"]


class RegionHandoff:
    """One buffered cross-region message awaiting the epoch barrier."""

    __slots__ = ("time", "source", "seq", "destination", "fn", "args")

    def __init__(
        self,
        time: float,
        source: int,
        seq: int,
        destination: int,
        fn: Callable[..., Any],
        args: tuple[Any, ...],
    ):
        self.time = time
        self.source = source
        self.seq = seq
        self.destination = destination
        self.fn = fn
        self.args = args

    def sort_key(self) -> tuple[float, int, int]:
        # Shard-count independent: send time, source region, and the
        # per-region handoff sequence are all properties of the *region*
        # timeline, never of the heap it happened to run on.
        return (self.time, self.source, self.seq)

    def __repr__(self) -> str:
        return (
            f"<RegionHandoff t={self.time:.3f} {self.source}->{self.destination}>"
        )


class ShardedKernel:
    """Per-region event queues with epoch-barrier synchronization.

    ``regions`` logical regions are mapped onto ``shards`` execution
    heaps (``region % shards``, stable).  Region 0 is conventionally the
    *base region* — :class:`~repro.fleet.population.FleetBuilder` aligns
    it with the platform simulator so the base station, its transport
    and its pipeline run unmodified on shard 0.
    """

    def __init__(
        self,
        regions: int,
        epoch: float,
        shards: int | None = None,
        shard0: Simulator | None = None,
        start: float = 0.0,
    ):
        if regions < 1:
            raise SimulationError(f"need >= 1 region, got {regions}")
        if epoch <= 0:
            raise SimulationError(f"epoch must be positive, got {epoch}")
        self.regions = regions
        self.epoch = epoch
        self.shards = min(shards if shards is not None else regions, regions)
        if self.shards < 1:
            raise SimulationError(f"need >= 1 shard, got {self.shards}")
        start = shard0.now if shard0 is not None else start
        self._shards: list[Simulator] = [
            shard0 if (index == 0 and shard0 is not None) else Simulator(start)
            for index in range(self.shards)
        ]
        self._handoffs: list[RegionHandoff] = []
        self._handoff_seq: list[int] = [0] * regions
        self.time = start
        self.epochs = 0
        #: Total events executed across all shards (all epochs).
        self.events_processed = 0
        #: Cross-region messages delivered so far.
        self.handoffs_delivered = 0
        #: Events executed per epoch (appended once per barrier).
        self.epoch_events: list[int] = []

    # -- topology ----------------------------------------------------------------

    def shard_of(self, region: int) -> int:
        """Which execution heap ``region`` runs on (stable mapping)."""
        self._check_region(region)
        return region % self.shards

    def simulator(self, region: int) -> Simulator:
        """The simulator a region's events execute on.

        Several regions may share one simulator (that is the point of
        sharding); callers must treat it as *their region's* clock and
        schedule cross-region work only via :meth:`handoff`.
        """
        return self._shards[self.shard_of(region)]

    # -- scheduling --------------------------------------------------------------

    def schedule(
        self, region: int, delay: float, fn: Callable[..., Any], *args: Any
    ):
        """Schedule region-local work ``delay`` seconds from region-now."""
        return self.simulator(region).schedule(delay, fn, *args)

    def handoff(
        self,
        source: int,
        destination: int,
        fn: Callable[..., Any],
        *args: Any,
    ) -> RegionHandoff:
        """Send ``fn(*args)`` to ``destination``, arriving next barrier.

        The *only* legal cross-region channel.  Works same-shard too —
        quantization must not depend on where regions happen to live, or
        the shard count would become observable.
        """
        self._check_region(source)
        self._check_region(destination)
        seq = self._handoff_seq[source]
        self._handoff_seq[source] = seq + 1
        handoff = RegionHandoff(
            self.simulator(source).now, source, seq, destination, fn, args
        )
        self._handoffs.append(handoff)
        return handoff

    # -- execution ---------------------------------------------------------------

    def run_epoch(self) -> int:
        """Run every shard to the next boundary, then flush handoffs.

        Returns the number of events executed this epoch.  Shards run in
        index order; buffered handoffs are delivered *at* the boundary in
        global ``(time, source region, seq)`` order, so they execute at
        the start of the next epoch ahead of any same-instant local work
        scheduled later.
        """
        boundary = self.time + self.epoch
        executed = 0
        for shard in self._shards:
            executed += shard.run(until=boundary)
        flushed, self._handoffs = self._handoffs, []
        flushed.sort(key=RegionHandoff.sort_key)
        for handoff in flushed:
            self._shards[self.shard_of(handoff.destination)].schedule_at(
                boundary, handoff.fn, *handoff.args
            )
        self.handoffs_delivered += len(flushed)
        self.time = boundary
        self.epochs += 1
        self.events_processed += executed
        self.epoch_events.append(executed)
        return executed

    def run_epochs(self, count: int) -> int:
        """Run ``count`` epochs; returns total events executed."""
        return sum(self.run_epoch() for _ in range(count))

    def run_until(self, deadline: float) -> int:
        """Run whole epochs until ``time`` reaches at least ``deadline``."""
        executed = 0
        while self.time < deadline:
            executed += self.run_epoch()
        return executed

    def run_until_quiet(self, max_epochs: int, min_epochs: int = 1) -> int:
        """Run epochs until the fleet is idle (or ``max_epochs``).

        The fleet analog of ``run_until_idle``: stops after an epoch that
        executed nothing with no events or handoffs left anywhere.
        """
        executed = 0
        for index in range(max_epochs):
            ran = self.run_epoch()
            executed += ran
            if ran == 0 and self.pending == 0 and index + 1 >= min_epochs:
                break
        return executed

    @property
    def pending(self) -> int:
        """Live events across all shards plus undelivered handoffs (O(shards))."""
        return sum(shard.pending for shard in self._shards) + len(self._handoffs)

    def _check_region(self, region: int) -> None:
        if not 0 <= region < self.regions:
            raise SimulationError(
                f"region {region} out of range [0, {self.regions})"
            )

    def __repr__(self) -> str:
        return (
            f"<ShardedKernel t={self.time:.2f} regions={self.regions} "
            f"shards={self.shards} epochs={self.epochs}>"
        )
