"""Compact fleet state and the builder that wires a whole fleet up.

At 100k nodes, one Python object per leaf (a Transport, a lease table
entry, a renewal agent) is two orders of magnitude too heavy.  The fleet
stores leaves as *rows in parallel arrays* — struct-of-arrays, a byte of
state and a few doubles per leaf — with endpoint names interned to
integer ids so identity comparisons and log rows never copy strings.

:class:`FleetBuilder` assembles the full stack:

- a :class:`~repro.core.platform.ProactivePlatform` whose base station
  runs the accept-queue pipeline and *batched* lease sweeps,
- a :class:`~repro.fleet.regions.ShardedKernel` whose region 0 **is**
  the platform simulator (base, transport and pipeline events share
  shard 0 unmodified),
- the :class:`~repro.fleet.tree.TreePlan` registrar/cluster-head tree,
  one leaf region per registrar,
- per-region sweep loops that renew/expire leaf rows in bulk and hand
  one aggregate report per sweep uptree.

Everything is seeded; :meth:`Fleet.fingerprint` digests the per-region
logs and final population so determinism is a hash comparison.
"""

from __future__ import annotations

import hashlib
import json
import math
import random
from array import array
from typing import Any

from repro.aop.aspect import Aspect
from repro.core.platform import BaseStation, ProactivePlatform
from repro.errors import SimulationError
from repro.fleet.regions import ShardedKernel
from repro.fleet.tree import (
    FLEET_OFFER,
    FLEET_REVOKE,
    ClusterHead,
    ClusterRegistrar,
    TreePlan,
)
from repro.midas.pipeline import PipelineConfig
from repro.midas.trust import TrustStore
from repro.net.geometry import Position
from repro.net.node import NetworkNode
from repro.net.transport import Transport
from repro.telemetry.health import (
    CounterRatioSLI,
    HealthPlane,
    RollupRule,
    SLO,
    scaled_pairs,
)

__all__ = [
    "EndpointInterner",
    "FleetPolicyAspect",
    "FleetPopulation",
    "Fleet",
    "FleetBuilder",
    "fleet_health_plane",
    "IDLE",
    "OFFERED",
    "INSTALLED",
    "REVOKED",
    "EXPIRED",
    "STATE_NAMES",
]

#: Leaf lifecycle states (one byte per leaf in the state array).
IDLE, OFFERED, INSTALLED, REVOKED, EXPIRED = range(5)
STATE_NAMES = ("idle", "offered", "installed", "revoked", "expired")


class EndpointInterner:
    """Bidirectional string ↔ int endpoint-id table.

    Fleet rows, logs and handoffs carry the integer; the string exists
    exactly once, created at :meth:`intern` time.  Ids are dense and
    assigned in intern order, so they double as stable array indices.
    """

    __slots__ = ("_ids", "_names")

    def __init__(self):
        self._ids: dict[str, int] = {}
        self._names: list[str] = []

    def intern(self, name: str) -> int:
        """The id for ``name``, allocating one on first sight."""
        found = self._ids.get(name)
        if found is not None:
            return found
        eid = len(self._names)
        self._ids[name] = eid
        self._names.append(name)
        return eid

    def name(self, eid: int) -> str:
        """The string for an interned id."""
        return self._names[eid]

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._ids


class FleetPopulation:
    """Array-backed leaf state: a byte of lifecycle + doubles of timing.

    All bulk operations work on contiguous ``[start, stop)`` ranges (a
    cluster head's slice) so the hot loops are flat array scans.  State
    counts are maintained incrementally — :meth:`counts` never scans.
    """

    __slots__ = (
        "interner",
        "state",
        "region",
        "head",
        "endpoint",
        "expires_at",
        "renew_until",
        "installs",
        "renewals",
        "expiries",
        "revocations",
        "_state_counts",
    )

    def __init__(self, interner: EndpointInterner | None = None):
        self.interner = interner or EndpointInterner()
        self.state = array("b")
        self.region = array("l")
        self.head = array("l")
        self.endpoint = array("l")
        #: Virtual instant the leaf's current lease lapses (INSTALLED only).
        self.expires_at = array("d")
        #: The leaf keeps renewing until this instant, then churns out.
        self.renew_until = array("d")
        # Cumulative lifecycle accounting.
        self.installs = 0
        self.renewals = 0
        self.expiries = 0
        self.revocations = 0
        self._state_counts = [0, 0, 0, 0, 0]

    def add_leaf(
        self,
        name: str,
        region: int,
        head: int,
        renew_until: float = math.inf,
    ) -> int:
        """Append one leaf row; returns its index."""
        self.state.append(IDLE)
        self.region.append(region)
        self.head.append(head)
        self.endpoint.append(self.interner.intern(name))
        self.expires_at.append(0.0)
        self.renew_until.append(renew_until)
        self._state_counts[IDLE] += 1
        return len(self.state) - 1

    def __len__(self) -> int:
        return len(self.state)

    def endpoint_of(self, index: int) -> str:
        """The interned endpoint name of leaf ``index``."""
        return self.interner.name(self.endpoint[index])

    def state_of(self, index: int) -> int:
        return self.state[index]

    def counts(self) -> dict[str, int]:
        """Leaves per lifecycle state (O(1) — incrementally maintained)."""
        return dict(zip(STATE_NAMES, self._state_counts))

    # -- bulk range operations (the hot paths) ------------------------------------

    def offer_range(self, start: int, stop: int) -> int:
        """Mark IDLE leaves in the range OFFERED; returns how many."""
        state, counts = self.state, self._state_counts
        offered = 0
        for i in range(start, stop):
            if state[i] == IDLE:
                state[i] = OFFERED
                offered += 1
        counts[IDLE] -= offered
        counts[OFFERED] += offered
        return offered

    def install_range(self, start: int, stop: int, now: float, duration: float) -> int:
        """OFFERED → INSTALLED with a fresh lease term; returns how many."""
        state, expires = self.state, self.expires_at
        counts = self._state_counts
        installed = 0
        term = now + duration
        for i in range(start, stop):
            if state[i] == OFFERED:
                state[i] = INSTALLED
                expires[i] = term
                installed += 1
        counts[OFFERED] -= installed
        counts[INSTALLED] += installed
        self.installs += installed
        return installed

    def sweep_range(
        self, start: int, stop: int, now: float, duration: float
    ) -> tuple[int, int]:
        """One renewal/expiry pass over a cluster's slice.

        INSTALLED leaves whose term already lapsed go EXPIRED; the rest
        renew (term := now + duration) while their ``renew_until`` churn
        deadline has not passed.  Returns ``(renewed, expired)``.
        """
        state, expires, until = self.state, self.expires_at, self.renew_until
        counts = self._state_counts
        renewed = expired = 0
        term = now + duration
        for i in range(start, stop):
            if state[i] != INSTALLED:
                continue
            if expires[i] <= now:
                state[i] = EXPIRED
                expired += 1
            elif until[i] > now:
                expires[i] = term
                renewed += 1
        counts[INSTALLED] -= expired
        counts[EXPIRED] += expired
        self.renewals += renewed
        self.expiries += expired
        return renewed, expired

    def revoke_range(self, start: int, stop: int) -> int:
        """OFFERED/INSTALLED → REVOKED (base withdrew the extension)."""
        state, counts = self.state, self._state_counts
        revoked = 0
        for i in range(start, stop):
            if state[i] == OFFERED or state[i] == INSTALLED:
                counts[state[i]] -= 1
                state[i] = REVOKED
                revoked += 1
        counts[REVOKED] += revoked
        self.revocations += revoked
        return revoked

    def __repr__(self) -> str:
        return f"<FleetPopulation {len(self)} leaves {self.counts()}>"


class FleetPolicyAspect(Aspect):
    """The (deliberately inert) extension a fleet distributes.

    Fleet benchmarks measure the *platform* — signing, verification,
    distribution, leasing — not advice execution, so the payload carries
    configuration but declares no advice.  Module-level so envelopes can
    pickle it.
    """

    def __init__(self, policy: str = "fleet-default"):
        super().__init__()
        self.policy = policy


def fleet_health_plane(renew_interval: float) -> HealthPlane:
    """A *detached* health plane sized to the fleet's sweep cadence.

    Fleet runs install no process-global recorder (100k nodes would
    swamp one), so the plane is fed explicit timestamps straight from
    :meth:`Fleet._sweep_region` — renewed leaves are good events,
    expired leaves are bad ones.  Steady churn stays far below the 10%
    error budget; a broken renewal path (mass expiry) burns it fast.
    """
    pairs = scaled_pairs(40.0 * renew_interval, floor=2.0 * renew_interval)
    plane = HealthPlane(
        slos=[
            SLO(
                name="fleet-lease-renewal",
                subsystem="fleet",
                target=0.90,
                sli=CounterRatioSLI(
                    good=("fleet.sweep.renewed",),
                    bad=("fleet.sweep.expired",),
                ),
                pairs=pairs,
                min_samples=8.0,
                description="leaf lease sweeps renew (vs expire) leaves",
            )
        ],
        rules=[
            RollupRule(
                name="sweep-rate",
                pattern="fleet.sweep.*",
                kind="rate",
                window=10.0 * renew_interval,
            )
        ],
        name="fleet-health",
    )
    plane.model.declare_subsystem("fleet")
    return plane


class Fleet:
    """A built fleet: platform + sharded kernel + registrar tree + rows.

    Use :class:`FleetBuilder` to construct one.  Driving it:

    - :meth:`distribute` pushes a catalog extension downtree through the
      base pipeline (install),
    - :meth:`run_epochs` advances every region in epoch lockstep
      (renewal sweeps, head lease batches, churn expiries),
    - :meth:`withdraw` revokes fleet-wide,
    - :meth:`fingerprint` digests the run for determinism checks.
    """

    def __init__(
        self,
        platform: ProactivePlatform,
        base: BaseStation,
        kernel: ShardedKernel,
        plan: TreePlan,
        population: FleetPopulation,
        registrars: list[ClusterRegistrar],
        heads: list[ClusterHead],
        leaf_lease_duration: float,
        renew_interval: float,
        install_latency: float,
    ):
        self.platform = platform
        self.base = base
        self.kernel = kernel
        self.plan = plan
        self.population = population
        self.registrars = registrars
        self.heads = heads
        self.leaf_lease_duration = leaf_lease_duration
        self.renew_interval = renew_interval
        self.install_latency = install_latency
        #: Per-region append-only activity logs (region-local times);
        #: the raw material of :meth:`fingerprint`.
        self.region_logs: list[list[tuple[Any, ...]]] = [
            [] for _ in range(plan.regions)
        ]
        self._heads_by_region: dict[int, list[ClusterHead]] = {}
        for head in heads:
            self._heads_by_region.setdefault(head.region, []).append(head)
        #: Distribution accounting on the base side.
        self.offers_sent = 0
        self.offers_acked = 0
        self.revokes_sent = 0
        #: Registrar requests that timed out or faulted (never part of
        #: :meth:`fingerprint`; surfaced by :meth:`stats`).
        self.send_errors = 0
        #: Detached health plane (set by the builder); fed from sweeps.
        #: Never part of :meth:`fingerprint` — judgment, not observation.
        self.health: HealthPlane | None = None
        for region in range(1, plan.regions):
            kernel.schedule(region, renew_interval, self._sweep_region, region)

    # -- driving -----------------------------------------------------------------

    def distribute(self, name: str) -> None:
        """Offer catalog extension ``name`` to every registrar subtree.

        One sealed envelope, one pipeline job + one transport request per
        registrar; each registrar verifies once and fans out to its heads
        as epoch handoffs.
        """
        envelope = self.base.catalog.seal(name)
        for registrar in self.registrars:

            def send(registrar: ClusterRegistrar = registrar) -> None:
                self.offers_sent += 1
                self.base.transport.request(
                    registrar.node_id,
                    FLEET_OFFER,
                    {"envelope": envelope},
                    on_reply=lambda body: self._offer_acked(),
                    on_error=lambda exc: self._send_failed(),
                )

            self._submit(registrar.node_id, "fleet.offer", send)

    def withdraw(self, name: str) -> None:
        """Revoke extension ``name`` across the whole fleet."""
        for registrar in self.registrars:

            def send(registrar: ClusterRegistrar = registrar) -> None:
                self.revokes_sent += 1
                self.base.transport.request(
                    registrar.node_id,
                    FLEET_REVOKE,
                    {"name": name},
                    on_error=lambda exc: self._send_failed(),
                )

            self._submit(registrar.node_id, "fleet.revoke", send)

    def run_epochs(self, count: int) -> int:
        """Advance the whole fleet ``count`` epochs; returns events run."""
        return self.kernel.run_epochs(count)

    def run_until(self, deadline: float) -> int:
        return self.kernel.run_until(deadline)

    def _submit(self, key: str, kind: str, fn) -> None:
        pipeline = self.base.extension_base.pipeline
        if pipeline is None:
            fn()
        else:
            pipeline.submit(key, kind, fn)

    def _offer_acked(self) -> None:
        self.offers_acked += 1

    def _send_failed(self) -> None:
        """A registrar request timed out or faulted; counted, not fatal."""
        self.send_errors += 1

    # -- region-side callbacks (run on leaf shards) --------------------------------

    def _head_offer(self, head: ClusterHead, name: str, version: int) -> None:
        sim = self.kernel.simulator(head.region)
        offered = self.population.offer_range(head.start, head.stop)
        self._log(head.region, sim.now, "offer", head.index, offered)
        sim.schedule(self.install_latency, self._head_install, head, name)

    def _head_install(self, head: ClusterHead, name: str) -> None:
        sim = self.kernel.simulator(head.region)
        installed = self.population.install_range(
            head.start, head.stop, sim.now, self.leaf_lease_duration
        )
        self._log(head.region, sim.now, "install", head.index, installed)
        if installed:
            self.kernel.handoff(
                head.region, 0,
                self.registrars[head.registrar].record_installs, installed,
            )

    def _head_revoke(self, head: ClusterHead, name: str) -> None:
        sim = self.kernel.simulator(head.region)
        revoked = self.population.revoke_range(head.start, head.stop)
        self._log(head.region, sim.now, "revoke", head.index, revoked)
        if revoked:
            self.kernel.handoff(
                head.region, 0,
                self.registrars[head.registrar].record_revocations, revoked,
            )

    def _sweep_region(self, region: int) -> None:
        sim = self.kernel.simulator(region)
        now = sim.now
        renewed = expired = 0
        for head in self._heads_by_region.get(region, ()):
            r, e = self.population.sweep_range(
                head.start, head.stop, now, self.leaf_lease_duration
            )
            renewed += r
            expired += e
        self._log(region, now, "sweep", renewed, expired)
        if self.health is not None:
            if renewed:
                self.health.ingest_count(
                    now, "fleet.sweep.renewed", float(renewed), region=str(region)
                )
            if expired:
                self.health.ingest_count(
                    now, "fleet.sweep.expired", float(expired), region=str(region)
                )
        if renewed or expired:
            self.kernel.handoff(
                region, 0,
                self.registrars[region - 1].record_leaf_activity,
                renewed, expired,
            )
        sim.schedule(self.renew_interval, self._sweep_region, region)

    def _log(self, region: int, now: float, tag: str, *fields: Any) -> None:
        self.region_logs[region].append((round(now, 9), tag) + fields)

    # -- inspection ----------------------------------------------------------------

    def fingerprint(self) -> str:
        """SHA-256 over per-region logs + final population + tree stats.

        Identical for identical (seed, scenario) runs, whatever the shard
        count — the contract the determinism tests pin down.
        """
        payload = {
            "logs": self.region_logs,
            "counts": self.population.counts(),
            "lifecycle": [
                self.population.installs,
                self.population.renewals,
                self.population.expiries,
                self.population.revocations,
            ],
            "tree": [
                [
                    registrar.leaf_installs,
                    registrar.leaf_renewals,
                    registrar.leaf_expiries,
                    registrar.leaf_revocations,
                    registrar.renew_batches,
                    registrar.head_registrations,
                    registrar.envelopes_verified,
                ]
                for registrar in self.registrars
            ],
            "handoffs": self.kernel.handoffs_delivered,
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def health_report(self):
        """One burn evaluation + the full verdict (None if plane disabled)."""
        if self.health is None:
            return None
        self.health.tick()
        return self.health.report()

    def region_activity(self) -> list[dict[str, Any]]:
        """Per-region sweep totals — the control tower's heatline feed."""
        out: list[dict[str, Any]] = []
        for region in range(1, self.plan.regions):
            renewed = expired = sweeps = 0
            for row in self.region_logs[region]:
                if row[1] == "sweep":
                    sweeps += 1
                    renewed += row[2]
                    expired += row[3]
            out.append(
                {
                    "region": region,
                    "sweeps": sweeps,
                    "renewed": renewed,
                    "expired": expired,
                }
            )
        return out

    def leaf_operations(self) -> int:
        """Total leaf lifecycle operations so far (install/renew/expire/revoke)."""
        population = self.population
        return (
            population.installs
            + population.renewals
            + population.expiries
            + population.revocations
        )

    def stats(self) -> dict[str, Any]:
        """One flat snapshot for benchmarks and docs."""
        return {
            "leaves": len(self.population),
            "heads": len(self.heads),
            "registrars": len(self.registrars),
            "regions": self.plan.regions,
            "shards": self.kernel.shards,
            "epochs": self.kernel.epochs,
            "kernel_events": self.kernel.events_processed,
            "handoffs": self.kernel.handoffs_delivered,
            "leaf_ops": self.leaf_operations(),
            "population": self.population.counts(),
            "head_leases": self.base.lookup.registration_count(),
            "renew_batches": sum(r.renew_batches for r in self.registrars),
            "send_errors": self.send_errors,
            "envelopes_verified": sum(
                r.envelopes_verified for r in self.registrars
            ),
            "pipeline": (
                self.base.extension_base.pipeline.stats()
                if self.base.extension_base.pipeline is not None
                else None
            ),
        }

    def __repr__(self) -> str:
        return (
            f"<Fleet leaves={len(self.population)} regions={self.plan.regions} "
            f"t={self.kernel.time:.1f}>"
        )


class FleetBuilder:
    """Builds a :class:`Fleet` from scale knobs (all defaulted sanely).

    ``churn`` leaves (fraction) stop renewing at a seeded instant within
    ``churn_horizon``, so long runs exercise expiry sweeps, not just
    steady-state renewal.
    """

    def __init__(
        self,
        leaves: int,
        leaves_per_cluster: int = 512,
        clusters_per_registrar: int = 16,
        shards: int | None = None,
        epoch: float = 1.0,
        seed: int = 7,
        leaf_lease_duration: float = 20.0,
        head_lease_duration: float = 20.0,
        renew_interval: float = 5.0,
        install_latency: float = 0.25,
        churn: float = 0.15,
        churn_horizon: float = 60.0,
        pipeline: PipelineConfig | None = None,
        workers: int = 4,
        service_time: float = 0.005,
        health: bool = True,
    ):
        if not 0.0 <= churn <= 1.0:
            raise SimulationError(f"churn must be in [0, 1], got {churn}")
        self.leaves = leaves
        self.plan = TreePlan(leaves, leaves_per_cluster, clusters_per_registrar)
        self.shards = shards
        self.epoch = epoch
        self.seed = seed
        self.leaf_lease_duration = leaf_lease_duration
        self.head_lease_duration = head_lease_duration
        self.renew_interval = renew_interval
        self.install_latency = install_latency
        self.churn = churn
        self.churn_horizon = churn_horizon
        self.pipeline = pipeline or PipelineConfig(
            workers=workers,
            dispatch="shard",
            service_time=service_time,
            seed=seed,
        )
        self.health = health

    def build(self) -> Fleet:
        """Assemble platform, kernel, tree and population; start the tree."""
        plan = self.plan
        platform = ProactivePlatform(
            seed=self.seed,
            pipeline=self.pipeline,
            # Batched sweeps at the base: one timer per lease table,
            # however many head leases the tree parks there.
            lease_sweep_interval=self.renew_interval,
            renew_batch_interval=self.renew_interval,
        )
        base = platform.create_base_station("base")
        base.catalog.add("fleet-policy", FleetPolicyAspect)
        kernel = ShardedKernel(
            regions=plan.regions,
            epoch=self.epoch,
            shards=self.shards,
            shard0=platform.simulator,
        )

        rng = random.Random(f"fleet:{self.seed}")
        population = FleetPopulation()
        for index in range(plan.leaves):
            head_index = index // plan.leaves_per_cluster
            renew_until = math.inf
            if self.churn and rng.random() < self.churn:
                renew_until = rng.uniform(0.0, self.churn_horizon)
            population.add_leaf(
                f"leaf-{index:06d}",
                plan.region_of_head(head_index),
                head_index,
                renew_until=renew_until,
            )

        heads = [
            ClusterHead(
                index,
                plan.region_of_head(index),
                index // plan.clusters_per_registrar,
                *plan.leaf_range(index),
            )
            for index in range(plan.heads)
        ]

        registrars: list[ClusterRegistrar] = []
        fleet = Fleet(
            platform,
            base,
            kernel,
            plan,
            population,
            registrars,
            heads,
            leaf_lease_duration=self.leaf_lease_duration,
            renew_interval=self.renew_interval,
            install_latency=self.install_latency,
        )
        if self.health:
            fleet.health = fleet_health_plane(self.renew_interval)
        for index in range(plan.registrars):
            start, stop = plan.head_range(index)
            angle = 2.0 * math.pi * index / plan.registrars
            node = platform.network.attach(
                NetworkNode(
                    f"registrar-{index:03d}",
                    Position(5.0 * math.cos(angle), 5.0 * math.sin(angle)),
                )
            )
            platform.network.wire("base", node.node_id)
            trust = TrustStore()
            trust.trust_signer(base.signer)
            registrar = ClusterRegistrar(
                index,
                Transport(node, platform.simulator),
                platform.simulator,
                kernel,
                trust,
                base.node_id,
                heads[start:stop],
                renew_interval=self.renew_interval,
                lease_duration=self.head_lease_duration,
                on_offer=fleet._head_offer,
                on_revoke=fleet._head_revoke,
            )
            registrar.register_heads()
            registrars.append(registrar)
        return fleet
