"""Spans: timed operations linked into cross-node traces.

A *span* is one named operation with a start and end time; spans link to
a parent span to form a tree, and every span in a tree shares a
``trace_id``.  The ambient *current* span context is held in a
:mod:`contextvars` variable so that nested operations parent themselves
automatically, and :class:`~repro.net.message.Message` envelopes carry the
context over the (simulated) radio — a MIDAS offer on a base station and
the matching install on the receiver therefore belong to one trace.

Timestamps come from whatever clock the recording registry uses, so a
simulation run produces deterministic virtual-time spans while a live
deployment gets wall-clock ones.
"""

from __future__ import annotations

import contextvars
from dataclasses import dataclass
from typing import Any, Callable

from repro.util.ids import fresh_id

#: Status of a finished span.
STATUS_OK = "ok"
STATUS_ERROR = "error"

_current: contextvars.ContextVar["SpanContext | None"] = contextvars.ContextVar(
    "telemetry_current_span", default=None
)


@dataclass(frozen=True)
class SpanContext:
    """The propagatable identity of a span: ``(trace_id, span_id)``."""

    trace_id: str
    span_id: str

    def to_wire(self) -> dict[str, str]:
        """Serializable form carried on network messages."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, wire: dict[str, str]) -> "SpanContext":
        """Rebuild a context from its wire form."""
        return cls(wire["trace_id"], wire["span_id"])


def current_context() -> SpanContext | None:
    """The ambient span context, if any operation is active."""
    return _current.get()


def current_wire() -> dict[str, str] | None:
    """The ambient context in wire form, or None (for message stamping)."""
    context = _current.get()
    return context.to_wire() if context is not None else None


def activate(context: SpanContext | None) -> contextvars.Token:
    """Make ``context`` ambient; returns a token for :func:`deactivate`."""
    return _current.set(context)


def activate_wire(wire: dict[str, str]) -> contextvars.Token:
    """Make a wire-form context ambient (used on message delivery)."""
    return _current.set(SpanContext.from_wire(wire))


def deactivate(token: contextvars.Token) -> None:
    """Restore the ambient context saved in ``token``."""
    _current.reset(token)


class _Activation:
    """Context manager that makes a span ambient without ending it."""

    __slots__ = ("_context", "_token")

    def __init__(self, context: SpanContext | None):
        self._context = context
        self._token: contextvars.Token | None = None

    def __enter__(self) -> "_Activation":
        self._token = _current.set(self._context)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if self._token is not None:
            _current.reset(self._token)
            self._token = None


class Span:
    """One recorded operation.

    Usable two ways:

    - as a context manager — activates itself on entry, ends on exit
      (status ``error`` if an exception escapes);
    - manually — :meth:`activate` scopes the ambient context around e.g.
      an asynchronous send, and :meth:`end` is called later from the
      reply callback.
    """

    __slots__ = ("name", "context", "parent_id", "node", "start", "end_time",
                 "status", "attrs", "_on_end", "_token")

    def __init__(
        self,
        name: str,
        context: SpanContext,
        parent_id: str | None,
        start: float,
        attrs: dict[str, Any] | None = None,
        node: str | None = None,
        on_end: Callable[["Span"], None] | None = None,
    ):
        self.name = name
        self.context = context
        self.parent_id = parent_id
        self.node = node
        self.start = start
        self.end_time: float | None = None
        self.status: str | None = None
        self.attrs: dict[str, Any] = dict(attrs or {})
        self._on_end = on_end
        self._token: contextvars.Token | None = None

    @property
    def trace_id(self) -> str:
        """The trace this span belongs to."""
        return self.context.trace_id

    @property
    def span_id(self) -> str:
        """This span's own id."""
        return self.context.span_id

    @property
    def ended(self) -> bool:
        """True once :meth:`end` has run."""
        return self.end_time is not None

    def activate(self) -> _Activation:
        """Scope the ambient context to this span (does not end it)."""
        return _Activation(self.context)

    def end(self, status: str = STATUS_OK, **attrs: Any) -> None:
        """Finish the span (idempotent); extra ``attrs`` are merged in."""
        if self.end_time is not None:
            return
        self.attrs.update(attrs)
        self.status = status
        callback = self._on_end
        self._on_end = None
        if callback is not None:
            callback(self)

    def __enter__(self) -> "Span":
        self._token = _current.set(self.context)
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if self._token is not None:
            _current.reset(self._token)
            self._token = None
        if exc_type is not None:
            self.end(status=STATUS_ERROR, error=repr(exc))
        else:
            self.end()

    def to_record(self) -> dict[str, Any]:
        """The exportable (JSONL) form of this span."""
        return {
            "type": "span",
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "node": self.node,
            "start": self.start,
            "end": self.end_time,
            "status": self.status,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:
        state = self.status if self.ended else "open"
        return f"<Span {self.name} trace={self.trace_id} {state}>"


class NullSpan:
    """The do-nothing span handed out while no recorder is installed.

    A single shared instance supports the full :class:`Span` surface —
    context manager, :meth:`activate`, :meth:`end` — at zero cost and
    without touching the ambient context.
    """

    __slots__ = ()

    name = "null"
    context: SpanContext | None = None
    parent_id: str | None = None
    node: str | None = None
    trace_id = ""
    span_id = ""
    ended = False

    @property
    def attrs(self) -> dict[str, Any]:
        # A fresh throwaway dict per access: writes vanish instead of
        # accumulating on shared state.
        return {}

    def activate(self) -> "NullSpan":
        return self

    def end(self, status: str = STATUS_OK, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass

    def __repr__(self) -> str:
        return "<NullSpan>"


#: The shared no-op span.
NULL_SPAN = NullSpan()


def new_context(parent: SpanContext | None) -> tuple[SpanContext, str | None]:
    """Mint a child context under ``parent`` (or a fresh root trace).

    Returns ``(context, parent_span_id)``.
    """
    if parent is None:
        return SpanContext(fresh_id("trace"), fresh_id("span")), None
    return SpanContext(parent.trace_id, fresh_id("span")), parent.span_id
