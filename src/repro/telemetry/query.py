"""A small composable query language over causal timelines.

Integration tests should state causal invariants, not peek at counters:

    strikes = timeline.events("supervision.contained").on("robot")
    quarantine = timeline.events("supervision.quarantined").first()
    assert strikes.count() == 3
    assert strikes.precedes(timeline.events("midas.withdrawn"))

Every combinator returns a *new* immutable query, so queries compose and
can be reused as anchors for ordering (``a.before(b)``, ``a.after(b)``).
Ordering is the merged happens-before order of the underlying
:class:`~repro.telemetry.timeline.Timeline` — comparisons only work
between queries over the same timeline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterator, Union

from repro.telemetry.recorder import FlightEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.timeline import Timeline

#: Ordering anchors accept a query, a single event, or an event list.
Anchor = Union["TimelineQuery", FlightEvent, list[FlightEvent]]


class TimelineQuery:
    """An immutable, ordered selection of events on one timeline."""

    __slots__ = ("_timeline", "_events")

    def __init__(self, timeline: "Timeline", events: tuple[FlightEvent, ...]):
        self._timeline = timeline
        self._events = events

    # -- filters (each returns a new query) --------------------------------------

    def kind(self, kind: str) -> "TimelineQuery":
        """Only events of this kind (``supervision.quarantined``, ...)."""
        return self._derive(e for e in self._events if e.kind == kind)

    def on(self, node: str) -> "TimelineQuery":
        """Only events recorded on this node's ring."""
        return self._derive(e for e in self._events if e.node == node)

    def within(self, trace_id: str) -> "TimelineQuery":
        """Only events stamped with this trace id."""
        return self._derive(e for e in self._events if e.trace_id == trace_id)

    def traced(self) -> "TimelineQuery":
        """Only events that carry *some* trace stamp."""
        return self._derive(e for e in self._events if e.trace_id is not None)

    def where(self, **fields: Any) -> "TimelineQuery":
        """Only events whose payload matches every given field exactly."""
        return self._derive(
            e
            for e in self._events
            if all(e.fields.get(key) == value for key, value in fields.items())
        )

    def matching(self, predicate: Callable[[FlightEvent], bool]) -> "TimelineQuery":
        """Only events satisfying an arbitrary predicate."""
        return self._derive(e for e in self._events if predicate(e))

    def between(self, start: float, end: float) -> "TimelineQuery":
        """Only events with ``start <= time <= end``."""
        return self._derive(e for e in self._events if start <= e.time <= end)

    # -- ordering ----------------------------------------------------------------

    def before(self, other: Anchor) -> "TimelineQuery":
        """Events strictly before the *earliest* event of ``other``.

        Empty ``other`` selects nothing (there is no anchor to be before).
        """
        bound = self._anchor_positions(other)
        if not bound:
            return self._derive(())
        earliest = min(bound)
        return self._derive(
            e for e in self._events if self._timeline.position(e) < earliest
        )

    def after(self, other: Anchor) -> "TimelineQuery":
        """Events strictly after the *latest* event of ``other``."""
        bound = self._anchor_positions(other)
        if not bound:
            return self._derive(())
        latest = max(bound)
        return self._derive(
            e for e in self._events if self._timeline.position(e) > latest
        )

    def precedes(self, other: Anchor) -> bool:
        """True when every event here is before every event of ``other``.

        Both sides must be non-empty — an invariant asserted over nothing
        is a test bug, so vacuous truth is rejected.
        """
        mine = [self._timeline.position(e) for e in self._events]
        theirs = self._anchor_positions(other)
        if not mine or not theirs:
            raise ValueError(
                "precedes() needs events on both sides "
                f"(left={len(mine)}, right={len(theirs)})"
            )
        return max(mine) < min(theirs)

    def follows(self, other: Anchor) -> bool:
        """True when every event here is after every event of ``other``."""
        mine = [self._timeline.position(e) for e in self._events]
        theirs = self._anchor_positions(other)
        if not mine or not theirs:
            raise ValueError(
                "follows() needs events on both sides "
                f"(left={len(mine)}, right={len(theirs)})"
            )
        return min(mine) > max(theirs)

    # -- access ------------------------------------------------------------------

    def all(self) -> list[FlightEvent]:
        """The selected events, in merged timeline order."""
        return list(self._events)

    def first(self) -> FlightEvent:
        """The earliest selected event (ValueError when empty)."""
        if not self._events:
            raise ValueError("query selected no events")
        return self._events[0]

    def last(self) -> FlightEvent:
        """The latest selected event (ValueError when empty)."""
        if not self._events:
            raise ValueError("query selected no events")
        return self._events[-1]

    def one(self) -> FlightEvent:
        """The single selected event (ValueError unless exactly one)."""
        if len(self._events) != 1:
            raise ValueError(f"expected exactly one event, query selected {len(self._events)}")
        return self._events[0]

    def count(self) -> int:
        """How many events the query selected."""
        return len(self._events)

    @property
    def exists(self) -> bool:
        """True when the query selected at least one event."""
        return bool(self._events)

    def trace_ids(self) -> set[str]:
        """The distinct trace ids stamped on the selected events."""
        return {e.trace_id for e in self._events if e.trace_id is not None}

    def nodes(self) -> set[str]:
        """The distinct nodes the selected events were recorded on."""
        return {e.node for e in self._events}

    # -- plumbing ----------------------------------------------------------------

    def _derive(self, events: Any) -> "TimelineQuery":
        return TimelineQuery(self._timeline, tuple(events))

    def _anchor_positions(self, other: Anchor) -> list[int]:
        if isinstance(other, TimelineQuery):
            if other._timeline is not self._timeline:
                raise ValueError("cannot compare queries over different timelines")
            events: Any = other._events
        elif isinstance(other, FlightEvent):
            events = (other,)
        else:
            events = other
        return [self._timeline.position(e) for e in events]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FlightEvent]:
        return iter(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)

    def __repr__(self) -> str:
        kinds = sorted({e.kind for e in self._events})
        shown = ", ".join(kinds[:4]) + ("…" if len(kinds) > 4 else "")
        return f"<TimelineQuery {len(self._events)} events [{shown}]>"
