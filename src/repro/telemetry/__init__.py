"""Telemetry: metrics, spans, and lifecycle tracing for the platform.

The paper's evaluation is all about measured overhead — weaving cost,
interception latency, lease behaviour over a lossy radio.  This package
gives the reproduction a first-class way to observe itself:

- :class:`~repro.telemetry.registry.MetricsRegistry` — counters, gauges,
  and fixed-bucket histograms, stamped by any
  :class:`~repro.util.clock.Clock` (deterministic under simulation);
- :mod:`~repro.telemetry.spans` — spans with parent/child links whose
  context rides on network messages, so one MIDAS offer→install→renew
  chain is a single trace across nodes;
- :mod:`~repro.telemetry.export` — JSONL dumps and text/JSON summaries;
- :mod:`~repro.telemetry.runtime` — the process-global recorder the
  instrumented platform reports to (a no-op unless one is installed);
- :mod:`~repro.telemetry.recorder` — per-node flight-recorder rings of
  lifecycle events, auto-dumped on crash/quarantine;
- :mod:`~repro.telemetry.timeline` / :mod:`~repro.telemetry.query` —
  happens-before-merged causal timelines with a composable query API
  (``timeline.events(kind).on(node).before(other)``);
- :mod:`~repro.telemetry.profiler` — per-(joinpoint, extension) latency
  histograms with exemplar traces, plus VM weave-cost accounting;
- :mod:`~repro.telemetry.inspect` — live node-health reports
  (``python -m repro inspect``);
- :mod:`~repro.telemetry.health` — the third layer: streaming rollups,
  SLOs with burn-rate alerting, and the health model behind
  ``python -m repro ops`` (the control tower).

Quick use::

    from repro.telemetry import MetricsRegistry, runtime, text_summary

    registry = MetricsRegistry(clock=platform.simulator.clock)
    with runtime.recording(registry):
        ...  # run the platform
    print(text_summary(registry))

or simply ``platform.enable_telemetry()``.  See ``docs/observability.md``
for the metric and span naming scheme.
"""

from repro.telemetry.export import (
    json_summary,
    prom_text,
    read_jsonl,
    text_summary,
    write_jsonl,
)
from repro.telemetry.health import (
    BurnPair,
    CounterRatioSLI,
    GaugeThresholdSLI,
    HealthPlane,
    LatencySLI,
    RollupRule,
    SLO,
    scaled_pairs,
)
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
)
from repro.telemetry.profiler import JoinPointProfiler
from repro.telemetry.query import TimelineQuery
from repro.telemetry.recorder import (
    FlightEvent,
    FlightRecorder,
    FlightRecorderHub,
)
from repro.telemetry.registry import MetricsRegistry, TelemetryEvent
from repro.telemetry.runtime import NullRecorder, Recorder, recording
from repro.telemetry.spans import NULL_SPAN, Span, SpanContext
from repro.telemetry.timeline import Timeline
from repro.telemetry import runtime

__all__ = [
    "BurnPair",
    "Counter",
    "CounterRatioSLI",
    "DEFAULT_BUCKETS",
    "FlightEvent",
    "FlightRecorder",
    "FlightRecorderHub",
    "Gauge",
    "GaugeThresholdSLI",
    "HealthPlane",
    "Histogram",
    "JoinPointProfiler",
    "LatencySLI",
    "MetricsRegistry",
    "NULL_SPAN",
    "NullRecorder",
    "Recorder",
    "RollupRule",
    "SLO",
    "Span",
    "SpanContext",
    "TelemetryEvent",
    "Timeline",
    "TimelineQuery",
    "json_summary",
    "prom_text",
    "read_jsonl",
    "recording",
    "runtime",
    "scaled_pairs",
    "text_summary",
    "write_jsonl",
]
