"""Live node inspection: ``python -m repro inspect``.

Renders one platform node's current health as an operator would want to
see it mid-incident:

- installed extensions with versions and the base that pushed them,
- the lease table with remaining TTLs (the paper's liveness contract:
  an extension whose lease lapses is withdrawn),
- circuit-breaker states on the node's resilient clients,
- the supervisor's quarantine list,
- the tail of the node's flight recorder — the last things that
  happened to it.

:func:`node_report` builds the structured report (plain dict, JSON-safe)
from a live :class:`~repro.core.platform.ProactivePlatform`;
:func:`render_report` turns it into text.  The CLI runs the shared demo
world (the quickstart wiring) far enough to have installs, leases and
recorder traffic, then inspects it — point :func:`node_report` at your
own platform for real use.
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Callable

#: Flight-recorder events shown by default in a report's tail.
TAIL_EVENTS = 10


def _breaker_states(*clients: Any) -> list[dict[str, Any]]:
    out = []
    for client in clients:
        if client is None:
            continue
        for peer, breaker in sorted(client.breakers().items()):
            out.append(
                {
                    "owner": breaker.owner,
                    "peer": peer,
                    "state": breaker.state.value,
                    "failures": breaker.failures,
                    "times_opened": breaker.times_opened,
                }
            )
    return out


def _recorder_tail(platform: Any, node_id: str, count: int) -> list[dict[str, Any]]:
    registry = platform.telemetry
    if registry is None or registry.flight is None:
        return []
    return [
        event.to_record() for event in registry.flight.recorder(node_id).tail(count)
    ]


def node_report(
    platform: Any, node_id: str, tail: int = TAIL_EVENTS
) -> dict[str, Any]:
    """The structured health report for one node (mobile or base).

    Raises ``KeyError`` for a node id the platform does not know.
    """
    now = platform.now
    mobile = platform.mobile_nodes.get(node_id)
    if mobile is not None:
        supervisor = mobile.supervisor
        return {
            "node": node_id,
            "role": "mobile",
            "time": now,
            "extensions": [
                {
                    "name": installed.name,
                    "version": installed.envelope.version,
                    "base": installed.base_id,
                    "lease_id": installed.lease_id,
                }
                for installed in mobile.adaptation.installed()
            ],
            "leases": [
                {
                    "resource": str(lease.resource),
                    "holder": lease.holder,
                    "remaining": lease.remaining(now),
                    "renewals": lease.renewals,
                }
                for lease in sorted(
                    mobile.adaptation.leases.active(),
                    key=lambda lease: str(lease.resource),
                )
            ],
            "breakers": _breaker_states(mobile.discovery.resilient_client),
            "quarantined": (
                []
                if supervisor is None
                else [health.as_dict() for health in supervisor.quarantined()]
            ),
            "recorder_tail": _recorder_tail(platform, node_id, tail),
        }
    station = platform.base_stations.get(node_id)
    if station is not None:
        pipeline = getattr(station.extension_base, "pipeline", None)
        return {
            "node": node_id,
            "role": "base",
            "time": now,
            "catalog": station.catalog.names(),
            "adapted_nodes": station.extension_base.adapted_nodes(),
            "registrations": station.lookup.registration_count(),
            "db_records": len(station.db),
            "pipeline": pipeline.stats() if pipeline is not None else None,
            "breakers": _breaker_states(station.extension_base.resilient_client),
            "recorder_tail": _recorder_tail(platform, node_id, tail),
        }
    raise KeyError(f"no node {node_id!r} on this platform")


def fleet_report(fleet: Any) -> dict[str, Any]:
    """Region and tree aggregates for a built fleet.

    The per-leaf state never appears — at 100k nodes the interesting
    operator surface is per-region sweep activity and per-registrar
    subtree accounting.
    """
    return {
        "role": "fleet",
        "time": fleet.kernel.time,
        "leaves": len(fleet.population),
        "population": fleet.population.counts(),
        "regions": fleet.region_activity(),
        "tree": [
            {
                "registrar": registrar.index,
                "installs": registrar.leaf_installs,
                "renewals": registrar.leaf_renewals,
                "expiries": registrar.leaf_expiries,
                "revocations": registrar.leaf_revocations,
                "renew_batches": registrar.renew_batches,
                "heads": registrar.head_registrations,
            }
            for registrar in fleet.registrars
        ],
        "pipeline": (
            fleet.base.extension_base.pipeline.stats()
            if fleet.base.extension_base.pipeline is not None
            else None
        ),
        "handoffs": fleet.kernel.handoffs_delivered,
    }


def platform_report(platform: Any, tail: int = TAIL_EVENTS) -> list[dict[str, Any]]:
    """Reports for every node, bases first, each sorted by id."""
    return [
        node_report(platform, node_id, tail=tail)
        for node_id in sorted(platform.base_stations) + sorted(platform.mobile_nodes)
    ]


def _render_tail(tail: list[dict[str, Any]], lines: list[str]) -> None:
    if not tail:
        lines.append("  recorder tail: (no flight recorder attached)")
        return
    lines.append(f"  recorder tail (last {len(tail)}):")
    for record in tail:
        fields = record.get("fields", {})
        detail = ", ".join(
            f"{key}={value}"
            for key, value in fields.items()
            if key not in ("trace_id", "span_id", "node")
        )
        trace = f"  [{record['trace_id']}]" if record.get("trace_id") else ""
        lines.append(
            f"    t={record['time']:8.3f} #{record['seq']:<4} "
            f"{record['kind']:<26} {detail}{trace}"
        )


def render_report(report: dict[str, Any]) -> str:
    """Human-readable rendering of one :func:`node_report`."""
    header = f"{report['node']} ({report['role']}) at t={report['time']:.3f}"
    lines = [header, "-" * len(header)]
    if report["role"] == "mobile":
        extensions = report["extensions"]
        if extensions:
            lines.append("  extensions:")
            for ext in extensions:
                lines.append(
                    f"    {ext['name']} v{ext['version']} from {ext['base']}"
                )
        else:
            lines.append("  extensions: (none installed)")
        leases = report["leases"]
        if leases:
            lines.append("  leases:")
            for lease in leases:
                lines.append(
                    f"    {lease['resource']} held by {lease['holder']}: "
                    f"{lease['remaining']:.1f}s left "
                    f"({lease['renewals']} renewal(s))"
                )
        else:
            lines.append("  leases: (none active)")
        quarantined = report["quarantined"]
        if quarantined:
            lines.append("  quarantined:")
            for health in quarantined:
                lines.append(
                    f"    {health['extension']} "
                    f"(contained {health['contained']} fault(s), "
                    f"at t={health['quarantined_at']:.3f})"
                )
        else:
            lines.append("  quarantined: (none)")
    else:
        lines.append(f"  catalog: {', '.join(report['catalog']) or '(empty)'}")
        lines.append(
            f"  adapted nodes: {', '.join(report['adapted_nodes']) or '(none)'}"
        )
        lines.append(
            f"  registrations: {report['registrations']}  "
            f"db records: {report['db_records']}"
        )
        pipeline = report.get("pipeline")
        if pipeline is not None:
            lines.append(
                f"  pipeline: depth={pipeline['depth']} "
                f"in_service={pipeline['in_service']} "
                f"completed={pipeline['completed']} shed={pipeline['shed']} "
                f"failed={pipeline['failed']}"
            )
        else:
            lines.append("  pipeline: (direct dispatch, no accept queue)")
    breakers = report["breakers"]
    if breakers:
        lines.append("  breakers:")
        for breaker in breakers:
            lines.append(
                f"    -> {breaker['peer']}: {breaker['state']} "
                f"(failures={breaker['failures']}, "
                f"opened {breaker['times_opened']}x)"
            )
    else:
        lines.append("  breakers: (none minted)")
    _render_tail(report["recorder_tail"], lines)
    return "\n".join(lines)


def render_fleet_report(report: dict[str, Any]) -> str:
    """Human-readable rendering of one :func:`fleet_report`."""
    header = (
        f"fleet ({report['leaves']} leaves) at t={report['time']:.1f}"
    )
    lines = [header, "-" * len(header)]
    counts = ", ".join(f"{k}={v}" for k, v in report["population"].items() if v)
    lines.append(f"  population: {counts}")
    lines.append("  regions:")
    for region in report["regions"]:
        lines.append(
            f"    region {region['region']:>3}: sweeps={region['sweeps']} "
            f"renewed={region['renewed']} expired={region['expired']}"
        )
    lines.append("  registrar tree:")
    for row in report["tree"]:
        lines.append(
            f"    registrar {row['registrar']:>3}: heads={row['heads']} "
            f"installs={row['installs']} renewals={row['renewals']} "
            f"expiries={row['expiries']} batches={row['renew_batches']}"
        )
    pipeline = report.get("pipeline")
    if pipeline is not None:
        lines.append(
            f"  base pipeline: depth={pipeline['depth']} "
            f"completed={pipeline['completed']} shed={pipeline['shed']}"
        )
    lines.append(f"  handoffs delivered: {report['handoffs']}")
    return "\n".join(lines)


def _demo_fleet() -> Any:
    """A small fleet, driven far enough to have sweep/tree activity."""
    from repro.fleet.population import FleetBuilder

    fleet = FleetBuilder(leaves=2048, seed=7).build()
    fleet.distribute("fleet-policy")
    fleet.run_epochs(30)
    return fleet


def _demo_platform() -> Any:
    """The shared demo world, run far enough to have live state."""
    from repro.resilience import RetryPolicy
    from repro.telemetry.cli import build_demo_world

    # A retrying world mints breakers worth inspecting.
    world = build_demo_world(
        telemetry=True, supervised=True, retry_policy=RetryPolicy(max_attempts=2)
    )
    world.platform.run_for(6.0)  # discovery, offer, signed install
    thermostat = world.thermostat_cls()
    for step in range(3):
        thermostat.set_target(20.0 + step)
    world.platform.run_for(5.0)  # keep-alives renew the extension lease
    return world.platform


def main(
    argv: list[str] | None = None, out: Callable[[str], None] = print
) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro inspect",
        description="Render node health: extensions, leases, breakers, "
        "quarantines, and the flight-recorder tail.",
    )
    parser.add_argument(
        "node",
        nargs="?",
        help="node id to inspect (default: every node in the demo world)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report(s) as JSON"
    )
    parser.add_argument(
        "--tail",
        type=int,
        default=TAIL_EVENTS,
        metavar="N",
        help="flight-recorder events to show per node",
    )
    parser.add_argument(
        "--fleet",
        action="store_true",
        help="inspect the demo fleet instead: region and tree aggregates",
    )
    args = parser.parse_args(argv)

    if args.fleet:
        report = fleet_report(_demo_fleet())
        if args.json:
            out(json.dumps(report, indent=2, sort_keys=True))
        else:
            out(render_fleet_report(report))
        return 0

    platform = _demo_platform()
    try:
        if args.node is not None:
            try:
                reports = [node_report(platform, args.node, tail=args.tail)]
            except KeyError:
                known = sorted(platform.base_stations) + sorted(platform.mobile_nodes)
                parser.error(f"unknown node {args.node!r} (known: {', '.join(known)})")
        else:
            reports = platform_report(platform, tail=args.tail)
        if args.json:
            out(json.dumps(reports, indent=2, sort_keys=True))
        else:
            out("\n\n".join(render_report(report) for report in reports))
        return 0
    finally:
        platform.disable_telemetry()


if __name__ == "__main__":
    raise SystemExit(main())
