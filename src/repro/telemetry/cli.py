"""The ``python -m repro telemetry`` subcommand.

Three modes:

- ``python -m repro telemetry demo [--export PATH] [--quiet]`` — run a
  small simulated MIDAS lifecycle (offer → install → keep-alive renewals
  → revoke) with a registry on the simulation clock, then print the text
  summary.  The run asserts that the whole lifecycle forms one connected
  trace across the base and the receiver node.
- ``python -m repro telemetry summary PATH [--format text|json|prom]`` —
  load a JSONL export and print its summary (text, machine-readable
  JSON, or Prometheus text exposition).
- ``python -m repro telemetry profile`` — run the same lifecycle with a
  join-point profiler attached and print per-(joinpoint, extension)
  latency plus weave-cost accounting.

``demo`` is also the doubled-as integration smoke test used by CI.
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Callable, NamedTuple

from repro.telemetry.export import (
    DEFAULT_QUANTILES,
    json_summary,
    prom_text,
    read_jsonl,
    text_summary,
    write_jsonl,
)
from repro.telemetry.registry import MetricsRegistry


class DemoWorld(NamedTuple):
    """The shared demo wiring: one hall, one PDA, one woven Thermostat."""

    platform: Any
    registry: MetricsRegistry | None
    hall: Any
    device: Any
    thermostat_cls: type


def build_demo_world(
    telemetry: bool = True,
    profiler: bool = False,
    supervised: bool = False,
    retry_policy: Any = None,
) -> DemoWorld:
    """Stand up the canonical demo world (hall-A + pda-1 + Thermostat).

    The same wiring backs ``telemetry demo``, ``telemetry profile`` and
    ``repro inspect`` — and mirrors ``examples/quickstart.py``.  The
    Thermostat class is defined per call so repeated runs in one process
    each weave a fresh class.
    """
    from repro import Position, ProactivePlatform
    from repro.extensions import CallLogging
    from repro.supervision import SupervisionPolicy

    platform = ProactivePlatform(
        supervision=SupervisionPolicy() if supervised else None,
        retry_policy=retry_policy,
    )
    registry = platform.enable_telemetry() if telemetry else None
    if profiler:
        platform.enable_profiler()
    hall = platform.create_base_station("hall-A", Position(0, 0))
    hall.add_extension(
        "call-log", lambda: CallLogging(type_pattern="Thermostat")
    )
    device = platform.create_mobile_node("pda-1", Position(10, 0))

    class Thermostat:
        def __init__(self) -> None:
            self.target = 21.0

        def set_target(self, degrees: float) -> float:
            self.target = degrees
            return self.target

    device.load_class(Thermostat)
    return DemoWorld(platform, registry, hall, device, Thermostat)


def run_demo(
    export: str | None = None,
    out: Callable[[str], None] = print,
    quiet: bool = False,
) -> MetricsRegistry:
    """Run the offer→install→renew→revoke lifecycle under telemetry.

    Returns the populated registry (the global recorder is restored on
    exit).  Raises ``SystemExit`` if the MIDAS spans do not form a single
    connected trace — the demo doubles as an end-to-end check.
    """
    world = build_demo_world(telemetry=True)
    platform, registry = world.platform, world.registry
    assert registry is not None
    try:
        platform.run_for(6.0)  # discovery, offer, signed install
        thermostat = world.thermostat_cls()
        for step in range(4):
            thermostat.set_target(19.0 + step)
        platform.run_for(8.0)  # a few keep-alive renewal rounds
        world.hall.extension_base.revoke(world.device.node_id, "call-log")
        platform.run_for(2.0)

        midas_spans = [
            span for span in registry.spans if span.name.startswith("midas.")
        ]
        trace_ids = {span.trace_id for span in midas_spans}
        if not quiet:
            out(text_summary(registry, title="telemetry demo — MIDAS lifecycle"))
            out("")
            out(
                f"midas spans: {len(midas_spans)} across "
                f"{len(trace_ids)} trace(s)"
            )
        if len(trace_ids) != 1:
            raise SystemExit(
                f"expected one connected MIDAS trace, got {len(trace_ids)}"
            )
        if export is not None:
            count = write_jsonl(registry, export)
            if not quiet:
                out(f"exported {count} records to {export}")
        return registry
    finally:
        platform.disable_telemetry()


def run_profile(
    out: Callable[[str], None] = print, quiet: bool = False
) -> "Any":
    """Run the demo lifecycle under a join-point profiler; print its report.

    Returns the profiler so tests can assert on its entries.
    """
    world = build_demo_world(telemetry=True, profiler=True)
    platform = world.platform
    try:
        platform.run_for(6.0)
        thermostat = world.thermostat_cls()
        for step in range(8):
            thermostat.set_target(18.0 + step)
        platform.run_for(8.0)
        world.hall.extension_base.revoke(world.device.node_id, "call-log")
        platform.run_for(2.0)
        profiler = platform.profiler
        if not quiet:
            out(profiler.report())
        return profiler
    finally:
        platform.disable_telemetry()


def summarize(path: str, out: Callable[[str], None] = print) -> None:
    """Print the text summary of a JSONL export."""
    records = read_jsonl(path)
    out(text_summary(records, title=f"telemetry summary — {path}"))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro telemetry",
        description="Observe the platform: run the demo or summarize an export.",
    )
    subparsers = parser.add_subparsers(dest="command")

    demo = subparsers.add_parser(
        "demo", help="run a simulated MIDAS lifecycle under telemetry"
    )
    demo.add_argument(
        "--export", metavar="PATH", help="also write a JSONL dump to PATH"
    )
    demo.add_argument(
        "--quiet", action="store_true", help="suppress the summary output"
    )

    summary = subparsers.add_parser(
        "summary", help="print the summary of a JSONL export"
    )
    summary.add_argument("path", help="JSONL file written by --export")
    summary.add_argument(
        "--format",
        choices=("text", "json", "prom"),
        default="text",
        help=(
            "output format (json is machine-readable and stable; prom is "
            "Prometheus text exposition for scrape-shaped tooling)"
        ),
    )
    summary.add_argument(
        "--quantiles",
        default=None,
        metavar="Q[,Q...]",
        help=(
            "comma-separated histogram quantiles in (0, 1), e.g. "
            "'0.5,0.99,0.999' (default: 0.5,0.95,0.99)"
        ),
    )

    subparsers.add_parser(
        "profile",
        help="run the demo lifecycle under a join-point profiler",
    )

    args = parser.parse_args(argv)
    if args.command == "summary":
        try:
            records = read_jsonl(args.path)
        except (OSError, ValueError) as error:
            parser.error(f"cannot read export {args.path!r}: {error}")
        quantiles = DEFAULT_QUANTILES
        if args.quantiles is not None:
            try:
                quantiles = tuple(
                    float(q) for q in args.quantiles.split(",") if q.strip()
                )
                if not quantiles:
                    raise ValueError("no quantiles given")
                for q in quantiles:
                    if not 0.0 < q < 1.0:
                        raise ValueError(f"quantile {q} not in (0, 1)")
            except ValueError as error:
                parser.error(f"bad --quantiles {args.quantiles!r}: {error}")
        if args.format == "prom":
            print(prom_text(records))
            return 0
        if args.format == "json":
            print(
                json.dumps(
                    json_summary(records, quantiles=quantiles),
                    indent=2,
                    sort_keys=True,
                )
            )
        else:
            print(
                text_summary(
                    records,
                    title=f"telemetry summary — {args.path}",
                    quantiles=quantiles,
                )
            )
        return 0
    if args.command == "profile":
        run_profile()
        return 0
    # Default to the demo so a bare `python -m repro telemetry` shows value.
    export = getattr(args, "export", None)
    quiet = bool(getattr(args, "quiet", False))
    run_demo(export=export, quiet=quiet)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
