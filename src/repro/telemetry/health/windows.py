"""Fixed-cost sliding-window accumulators.

Burn-rate math needs "events in the last W seconds", but storing events
would make evaluation O(events) — unacceptable when a fleet pushes
millions of samples through a window.  Both accumulators here slice the
window into a ring of time buckets addressed by an *absolute* slice
index (``floor(now / width)``): adding a sample zeroes any slices the
clock has skipped past, updates the slot for "now", and maintains
running totals, so both ``add`` and ``totals`` are O(slices) worst case
and O(1) amortized — independent of event volume.

Timestamps come from the caller, never from a wall clock, so the same
code serves wall-clock runs and the simulator's virtual time (where a
"3-day" window may be 30 virtual seconds).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable

#: Default number of slices per window: fine enough that the stale tail
#: (one slice) is <9% of the window, coarse enough to stay cheap.
DEFAULT_SLICES = 12


class _SlidingRing:
    """Shared cursor logic: map ``now`` to a ring slot, expiring old slices."""

    __slots__ = ("duration", "slices", "width", "_cursor")

    def __init__(self, duration: float, slices: int = DEFAULT_SLICES):
        if duration <= 0:
            raise ValueError(f"window duration must be positive, got {duration}")
        if slices < 1:
            raise ValueError(f"window needs at least one slice, got {slices}")
        self.duration = float(duration)
        self.slices = int(slices)
        self.width = self.duration / self.slices
        #: Absolute slice index of the newest slot; None until first use.
        self._cursor: int | None = None

    def _slot(self, now: float) -> int:
        """The ring slot for ``now``, after expiring skipped slices.

        Subclasses implement ``_clear_slot``; a clock that jumps far
        ahead clears every slot in one pass (never more than
        ``slices`` clears per call, however long the gap).
        """
        index = int(now // self.width)
        cursor = self._cursor
        if cursor is None:
            self._cursor = index
            return index % self.slices
        if index <= cursor:
            # Same slice, or time ran backwards (a replayed sample):
            # fold into the newest slot rather than corrupting history.
            return cursor % self.slices
        steps = index - cursor
        if steps >= self.slices:
            self._clear_all()
        else:
            for stale in range(cursor + 1, index + 1):
                self._clear_slot(stale % self.slices)
        self._cursor = index
        return index % self.slices

    def _clear_slot(self, slot: int) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _clear_all(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class WindowedCounts(_SlidingRing):
    """Good/bad event totals over a sliding window.

    One instance backs one (SLO, window) pair: ``add(now, good, bad)``
    on every sample, ``bad_fraction(now)`` when the burn evaluator runs.
    """

    __slots__ = ("_good", "_bad", "good_total", "bad_total")

    def __init__(self, duration: float, slices: int = DEFAULT_SLICES):
        super().__init__(duration, slices)
        self._good = [0.0] * self.slices
        self._bad = [0.0] * self.slices
        self.good_total = 0.0
        self.bad_total = 0.0

    def _clear_slot(self, slot: int) -> None:
        self.good_total -= self._good[slot]
        self.bad_total -= self._bad[slot]
        self._good[slot] = 0.0
        self._bad[slot] = 0.0

    def _clear_all(self) -> None:
        self._good = [0.0] * self.slices
        self._bad = [0.0] * self.slices
        self.good_total = 0.0
        self.bad_total = 0.0

    def add(self, now: float, good: float = 0.0, bad: float = 0.0) -> None:
        """Fold ``good``/``bad`` event counts into the slice for ``now``."""
        slot = self._slot(now)
        if good:
            self._good[slot] += good
            self.good_total += good
        if bad:
            self._bad[slot] += bad
            self.bad_total += bad

    def totals(self, now: float) -> tuple[float, float]:
        """(good, bad) totals across the window as of ``now``."""
        self._slot(now)
        # Running sums can drift a few ULPs below zero after many
        # clear/add cycles; clamp so callers never see -0.0000001 events.
        return (max(self.good_total, 0.0), max(self.bad_total, 0.0))

    def samples(self, now: float) -> float:
        """Total events (good + bad) in the window as of ``now``."""
        good, bad = self.totals(now)
        return good + bad

    def bad_fraction(self, now: float) -> float:
        """Bad events / all events in the window (0.0 when empty)."""
        good, bad = self.totals(now)
        total = good + bad
        return bad / total if total else 0.0


class WindowedBuckets(_SlidingRing):
    """A sliding-window histogram sketch over fixed bucket bounds.

    Mirrors :class:`~repro.telemetry.metrics.Histogram` — same bounds,
    same bucket-resolution :meth:`quantile` semantics — but per time
    slice, so ``p99 over the last window`` is exact to bucket resolution
    without retaining a single raw observation.
    """

    __slots__ = ("bounds", "_counts", "count_total", "_totals", "sum_total")

    def __init__(
        self,
        bounds: Iterable[float],
        duration: float,
        slices: int = DEFAULT_SLICES,
    ):
        super().__init__(duration, slices)
        self.bounds = tuple(sorted(float(b) for b in bounds))
        if not self.bounds:
            raise ValueError("windowed buckets need at least one bound")
        width = len(self.bounds) + 1  # + overflow bucket
        self._counts = [[0] * width for _ in range(self.slices)]
        self._totals = [0] * width
        self.count_total = 0
        self.sum_total = 0.0

    def _clear_slot(self, slot: int) -> None:
        row = self._counts[slot]
        totals = self._totals
        for bucket, n in enumerate(row):
            if n:
                totals[bucket] -= n
                self.count_total -= n
                row[bucket] = 0
        # The windowed sum cannot be expired per-slice exactly (we do not
        # store per-slice sums); approximate by scaling out the expired
        # share so the windowed mean stays usable.
        if self.count_total <= 0:
            self.sum_total = 0.0

    def _clear_all(self) -> None:
        width = len(self.bounds) + 1
        self._counts = [[0] * width for _ in range(self.slices)]
        self._totals = [0] * width
        self.count_total = 0
        self.sum_total = 0.0

    def observe(self, now: float, value: float) -> None:
        """Record one observation into the slice for ``now``."""
        slot = self._slot(now)
        bucket = bisect_left(self.bounds, value)
        self._counts[slot][bucket] += 1
        self._totals[bucket] += 1
        self.count_total += 1
        self.sum_total += value

    def observe_bucket(self, now: float, bucket: int, amount: int = 1) -> None:
        """Fold pre-bucketed counts (e.g. merged from a histogram delta)."""
        slot = self._slot(now)
        self._counts[slot][bucket] += amount
        self._totals[bucket] += amount
        self.count_total += amount

    def count(self, now: float) -> int:
        """Observations currently inside the window."""
        self._slot(now)
        return max(self.count_total, 0)

    def quantile(self, now: float, q: float) -> float:
        """Bucket-resolution ``q``-quantile over the window (0.0 if empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        total = self.count(now)
        if total == 0:
            return 0.0
        rank = q * total
        seen = 0
        for index, bucket_count in enumerate(self._totals):
            seen += bucket_count
            if seen >= rank and bucket_count:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.bounds[-1]
        return self.bounds[-1]

    def over_threshold_fraction(self, now: float, threshold: float) -> float:
        """Fraction of windowed observations whose bucket bound exceeds
        ``threshold`` — the "slow request ratio" a latency SLO burns on."""
        total = self.count(now)
        if total == 0:
            return 0.0
        cut = bisect_left(self.bounds, threshold)
        # Buckets whose upper bound is <= threshold count as fast.
        slow = sum(self._totals[cut + 1 :]) if cut < len(self.bounds) else 0
        if cut < len(self.bounds) and self.bounds[cut] > threshold:
            slow += self._totals[cut]
        return slow / total
