"""SLO objects with multi-window, multi-burn-rate alerting.

An :class:`SLO` pairs a service-level *indicator* (what fraction of
recent samples were good) with a target (e.g. 99.9% good) and a set of
:class:`BurnPair` windows.  The burn rate of a window is::

    burn = bad_fraction(window) / (1 - target)

i.e. how many times faster than "exactly on budget" the error budget is
being spent.  A pair fires only when **both** its long and short windows
exceed the pair's threshold — the long window supplies significance, the
short window proves the problem is still happening (so alerts stop soon
after the cause does).  The defaults are the classic SRE pairs — fast
5m/1h at 14.4× (page) and slow 6h/3d at 1× (ticket) — and
:func:`scaled_pairs` shrinks them proportionally for simulated horizons
where "3 days" may be 60 virtual seconds.

Indicators come in three shapes, all fed from the registry stream:

- :class:`CounterRatioSLI` — availability: good/bad counter patterns;
- :class:`LatencySLI` — latency: histogram observations over a threshold
  are bad;
- :class:`GaugeThresholdSLI` — convergence-lag and friends: every gauge
  sample is one SLI sample, bad while the gauge exceeds its threshold.

The :class:`SloEngine` routes samples to SLOs (pattern match memoized
per metric name), evaluates burn on demand, and reports rising-edge
:class:`BurnAlert`\\ s exactly once per (slo, pair) activation — the
plane turns those into ``slo.burn`` telemetry events, which the flight
hub treats like ``invariant.violation`` (ring dump and all).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.telemetry.health.windows import WindowedCounts
from repro.telemetry.metrics import LabelKey
from repro.util.patterns import wildcard_match

#: Severity order, mildest first.
SEVERITIES = ("ticket", "page")


@dataclass(frozen=True)
class BurnPair:
    """One long/short window pair with its burn-rate threshold."""

    name: str
    long_window: float
    short_window: float
    threshold: float
    severity: str = "page"

    def __post_init__(self) -> None:
        if self.short_window > self.long_window:
            raise ValueError(
                f"burn pair {self.name!r}: short window "
                f"{self.short_window} exceeds long window {self.long_window}"
            )
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "long_window": self.long_window,
            "short_window": self.short_window,
            "threshold": self.threshold,
            "severity": self.severity,
        }


#: The canonical SRE pairs (wall-clock seconds): page when the fast pair
#: burns 14.4× budget (2% of a 30-day budget in 1h), ticket when the
#: slow pair merely keeps burning at 1×.
DEFAULT_PAIRS: tuple[BurnPair, ...] = (
    BurnPair("fast", long_window=3600.0, short_window=300.0, threshold=14.4,
             severity="page"),
    BurnPair("slow", long_window=259200.0, short_window=21600.0, threshold=1.0,
             severity="ticket"),
)


def scaled_pairs(
    horizon: float,
    floor: float = 1.0,
    pairs: Iterable[BurnPair] = DEFAULT_PAIRS,
) -> tuple[BurnPair, ...]:
    """The default pairs shrunk so the longest window equals ``horizon``.

    Simulated scenarios compress "3 days of traffic" into seconds of
    virtual time; scaling the windows by the same factor preserves the
    burn math.  ``floor`` keeps every window at least that many seconds
    so a window never drops below the sampling interval.
    """
    pairs = tuple(pairs)
    longest = max(p.long_window for p in pairs)
    factor = horizon / longest
    return tuple(
        BurnPair(
            p.name,
            long_window=max(p.long_window * factor, floor),
            short_window=max(p.short_window * factor, floor),
            threshold=p.threshold,
            severity=p.severity,
        )
        for p in pairs
    )


# -- indicators -----------------------------------------------------------------


class CounterRatioSLI:
    """Availability: counts matching ``good`` patterns vs ``bad`` patterns."""

    kind = "availability"

    def __init__(self, good: Iterable[str], bad: Iterable[str]):
        self.good = tuple(good)
        self.bad = tuple(bad)

    @property
    def counter_patterns(self) -> tuple[str, ...]:
        return self.good + self.bad

    histogram_patterns: tuple[str, ...] = ()
    gauge_patterns: tuple[str, ...] = ()

    def on_count(
        self, metric: str, labels: LabelKey, amount: float
    ) -> tuple[float, float]:
        for pattern in self.bad:
            if wildcard_match(pattern, metric):
                return (0.0, amount)
        return (amount, 0.0)

    def describe(self) -> str:
        return f"good={'|'.join(self.good)} bad={'|'.join(self.bad)}"


class LatencySLI:
    """Latency: histogram observations above ``threshold`` are bad."""

    kind = "latency"

    def __init__(self, pattern: str, threshold: float):
        self.pattern = pattern
        self.threshold = float(threshold)

    counter_patterns: tuple[str, ...] = ()
    gauge_patterns: tuple[str, ...] = ()

    @property
    def histogram_patterns(self) -> tuple[str, ...]:
        return (self.pattern,)

    def on_observe(
        self, metric: str, labels: LabelKey, value: float
    ) -> tuple[float, float]:
        if value > self.threshold:
            return (0.0, 1.0)
        return (1.0, 0.0)

    def describe(self) -> str:
        return f"{self.pattern} <= {self.threshold:g}s"


class GaugeThresholdSLI:
    """Convergence: each gauge sample is bad while above ``threshold``.

    Feed it a periodically sampled gauge (e.g. the storm monitor's
    worst dual-home lag): the SLI then measures *what fraction of time*
    the system was out of bounds, which is exactly what a
    convergence-lag objective wants.
    """

    kind = "convergence"

    def __init__(self, pattern: str, threshold: float):
        self.pattern = pattern
        self.threshold = float(threshold)

    counter_patterns: tuple[str, ...] = ()
    histogram_patterns: tuple[str, ...] = ()

    @property
    def gauge_patterns(self) -> tuple[str, ...]:
        return (self.pattern,)

    def on_gauge(
        self, metric: str, labels: LabelKey, value: float
    ) -> tuple[float, float]:
        if value > self.threshold:
            return (0.0, 1.0)
        return (1.0, 0.0)

    def describe(self) -> str:
        return f"{self.pattern} <= {self.threshold:g}"


# -- the objective itself --------------------------------------------------------


@dataclass(frozen=True)
class BurnAlert:
    """One rising-edge burn event (or its recovery, status="recovered")."""

    slo: str
    subsystem: str
    pair: str
    severity: str
    time: float
    burn_long: float
    burn_short: float
    threshold: float
    status: str = "firing"
    #: Label set of the most recent bad sample (best-effort blame).
    worst: dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "slo": self.slo,
            "subsystem": self.subsystem,
            "pair": self.pair,
            "severity": self.severity,
            "time": self.time,
            "burn_long": round(self.burn_long, 4),
            "burn_short": round(self.burn_short, 4),
            "threshold": self.threshold,
            "status": self.status,
            "worst": dict(self.worst),
        }


class SLO:
    """One objective: an indicator, a target, and its burn windows."""

    def __init__(
        self,
        name: str,
        subsystem: str,
        target: float,
        sli: Any,
        pairs: Iterable[BurnPair] = DEFAULT_PAIRS,
        slices: int = 12,
        min_samples: float = 4.0,
        description: str = "",
    ):
        if not 0.0 < target < 1.0:
            raise ValueError(f"SLO target must be in (0, 1), got {target}")
        self.name = name
        self.subsystem = subsystem
        self.target = float(target)
        self.sli = sli
        self.pairs = tuple(pairs)
        if not self.pairs:
            raise ValueError(f"SLO {name!r} needs at least one burn pair")
        self.min_samples = float(min_samples)
        self.description = description or getattr(sli, "describe", lambda: "")()
        #: One window per distinct duration across all pairs (pairs often
        #: share windows; never pay twice).
        self._windows: dict[float, WindowedCounts] = {}
        for pair in self.pairs:
            for duration in (pair.long_window, pair.short_window):
                if duration not in self._windows:
                    self._windows[duration] = WindowedCounts(duration, slices)
        self.good_total = 0.0
        self.bad_total = 0.0
        self.last_bad: dict[str, str] = {}
        self.last_bad_at: float | None = None

    @property
    def budget(self) -> float:
        """The error budget: the allowed bad fraction."""
        return 1.0 - self.target

    def ingest(self, now: float, good: float, bad: float, labels: LabelKey) -> None:
        """Fold one classified sample into every window."""
        for window in self._windows.values():
            window.add(now, good=good, bad=bad)
        self.good_total += good
        self.bad_total += bad
        if bad:
            self.last_bad = dict(labels)
            self.last_bad_at = now

    def burn_rate(self, duration: float, now: float) -> float:
        """Burn multiple for the window of ``duration`` seconds."""
        window = self._windows[duration]
        return window.bad_fraction(now) / self.budget

    def burning(self, now: float) -> list[tuple[BurnPair, float, float]]:
        """Pairs currently over threshold: (pair, burn_long, burn_short)."""
        out = []
        for pair in self.pairs:
            long_win = self._windows[pair.long_window]
            if long_win.samples(now) < self.min_samples:
                continue
            burn_long = long_win.bad_fraction(now) / self.budget
            if burn_long < pair.threshold:
                continue
            burn_short = self._windows[pair.short_window].bad_fraction(now) / self.budget
            if burn_short >= pair.threshold:
                out.append((pair, burn_long, burn_short))
        return out

    def snapshot(self, now: float) -> dict[str, Any]:
        """JSON-ready state of this objective right now."""
        burning = {pair.name for pair, _, _ in self.burning(now)}
        return {
            "name": self.name,
            "subsystem": self.subsystem,
            "kind": getattr(self.sli, "kind", "custom"),
            "description": self.description,
            "target": self.target,
            "good_total": self.good_total,
            "bad_total": self.bad_total,
            "pairs": [
                {
                    **pair.to_dict(),
                    "burn_long": round(self.burn_rate(pair.long_window, now), 4),
                    "burn_short": round(self.burn_rate(pair.short_window, now), 4),
                    "burning": pair.name in burning,
                }
                for pair in self.pairs
            ],
            "last_bad": dict(self.last_bad),
            "last_bad_at": self.last_bad_at,
        }


class SloEngine:
    """Routes stream samples to SLOs and raises rising-edge burn alerts."""

    def __init__(self, slos: Iterable[SLO] = ()):
        self.slos: list[SLO] = []
        #: metric name -> ((slo, channel) ...) — wildcard routing memoized.
        self._routes: dict[tuple[str, str], tuple[SLO, ...]] = {}
        #: (slo, pair) pairs currently firing, for edge detection.
        self._active: set[tuple[str, str]] = set()
        self.alerts: list[BurnAlert] = []
        for slo in slos:
            self.add(slo)

    def add(self, slo: SLO) -> None:
        if any(existing.name == slo.name for existing in self.slos):
            raise ValueError(f"duplicate SLO name {slo.name!r}")
        self.slos.append(slo)
        self._routes.clear()

    def _routed(self, channel: str, metric: str) -> tuple[SLO, ...]:
        key = (channel, metric)
        routed = self._routes.get(key)
        if routed is None:
            attr = f"{channel}_patterns"
            routed = tuple(
                slo
                for slo in self.slos
                if any(
                    wildcard_match(pattern, metric)
                    for pattern in getattr(slo.sli, attr, ())
                )
            )
            self._routes[key] = routed
        return routed

    # -- stream entry points (hot path) ----------------------------------------

    def on_count(self, now: float, metric: str, labels: LabelKey, amount: float) -> None:
        for slo in self._routed("counter", metric):
            good, bad = slo.sli.on_count(metric, labels, amount)
            slo.ingest(now, good, bad, labels)

    def on_observe(self, now: float, metric: str, labels: LabelKey, value: float) -> None:
        for slo in self._routed("histogram", metric):
            good, bad = slo.sli.on_observe(metric, labels, value)
            slo.ingest(now, good, bad, labels)

    def on_gauge(self, now: float, metric: str, labels: LabelKey, value: float) -> None:
        for slo in self._routed("gauge", metric):
            good, bad = slo.sli.on_gauge(metric, labels, value)
            slo.ingest(now, good, bad, labels)

    # -- evaluation --------------------------------------------------------------

    def evaluate(self, now: float) -> list[BurnAlert]:
        """Burn check across every SLO; returns *newly fired* alerts.

        Recoveries (a pair dropping back under threshold) are appended
        to :attr:`alerts` with ``status="recovered"`` but not returned —
        callers emit events for new fires, the log keeps both edges.
        """
        fired: list[BurnAlert] = []
        seen: set[tuple[str, str]] = set()
        for slo in self.slos:
            for pair, burn_long, burn_short in slo.burning(now):
                key = (slo.name, pair.name)
                seen.add(key)
                if key in self._active:
                    continue
                self._active.add(key)
                alert = BurnAlert(
                    slo=slo.name,
                    subsystem=slo.subsystem,
                    pair=pair.name,
                    severity=pair.severity,
                    time=now,
                    burn_long=burn_long,
                    burn_short=burn_short,
                    threshold=pair.threshold,
                    worst=dict(slo.last_bad),
                )
                self.alerts.append(alert)
                fired.append(alert)
        for key in sorted(self._active - seen):
            slo_name, pair_name = key
            self._active.discard(key)
            slo = next(s for s in self.slos if s.name == slo_name)
            pair = next(p for p in slo.pairs if p.name == pair_name)
            self.alerts.append(
                BurnAlert(
                    slo=slo_name,
                    subsystem=slo.subsystem,
                    pair=pair_name,
                    severity=pair.severity,
                    time=now,
                    burn_long=slo.burn_rate(pair.long_window, now),
                    burn_short=slo.burn_rate(pair.short_window, now),
                    threshold=pair.threshold,
                    status="recovered",
                )
            )
        return fired

    def active(self) -> list[tuple[str, str]]:
        """(slo, pair) combinations currently firing, sorted."""
        return sorted(self._active)

    def snapshot(self, now: float) -> list[dict[str, Any]]:
        return [slo.snapshot(now) for slo in self.slos]

    def __repr__(self) -> str:
        return f"<SloEngine slos={len(self.slos)} firing={len(self._active)}>"
