"""The control tower: ``python -m repro ops``.

One screen for an operator mid-incident, built entirely from the health
plane's outputs (plus a few platform surfaces):

- the overall verdict and per-subsystem statuses, with explicit cause
  chains for everything non-healthy,
- the SLO burn table — every objective, every window pair, its burn
  multiples and whether it is firing,
- the run's alert log (firing/recovered edges, oldest first),
- streaming rollup series (rates, error ratios, quantile sketches),
- the hottest join points from the advice profiler,
- base-station pipeline depth / shedding,
- fleet region heatlines (renewals per sweep as sparklines).

Everything renders from one JSON-safe snapshot dict
(:func:`tower_snapshot`), so ``--json`` is the same data the text view
shows — and so CI can replay a seeded storm and assert on the verdict
with ``--expect burning`` / ``--expect healthy`` (exit 2 on mismatch).
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Callable

#: Sparkline blocks, lowest to highest.
BLOCKS = "▁▂▃▄▅▆▇█"

#: Default row caps for the text view.
TOP_JOINPOINTS = 5
TOP_ROLLUPS = 10
TOP_ALERTS = 12
TOP_REGIONS = 16


def sparkline(values: list[float]) -> str:
    """One unicode sparkline; empty input renders empty."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return BLOCKS[0] * len(values)
    span = hi - lo
    return "".join(
        BLOCKS[int((value - lo) / span * (len(BLOCKS) - 1))] for value in values
    )


# -- snapshot ---------------------------------------------------------------------


def tower_snapshot(
    scenario: str,
    plane: Any,
    *,
    platform: Any = None,
    fleet: Any = None,
    profiler: Any = None,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Everything the tower shows, as one JSON-safe dict."""
    now = plane._now()
    report = plane.report(now)
    alerts = [alert.to_dict() for alert in plane.engine.alerts]
    active = set(plane.engine.active())
    latest_firing: dict[tuple[str, str], dict[str, Any]] = {}
    for alert in alerts:
        key = (alert["slo"], alert["pair"])
        if alert["status"] == "firing" and key in active:
            latest_firing[key] = alert
    ever_burned = any(alert["status"] == "firing" for alert in alerts)
    snapshot: dict[str, Any] = {
        "scenario": scenario,
        "time": now,
        "overall": report.overall,
        "verdict": "burning" if ever_burned else "healthy",
        "report": report.to_dict(),
        "peak": plane.peak.to_dict() if plane.peak is not None else None,
        "burning": [latest_firing[key] for key in sorted(latest_firing)],
        "alerts": alerts,
        "rollups": plane.book.to_records(now),
        "hot_joinpoints": (
            [entry.to_record() for entry in profiler.entries()]
            if profiler is not None
            else []
        ),
        "pipelines": _pipeline_stats(platform) if platform is not None else {},
        "fleet": _fleet_panel(fleet) if fleet is not None else None,
    }
    if extra:
        snapshot.update(extra)
    return snapshot


def _pipeline_stats(platform: Any) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for base_id, station in sorted(platform.base_stations.items()):
        pipeline = getattr(station.extension_base, "pipeline", None)
        if pipeline is not None:
            out[base_id] = pipeline.stats()
    return out


def _fleet_panel(fleet: Any) -> dict[str, Any]:
    """Region totals plus per-sweep renewal series for heatlines."""
    series: dict[str, list[float]] = {}
    for region in range(1, fleet.plan.regions):
        series[str(region)] = [
            float(row[2])  # renewed count of each sweep log row
            for row in fleet.region_logs[region]
            if row[1] == "sweep"
        ]
    return {
        "regions": fleet.region_activity(),
        "renewed_series": series,
        "stats": fleet.stats(),
    }


# -- rendering --------------------------------------------------------------------

_STATUS_MARK = {"healthy": "ok", "degraded": "DEGRADED", "critical": "CRITICAL"}


def _render_cause(cause: dict[str, Any], indent: int, lines: list[str]) -> None:
    pad = "  " * indent
    head = f"{pad}{cause['kind']}[{cause['subject']}]"
    if cause.get("detail"):
        head += f": {cause['detail']}"
    lines.append(head)
    for sub in cause.get("causes", ()):
        _render_cause(sub, indent + 1, lines)


def _render_report(report: dict[str, Any], lines: list[str]) -> None:
    for subsystem, status in sorted(report["subsystems"].items()):
        lines.append(f"  {subsystem:<14} {_STATUS_MARK.get(status, status)}")
    problems = [c for c in report["conditions"] if c["status"] != "healthy"]
    if problems:
        lines.append("  conditions:")
        for condition in problems:
            lines.append(
                f"    [{condition['status']}] {condition['subsystem']}: "
                f"{condition['summary']}"
            )
            if condition.get("cause"):
                _render_cause(condition["cause"], 3, lines)


def _render_slos(slos: list[dict[str, Any]], lines: list[str]) -> None:
    lines.append("slo burn table:")
    if not slos:
        lines.append("  (no objectives registered)")
        return
    header = (
        f"  {'slo':<22} {'pair':<6} {'sev':<7} {'windows':>13} "
        f"{'burn L/S':>15} {'thr':>6}  state"
    )
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for slo in slos:
        for pair in slo["pairs"]:
            state = "FIRING" if pair["burning"] else "-"
            windows = f"{pair['long_window']:g}/{pair['short_window']:g}s"
            burns = f"{pair['burn_long']:.1f}x/{pair['burn_short']:.1f}x"
            lines.append(
                f"  {slo['name']:<22} {pair['name']:<6} {pair['severity']:<7} "
                f"{windows:>13} {burns:>15} {pair['threshold']:>5.1f}x  {state}"
            )


def _render_rollups(rollups: list[dict[str, Any]], top: int, lines: list[str]) -> None:
    shown = [r for r in rollups if r.get("type") == "rollup"][:top]
    if not shown:
        return
    lines.append("rollups:")
    for record in shown:
        labels = ",".join(
            f"{k}={v}" for k, v in sorted(record.get("labels", {}).items())
        )
        suffix = f"{{{labels}}}" if labels else ""
        lines.append(
            f"  {record['rule']:<18} {record['metric']}{suffix}: "
            f"{record['value']:.4g} ({record['kind']})"
        )


def render_tower(snapshot: dict[str, Any], top: int = TOP_JOINPOINTS) -> str:
    """The full text dashboard for one snapshot."""
    overall = snapshot["overall"]
    title = (
        f"control tower :: {snapshot['scenario']} @ t={snapshot['time']:.1f}s "
        f":: overall {overall.upper()} :: run verdict {snapshot['verdict'].upper()}"
    )
    lines = ["=" * len(title), title, "=" * len(title)]
    _render_report(snapshot["report"], lines)

    burning = snapshot["burning"]
    if burning:
        lines.append("burning now:")
        for alert in burning:
            worst = alert.get("worst") or {}
            blame = f" blame={worst.get('node', worst.get('station', '?'))}" if worst else ""
            lines.append(
                f"  [{alert['severity']}] {alert['slo']}/{alert['pair']}: "
                f"burn {alert['burn_long']:.1f}x/{alert['burn_short']:.1f}x "
                f"over {alert['threshold']:g}x since t={alert['time']:.1f}s{blame}"
            )

    _render_slos(snapshot["report"].get("slos", []), lines)

    peak = snapshot.get("peak")
    if peak is not None and peak["overall"] != overall:
        lines.append(
            f"peak incident (t={peak['time']:.1f}s, "
            f"overall {peak['overall'].upper()} — since recovered):"
        )
        _render_report(peak, lines)

    alerts = snapshot["alerts"]
    if alerts:
        lines.append(f"alert log (last {min(len(alerts), TOP_ALERTS)}):")
        for alert in alerts[-TOP_ALERTS:]:
            lines.append(
                f"  t={alert['time']:>7.1f} {alert['status']:<9} "
                f"[{alert['severity']}] {alert['slo']}/{alert['pair']} "
                f"burn={alert['burn_long']:.1f}x"
            )

    _render_rollups(snapshot["rollups"], TOP_ROLLUPS, lines)

    pipelines = snapshot.get("pipelines") or {}
    if pipelines:
        lines.append("pipelines:")
        for base_id, stats in sorted(pipelines.items()):
            lines.append(
                f"  {base_id}: depth={stats.get('depth', 0)} "
                f"in_service={stats.get('in_service', 0)} "
                f"completed={stats.get('completed', 0)} "
                f"shed={stats.get('shed', 0)} failed={stats.get('failed', 0)}"
            )

    hot = snapshot.get("hot_joinpoints") or []
    if hot:
        lines.append(f"hot join points (top {min(len(hot), top)}):")
        for entry in hot[:top]:
            lines.append(
                f"  {entry['joinpoint']:<32} {entry['extension']:<18} "
                f"calls={entry['count']} mean={entry['mean'] * 1e6:.1f}us "
                f"max={entry['maximum'] * 1e6:.1f}us"
            )

    fleet = snapshot.get("fleet")
    if fleet is not None:
        lines.append("fleet regions (renewals per sweep):")
        regions = fleet["regions"]
        for info in regions[:TOP_REGIONS]:
            series = fleet["renewed_series"].get(str(info["region"]), [])
            lines.append(
                f"  region {info['region']:>3}  {sparkline(series):<24} "
                f"renewed={info['renewed']} expired={info['expired']} "
                f"sweeps={info['sweeps']}"
            )
        if len(regions) > TOP_REGIONS:
            lines.append(f"  ... {len(regions) - TOP_REGIONS} more region(s)")

    return "\n".join(lines)


# -- scenario runners -------------------------------------------------------------


def ops_storm_spec(
    seed: int = 7, drop_roamed: float = 0.4, nodes: int = 60, bases: int = 3
):
    """The seeded roaming storm the tower (and CI) replays.

    With ``drop_roamed=0.4`` and single-shot announcements this burns
    the roam-convergence SLO deterministically; with ``drop_roamed=0``
    the same seed stays green end to end.
    """
    from repro.scenarios.spec import roaming_storm

    return roaming_storm(nodes=nodes, bases=bases, seed=seed).with_overrides(
        drop_roamed=drop_roamed,
        announce_attempts=1,
        roam_sync_interval=6.0,
    )


def run_storm_ops(args: argparse.Namespace) -> dict[str, Any]:
    from repro.scenarios.harness import report_from
    from repro.scenarios.storms import StormWorld

    spec = ops_storm_spec(seed=args.seed, drop_roamed=args.drop_roamed)
    world = StormWorld(spec, dump_dir=args.dump_dir)
    profiler = world.platform.enable_profiler()
    try:
        world.run_for(spec.total_time)
        world.monitor.tick()
        world.health.tick()
        report = report_from(world)
        return tower_snapshot(
            "storm",
            world.health,
            platform=world.platform,
            profiler=profiler,
            extra={
                "seed": spec.seed,
                "drop_roamed": spec.drop_roamed,
                "violations": len(report.violations),
                "fingerprint": report.fingerprint,
            },
        )
    finally:
        world.close()


def run_load_ops(args: argparse.Namespace) -> dict[str, Any]:
    from repro.loadgen.harness import load_health_plane, run_scenario
    from repro.loadgen.scenario import Scenario

    scenario = Scenario(
        name="ops-load", clients=24, duration=30.0, warmup=5.0, seed=args.seed
    )
    # Pass our own plane so its rollups and alert log survive the run.
    plane = load_health_plane(scenario)
    report = run_scenario(scenario, health=plane)
    snapshot = tower_snapshot("load", plane, extra={"seed": scenario.seed})
    snapshot["pipelines"] = {"base": report.station}
    snapshot["throughput"] = report.stable.get("throughput")
    return snapshot


def run_fleet_ops(args: argparse.Namespace) -> dict[str, Any]:
    from repro.fleet.population import FleetBuilder

    fleet = FleetBuilder(leaves=args.leaves, seed=args.seed).build()
    fleet.distribute("fleet-policy")
    fleet.run_epochs(args.epochs)
    fleet.health.tick()
    return tower_snapshot(
        "fleet",
        fleet.health,
        fleet=fleet,
        extra={"seed": args.seed, "leaves": args.leaves, "epochs": args.epochs},
    )


RUNNERS: dict[str, Callable[[argparse.Namespace], dict[str, Any]]] = {
    "storm": run_storm_ops,
    "load": run_load_ops,
    "fleet": run_fleet_ops,
}


def main(
    argv: list[str] | None = None, out: Callable[[str], None] = print
) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro ops",
        description="Control tower: health statuses, SLO burn, hot join "
        "points, pipelines, fleet heatlines — over a seeded scenario.",
    )
    parser.add_argument(
        "scenario",
        nargs="?",
        default="storm",
        choices=sorted(RUNNERS),
        help="scenario to run under the tower (default: storm)",
    )
    parser.add_argument("--seed", type=int, default=7, help="scenario seed")
    parser.add_argument(
        "--drop-roamed",
        type=float,
        default=0.4,
        metavar="F",
        help="storm only: ROAMED announcement drop fraction (0 = clean run)",
    )
    parser.add_argument(
        "--leaves", type=int, default=4096, help="fleet only: leaf count"
    )
    parser.add_argument(
        "--epochs", type=int, default=40, help="fleet only: epochs to run"
    )
    parser.add_argument(
        "--dump-dir",
        metavar="DIR",
        help="storm only: flight-ring auto-dump directory for slo.burn events",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=TOP_JOINPOINTS,
        metavar="N",
        help="hot join points to show",
    )
    parser.add_argument("--json", action="store_true", help="emit the snapshot as JSON")
    parser.add_argument(
        "--expect",
        choices=("healthy", "burning"),
        help="exit 2 unless the run verdict matches (CI replay gate)",
    )
    args = parser.parse_args(argv)

    snapshot = RUNNERS[args.scenario](args)
    if args.json:
        out(json.dumps(snapshot, indent=2, sort_keys=True, default=str))
    else:
        out(render_tower(snapshot, top=args.top))
    if args.expect is not None and snapshot["verdict"] != args.expect:
        out(
            f"EXPECTATION FAILED: wanted {args.expect}, "
            f"run verdict was {snapshot['verdict']}"
        )
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
