"""The :class:`HealthPlane`: one object tying rollups, SLOs and the model.

Two modes of feeding it:

- **Attached** (the normal one): ``plane.attach(registry)`` sets
  ``registry.health = plane`` and the registry forwards every counter
  increment, histogram observation and gauge set — *after* label
  capping/interning — to :meth:`on_count` / :meth:`on_observe` /
  :meth:`on_gauge`.  A registry with no plane attached pays one
  ``is not None`` check per sample (benchmarked in
  ``benchmarks/bench_o3_health_overhead.py``).

- **Detached** (fleet scale): no global recorder at all — harness code
  calls :meth:`ingest_count` / :meth:`ingest_gauge` with explicit
  timestamps.  The fleet's per-region sweeps feed one plane this way
  without ever installing process-global telemetry.

Burn evaluation happens on :meth:`tick` — run it from a
:class:`~repro.sim.timers.PeriodicTimer` (see :meth:`start`) or call it
manually at sample boundaries.  Newly fired alerts become ``slo.burn``
telemetry events, which the flight-recorder hub auto-dumps exactly like
``invariant.violation`` — so a burning SLO leaves the blamed node's last
N events on disk without anyone asking.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.telemetry.health.model import (
    STATUSES,
    Cause,
    Condition,
    HealthModel,
    HealthReport,
)
from repro.telemetry.health.rollups import RollupBook, RollupRule
from repro.telemetry.health.slo import SLO, BurnAlert, SloEngine
from repro.telemetry.metrics import LabelKey, label_key


class HealthPlane:
    """The third observability layer over one registry (or one fleet)."""

    def __init__(
        self,
        slos: Iterable[SLO] = (),
        rules: Iterable[RollupRule] = (),
        name: str = "health",
    ):
        self.name = name
        self.engine = SloEngine(slos)
        self.book = RollupBook(list(rules))
        self.model = HealthModel()
        self.registry: Any | None = None
        self._timer: Any | None = None
        self._emitting = False
        #: Metric names neither the book nor the engine routes — the
        #: attached-stream fast path is then one set lookup per sample.
        self._quiet: dict[str, set] = {
            "counter": set(),
            "histogram": set(),
            "gauge": set(),
        }
        self.ticks = 0
        #: The worst report captured at any burn instant — kept so a run
        #: that *recovers* before its final report still shows what the
        #: incident looked like (statuses + cause chains) at its peak.
        self.peak: HealthReport | None = None

    # -- wiring ------------------------------------------------------------------

    def attach(self, registry: Any) -> "HealthPlane":
        """Subscribe to ``registry``'s sample stream (returns self)."""
        registry.health = self
        self.registry = registry
        return self

    def detach(self) -> None:
        if self.registry is not None and self.registry.health is self:
            self.registry.health = None
        self.registry = None

    def add_slo(self, slo: SLO) -> None:
        self.engine.add(slo)
        for quiet in self._quiet.values():
            quiet.clear()

    def add_rule(self, rule: RollupRule) -> None:
        self.book.add_rule(rule)
        for quiet in self._quiet.values():
            quiet.clear()

    def start(self, simulator: Any, interval: float = 1.0) -> "HealthPlane":
        """Evaluate burn every ``interval`` virtual seconds (returns self)."""
        from repro.sim.timers import PeriodicTimer

        self.stop()
        self._timer = PeriodicTimer(
            simulator, interval, self.tick, name=f"{self.name}.tick"
        )
        self._timer.start()
        return self

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()
            self._timer = None

    # -- attached stream (called by MetricsRegistry; labels pre-capped) ---------

    def on_count(self, now: float, name: str, labels: LabelKey, amount: float) -> None:
        quiet = self._quiet["counter"]
        if name in quiet:
            return
        if self._emitting:
            return  # the plane's own alert counters must not feed SLOs
        if not self.book._rules_for(name) and not self.engine._routed(
            "counter", name
        ):
            quiet.add(name)
            return
        self.book.on_count(now, name, labels, amount)
        self.engine.on_count(now, name, labels, amount)

    def on_observe(
        self,
        now: float,
        name: str,
        labels: LabelKey,
        value: float,
        bounds: tuple[float, ...],
    ) -> None:
        quiet = self._quiet["histogram"]
        if name in quiet:
            return
        if self._emitting:
            return
        if not self.book._rules_for(name) and not self.engine._routed(
            "histogram", name
        ):
            quiet.add(name)
            return
        self.book.on_observe(now, name, labels, value, bounds)
        self.engine.on_observe(now, name, labels, value)

    def on_gauge(self, now: float, name: str, labels: LabelKey, value: float) -> None:
        quiet = self._quiet["gauge"]
        if name in quiet:
            return
        if self._emitting:
            return
        if not self.engine._routed("gauge", name):
            quiet.add(name)
            return
        self.engine.on_gauge(now, name, labels, value)

    # -- detached stream (explicit timestamps; fleet harnesses) ------------------

    def ingest_count(
        self, now: float, name: str, amount: float = 1.0, **labels: Any
    ) -> None:
        key = label_key(labels)
        self.book.on_count(now, name, key, amount)
        self.engine.on_count(now, name, key, amount)

    def ingest_gauge(self, now: float, name: str, value: float, **labels: Any) -> None:
        key = label_key(labels)
        self.engine.on_gauge(now, name, key, value)

    def ingest_observe(
        self,
        now: float,
        name: str,
        value: float,
        bounds: tuple[float, ...],
        **labels: Any,
    ) -> None:
        key = label_key(labels)
        self.book.on_observe(now, name, key, value, bounds)
        self.engine.on_observe(now, name, key, value)

    # -- probes ------------------------------------------------------------------

    def watch_platform(self, platform: Any) -> "HealthPlane":
        """Register the standard resilience/supervision/pipeline probes."""
        self.model.declare_subsystem("resilience", "supervision", "pipeline")
        self.model.add_probe("breakers", lambda: _breaker_probe(platform))
        self.model.add_probe("quarantine", lambda: _quarantine_probe(platform))
        self.model.add_probe("pipeline", lambda: _pipeline_probe(platform))
        return self

    # -- evaluation & reporting --------------------------------------------------

    def tick(self) -> list[BurnAlert]:
        """One burn evaluation; emits ``slo.burn`` events for new fires."""
        now = self._now()
        self.ticks += 1
        fired = self.engine.evaluate(now)
        if fired and self.registry is not None:
            self._emitting = True
            try:
                for alert in fired:
                    fields: dict[str, Any] = {
                        "slo": alert.slo,
                        "subsystem": alert.subsystem,
                        "pair": alert.pair,
                        "severity": alert.severity,
                        "burn_long": round(alert.burn_long, 4),
                        "burn_short": round(alert.burn_short, 4),
                        "threshold": alert.threshold,
                    }
                    # Name the blamed node so the flight hub dumps *its*
                    # ring (the same routing invariant.violation uses).
                    node = alert.worst.get("node")
                    if node:
                        fields["node"] = node
                    self.registry.event("slo.burn", **fields)
                    self.registry.count(
                        "slo.burns", slo=alert.slo, severity=alert.severity
                    )
            finally:
                self._emitting = False
        if fired:
            report = self.report(now)
            if self.peak is None or STATUSES.index(report.overall) >= STATUSES.index(
                self.peak.overall
            ):
                self.peak = report
        return fired

    def _now(self) -> float:
        if self.registry is not None:
            return self.registry.clock.now()
        # Detached: the freshest timestamp any window has seen (callers
        # pass explicit `now`s); fall back to 0 before the first sample.
        best = 0.0
        for slo in self.engine.slos:
            for window in slo._windows.values():
                if window._cursor is not None:
                    best = max(best, window._cursor * window.width)
        return best

    def report(self, now: float | None = None) -> HealthReport:
        """The full health verdict (conditions, statuses, SLO snapshots)."""
        at = self._now() if now is None else now
        return self.model.evaluate(at, self.engine)

    def to_records(self, now: float | None = None) -> list[dict[str, Any]]:
        """Rollup series + SLO snapshots as JSONL-ready records."""
        at = self._now() if now is None else now
        records = self.book.to_records(at)
        records.extend(
            {"type": "slo", **snap} for snap in self.engine.snapshot(at)
        )
        records.extend(
            {"type": "slo_alert", **alert.to_dict()} for alert in self.engine.alerts
        )
        return records

    def __repr__(self) -> str:
        return (
            f"<HealthPlane {self.name!r} slos={len(self.engine.slos)} "
            f"firing={len(self.engine.active())} ticks={self.ticks}>"
        )


# -- standard probes -------------------------------------------------------------


def _breaker_probe(platform: Any) -> list[Condition]:
    """Open circuit breakers degrade the resilience subsystem."""
    conditions: list[Condition] = []
    for owner_id, client in _resilient_clients(platform):
        for peer, breaker in sorted(client.breakers().items()):
            state = breaker.state.value
            if state == "closed":
                continue
            conditions.append(
                Condition(
                    subsystem="resilience",
                    status="degraded",
                    summary=f"breaker {owner_id} -> {peer} is {state}",
                    cause=Cause(
                        "breaker." + state,
                        f"{owner_id}->{peer}",
                        f"failures={breaker.failures}, "
                        f"opened {breaker.times_opened}x",
                    ),
                )
            )
    return conditions


def _quarantine_probe(platform: Any) -> list[Condition]:
    """Quarantined extensions degrade the supervision subsystem."""
    conditions: list[Condition] = []
    for node_id, mobile in sorted(platform.mobile_nodes.items()):
        supervisor = getattr(mobile, "supervisor", None)
        if supervisor is None:
            continue
        for health in supervisor.quarantined():
            info = health.as_dict()
            conditions.append(
                Condition(
                    subsystem="supervision",
                    status="degraded",
                    summary=(
                        f"extension {info['extension']} quarantined on {node_id}"
                    ),
                    cause=Cause(
                        "supervision.quarantined",
                        f"{node_id}:{info['extension']}",
                        f"contained {info['contained']} fault(s) "
                        f"at t={info['quarantined_at']:.3f}",
                    ),
                )
            )
    return conditions


def _pipeline_probe(platform: Any) -> list[Condition]:
    """A shedding accept-queue degrades (or criticals) the pipeline."""
    conditions: list[Condition] = []
    for base_id, station in sorted(platform.base_stations.items()):
        pipeline = getattr(station.extension_base, "pipeline", None)
        if pipeline is None:
            continue
        stats = pipeline.stats()
        shed = stats.get("shed", 0)
        submitted = stats.get("submitted", 0)
        if not shed:
            continue
        shed_frac = shed / submitted if submitted else 1.0
        conditions.append(
            Condition(
                subsystem="pipeline",
                status="critical" if shed_frac > 0.10 else "degraded",
                summary=(
                    f"{base_id} pipeline shed {shed}/{submitted} "
                    f"({shed_frac:.1%}) — queue depth {stats.get('depth', 0)}"
                ),
                cause=Cause(
                    "pipeline.shed",
                    base_id,
                    f"shed={shed} submitted={submitted} "
                    f"depth={stats.get('depth', 0)} "
                    f"in_service={stats.get('in_service', 0)}",
                ),
            )
        )
    return conditions


def _resilient_clients(platform: Any) -> list[tuple[str, Any]]:
    out: list[tuple[str, Any]] = []
    for node_id, mobile in sorted(platform.mobile_nodes.items()):
        client = getattr(mobile.discovery, "resilient_client", None)
        if client is not None:
            out.append((node_id, client))
    for base_id, station in sorted(platform.base_stations.items()):
        client = getattr(station.extension_base, "resilient_client", None)
        if client is not None:
            out.append((base_id, client))
    return out
