"""The health model: conditions → subsystem statuses → one overall verdict.

Burn alerts say *an objective is failing*; resilience and supervision
state say *why it might be* (a breaker is open, an extension is
quarantined, the pipeline is shedding).  The model folds both into
per-subsystem :class:`Condition`\\ s, each carrying an explicit
:class:`Cause` chain, and reduces them to statuses::

    healthy < degraded < critical

A subsystem's status is its worst condition; the platform's overall
status is the worst subsystem.  Probes are plain callables returning
conditions, registered with :meth:`HealthModel.add_probe` — the plane
ships standard probes (breakers, quarantines, pipeline shedding) and
harnesses add their own.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

#: Status order, best first.  Comparisons use index in this tuple.
STATUSES = ("healthy", "degraded", "critical")


def worst_status(statuses: Iterable[str]) -> str:
    """The worst of ``statuses`` ("healthy" when empty)."""
    worst = 0
    for status in statuses:
        rank = STATUSES.index(status)
        if rank > worst:
            worst = rank
    return STATUSES[worst]


@dataclass(frozen=True)
class Cause:
    """One link in a cause chain (optionally with nested sub-causes)."""

    kind: str
    subject: str
    detail: str = ""
    causes: tuple["Cause", ...] = ()

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"kind": self.kind, "subject": self.subject}
        if self.detail:
            out["detail"] = self.detail
        if self.causes:
            out["causes"] = [c.to_dict() for c in self.causes]
        return out

    def render(self, indent: int = 0) -> list[str]:
        pad = "  " * indent
        head = f"{pad}{self.kind}[{self.subject}]"
        if self.detail:
            head += f": {self.detail}"
        lines = [head]
        for cause in self.causes:
            lines.extend(cause.render(indent + 1))
        return lines


@dataclass(frozen=True)
class Condition:
    """One judged fact about one subsystem."""

    subsystem: str
    status: str
    summary: str
    cause: Cause | None = None

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise ValueError(f"unknown status {self.status!r}")

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "subsystem": self.subsystem,
            "status": self.status,
            "summary": self.summary,
        }
        if self.cause is not None:
            out["cause"] = self.cause.to_dict()
        return out


@dataclass
class HealthReport:
    """The model's full output at one instant."""

    time: float
    overall: str
    #: subsystem -> status (worst of its conditions).
    subsystems: dict[str, str]
    conditions: list[Condition]
    #: SLO snapshots (from the engine) for the tower's burn table.
    slos: list[dict[str, Any]] = field(default_factory=list)
    #: Recent burn/recovery alerts, oldest first.
    alerts: list[dict[str, Any]] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        return self.overall == "healthy"

    def to_dict(self) -> dict[str, Any]:
        return {
            "time": self.time,
            "overall": self.overall,
            "subsystems": dict(sorted(self.subsystems.items())),
            "conditions": [c.to_dict() for c in self.conditions],
            "slos": self.slos,
            "alerts": self.alerts,
        }

    def render(self) -> str:
        """Multi-line human form (the tower embeds this)."""
        lines = [f"overall: {self.overall.upper()}  (t={self.time:.1f}s)"]
        for subsystem, status in sorted(self.subsystems.items()):
            lines.append(f"  {subsystem:<14} {status}")
        problems = [c for c in self.conditions if c.status != "healthy"]
        if problems:
            lines.append("conditions:")
            for condition in problems:
                lines.append(
                    f"  [{condition.status}] {condition.subsystem}: "
                    f"{condition.summary}"
                )
                if condition.cause is not None:
                    for cause_line in condition.cause.render(indent=2):
                        lines.append(cause_line)
        return "\n".join(lines)


#: A probe yields zero or more conditions when polled.
Probe = Callable[[], Iterable[Condition]]


class HealthModel:
    """Aggregates probe conditions and SLO burns into statuses."""

    #: Burn severity → condition status.
    SEVERITY_STATUS = {"page": "critical", "ticket": "degraded"}

    def __init__(self) -> None:
        self._probes: list[tuple[str, Probe]] = []
        #: Subsystems that should appear even when nothing is wrong.
        self._known: set[str] = set()

    def add_probe(self, name: str, probe: Probe) -> None:
        self._probes.append((name, probe))

    def declare_subsystem(self, *names: str) -> None:
        """Make subsystems show up as healthy before any condition exists."""
        self._known.update(names)

    def conditions_from_burns(self, engine: Any, now: float) -> list[Condition]:
        """SLO burn state → conditions with burn → sample cause chains."""
        conditions: list[Condition] = []
        active = set(engine.active())
        for slo in engine.slos:
            self._known.add(slo.subsystem)
            for pair in slo.pairs:
                if (slo.name, pair.name) not in active:
                    continue
                burn_long = slo.burn_rate(pair.long_window, now)
                burn_short = slo.burn_rate(pair.short_window, now)
                sub_causes: tuple[Cause, ...] = ()
                if slo.last_bad or slo.last_bad_at is not None:
                    subject = (
                        slo.last_bad.get("node")
                        or slo.last_bad.get("station")
                        or slo.last_bad.get("peer")
                        or next(iter(slo.last_bad.values()), "unknown")
                    )
                    at = (
                        f" at t={slo.last_bad_at:.1f}s"
                        if slo.last_bad_at is not None
                        else ""
                    )
                    sub_causes = (
                        Cause(
                            "sample",
                            subject,
                            f"most recent bad sample{at} "
                            f"({', '.join(f'{k}={v}' for k, v in sorted(slo.last_bad.items())) or 'no labels'})",
                        ),
                    )
                cause = Cause(
                    "slo.burn",
                    slo.name,
                    f"{pair.severity} burn on {pair.name} pair: "
                    f"long={burn_long:.1f}x short={burn_short:.1f}x "
                    f"(threshold {pair.threshold:g}x, target {slo.target:g})",
                    causes=sub_causes,
                )
                conditions.append(
                    Condition(
                        subsystem=slo.subsystem,
                        status=self.SEVERITY_STATUS[pair.severity],
                        summary=(
                            f"SLO {slo.name} burning error budget "
                            f"{burn_long:.1f}x over target {slo.target:g} "
                            f"[{slo.description}]"
                        ),
                        cause=cause,
                    )
                )
        return conditions

    def evaluate(self, now: float, engine: Any | None = None) -> HealthReport:
        """Poll every probe (plus the SLO engine) and reduce to a report."""
        conditions: list[Condition] = []
        if engine is not None:
            conditions.extend(self.conditions_from_burns(engine, now))
        for _, probe in self._probes:
            conditions.extend(probe())
        subsystems: dict[str, list[str]] = {name: [] for name in self._known}
        for condition in conditions:
            subsystems.setdefault(condition.subsystem, []).append(condition.status)
        statuses = {
            name: worst_status(found) for name, found in subsystems.items()
        }
        return HealthReport(
            time=now,
            overall=worst_status(statuses.values()),
            subsystems=statuses,
            conditions=conditions,
            slos=engine.snapshot(now) if engine is not None else [],
            alerts=[a.to_dict() for a in engine.alerts] if engine is not None else [],
        )
