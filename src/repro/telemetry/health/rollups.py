"""Streaming rollups: windowed views registered per metric *pattern*.

A :class:`RollupBook` subscribes to the registry's sample stream (via
:class:`~repro.telemetry.health.plane.HealthPlane`) and maintains one
windowed series per (rule, metric name, label set).  Rules match metric
names with the repo's ``*`` wildcards, so one rule covers a family
(``midas.pipeline.*``).  Three kinds:

- ``rate``  — events/sec over the window (counters);
- ``ratio`` — bad fraction over the window (a counter family split by a
  ``bad_when`` predicate over metric name + labels, e.g.
  ``midas.pipeline.shed`` is bad, ``midas.pipeline.completed`` good;
  good and bad fold into *one* series per ``group_by`` projection);
- ``quantile`` — windowed quantile sketch over histogram buckets.

Cost model: each incoming sample touches the (cached) list of rules
matching its metric name and does an O(1) amortized window update per
matching rule — never a scan of recorded history.  Label keys arrive
*already capped and interned* by the registry, so values past a
cardinality cap all land on the single ``~other`` series instead of
forking a series per capped value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.telemetry.health.windows import (
    DEFAULT_SLICES,
    WindowedBuckets,
    WindowedCounts,
)
from repro.telemetry.metrics import LabelKey, format_labels
from repro.util.patterns import wildcard_match


@dataclass(frozen=True)
class RollupRule:
    """One registered rollup: what to watch and how to fold it."""

    name: str
    pattern: str
    #: "rate" | "ratio" | "quantile"
    kind: str
    window: float
    slices: int = DEFAULT_SLICES
    #: ratio rules: samples whose (metric, labels) match count as *bad*.
    bad_when: Callable[[str, LabelKey], bool] | None = None
    #: ratio rules: label names kept in the series key; all other labels
    #: (and the metric name itself) fold into one series, so the good
    #: and bad sides of a family meet in the same window.
    group_by: tuple[str, ...] = ()
    #: quantile rules: which quantile to report (e.g. 0.99).
    q: float = 0.99

    def project(self, metric: str, labels: LabelKey) -> tuple[str, LabelKey]:
        """The series identity a sample belongs to under this rule."""
        if self.kind != "ratio":
            return (metric, labels)
        kept: LabelKey = tuple(
            (k, v) for (k, v) in labels if k in self.group_by
        )
        return (self.pattern, kept)

    def __post_init__(self) -> None:
        if self.kind not in ("rate", "ratio", "quantile"):
            raise ValueError(f"unknown rollup kind {self.kind!r}")
        if self.kind == "ratio" and self.bad_when is None:
            raise ValueError(f"ratio rollup {self.name!r} needs bad_when")


class RateRollup:
    """Windowed event rate for one metric series."""

    __slots__ = ("rule", "metric", "labels", "window")

    def __init__(self, rule: RollupRule, metric: str, labels: LabelKey):
        self.rule = rule
        self.metric = metric
        self.labels = labels
        self.window = WindowedCounts(rule.window, rule.slices)

    def add(self, now: float, amount: float, bad: bool) -> None:
        self.window.add(now, good=amount)

    def value(self, now: float) -> float:
        """Events per second over the window."""
        return self.window.samples(now) / self.window.duration

    def to_record(self, now: float) -> dict[str, Any]:
        return {
            "type": "rollup",
            "rule": self.rule.name,
            "kind": "rate",
            "metric": self.metric,
            "labels": dict(self.labels),
            "window": self.window.duration,
            "value": self.value(now),
        }


class RatioRollup:
    """Windowed bad-fraction for one metric series family."""

    __slots__ = ("rule", "metric", "labels", "window")

    def __init__(self, rule: RollupRule, metric: str, labels: LabelKey):
        self.rule = rule
        self.metric = metric
        self.labels = labels
        self.window = WindowedCounts(rule.window, rule.slices)

    def add(self, now: float, amount: float, bad: bool) -> None:
        if bad:
            self.window.add(now, bad=amount)
        else:
            self.window.add(now, good=amount)

    def value(self, now: float) -> float:
        return self.window.bad_fraction(now)

    def to_record(self, now: float) -> dict[str, Any]:
        return {
            "type": "rollup",
            "rule": self.rule.name,
            "kind": "ratio",
            "metric": self.metric,
            "labels": dict(self.labels),
            "window": self.window.duration,
            "value": self.value(now),
            "samples": self.window.samples(now),
        }


class QuantileRollup:
    """Windowed quantile sketch for one histogram series."""

    __slots__ = ("rule", "metric", "labels", "window")

    def __init__(
        self,
        rule: RollupRule,
        metric: str,
        labels: LabelKey,
        bounds: tuple[float, ...],
    ):
        self.rule = rule
        self.metric = metric
        self.labels = labels
        self.window = WindowedBuckets(bounds, rule.window, rule.slices)

    def observe(self, now: float, value: float) -> None:
        self.window.observe(now, value)

    def value(self, now: float) -> float:
        return self.window.quantile(now, self.rule.q)

    def to_record(self, now: float) -> dict[str, Any]:
        return {
            "type": "rollup",
            "rule": self.rule.name,
            "kind": "quantile",
            "metric": self.metric,
            "labels": dict(self.labels),
            "window": self.window.duration,
            "q": self.rule.q,
            "value": self.value(now),
            "samples": self.window.count(now),
        }


class RollupBook:
    """All registered rollup rules plus their live series.

    Series are keyed by ``(rule, metric name, interned label key)``; the
    label key object arrives interned from the registry, so the dict key
    is cheap and overflow (``~other``) label sets share one series by
    construction.
    """

    def __init__(self, rules: Iterator[RollupRule] | list[RollupRule] = ()):
        self._rules: list[RollupRule] = []
        #: metric name -> rules matching it (wildcard match memoized here).
        self._routes: dict[str, tuple[RollupRule, ...]] = {}
        self._series: dict[tuple[str, str, LabelKey], Any] = {}
        for rule in rules:
            self.add_rule(rule)

    def add_rule(self, rule: RollupRule) -> None:
        self._rules.append(rule)
        self._routes.clear()  # re-route lazily against the new rule set

    def _rules_for(self, metric: str) -> tuple[RollupRule, ...]:
        routed = self._routes.get(metric)
        if routed is None:
            routed = tuple(
                rule for rule in self._rules if wildcard_match(rule.pattern, metric)
            )
            self._routes[metric] = routed
        return routed

    # -- stream entry points (hot path) ----------------------------------------

    def on_count(self, now: float, metric: str, labels: LabelKey, amount: float) -> None:
        for rule in self._rules_for(metric):
            if rule.kind == "quantile":
                continue
            series_metric, series_labels = rule.project(metric, labels)
            key = (rule.name, series_metric, series_labels)
            series = self._series.get(key)
            if series is None:
                cls = RatioRollup if rule.kind == "ratio" else RateRollup
                series = self._series[key] = cls(rule, series_metric, series_labels)
            bad = (
                rule.bad_when(metric, labels) if rule.bad_when is not None else False
            )
            series.add(now, amount, bad)

    def on_observe(
        self,
        now: float,
        metric: str,
        labels: LabelKey,
        value: float,
        bounds: tuple[float, ...],
    ) -> None:
        for rule in self._rules_for(metric):
            if rule.kind != "quantile":
                continue
            key = (rule.name, metric, labels)
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = QuantileRollup(
                    rule, metric, labels, bounds
                )
            series.observe(now, value)

    # -- read side ---------------------------------------------------------------

    def series(self, rule_name: str | None = None) -> list[Any]:
        """Live series, optionally restricted to one rule."""
        if rule_name is None:
            return list(self._series.values())
        return [s for (r, _, _), s in self._series.items() if r == rule_name]

    def value(
        self, rule_name: str, metric: str, now: float, **labels: Any
    ) -> float | None:
        """Current value of one series (None if it never saw a sample)."""
        from repro.telemetry.metrics import label_key

        wanted = label_key(labels)
        series = self._series.get((rule_name, metric, wanted))
        if series is None:
            # The registry interns keys; a caller-built key is equal but
            # not identical, and may also predate capping — fall back to
            # an equality scan.
            for (r, m, lk), candidate in self._series.items():
                if r == rule_name and m == metric and lk == wanted:
                    series = candidate
                    break
        return series.value(now) if series is not None else None

    def to_records(self, now: float) -> list[dict[str, Any]]:
        """Every live series as a JSON-serializable record."""
        return [series.to_record(now) for series in self._series.values()]

    def describe(self) -> str:
        lines = []
        for rule in self._rules:
            n = sum(1 for (r, _, _) in self._series if r == rule.name)
            lines.append(
                f"{rule.name}: {rule.kind}({rule.pattern}) "
                f"window={rule.window}s series={n}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<RollupBook rules={len(self._rules)} series={len(self._series)}>"


def series_label(series: Any) -> str:
    """Human form of one series identity (for the control tower)."""
    return f"{series.metric}{format_labels(series.labels)}"
