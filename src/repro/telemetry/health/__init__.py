"""The health plane: continuous judgments over the telemetry stream.

Layers 1 and 2 (:mod:`repro.telemetry`) collect raw material — counters,
histograms, spans, flight rings.  This package is the **third
observability layer**: it consumes the same stream a
:class:`~repro.telemetry.registry.MetricsRegistry` records and produces
*judgments* that stay cheap at fleet scale:

- :mod:`~repro.telemetry.health.windows` — fixed-cost sliding-window
  accumulators (ring buffers advanced by timestamps, clock-agnostic);
- :mod:`~repro.telemetry.health.rollups` — streaming rate / error-ratio /
  quantile rollups registered per metric *pattern*, updated incrementally
  so cost is O(windows), never O(events);
- :mod:`~repro.telemetry.health.slo` — SLO objects (availability,
  latency, convergence-lag) evaluated with multi-window burn-rate
  alerting; a burn alert is a first-class telemetry event
  (``slo.burn``) that auto-dumps flight rings exactly like
  ``invariant.violation``;
- :mod:`~repro.telemetry.health.model` — maps alerts plus live
  resilience/supervision state (open breakers, quarantines, pipeline
  shedding) into per-subsystem statuses with explicit cause chains;
- :mod:`~repro.telemetry.health.plane` — the :class:`HealthPlane` that
  ties it together and hangs off a registry (``plane.attach(registry)``);
- :mod:`~repro.telemetry.health.tower` — the control tower:
  ``python -m repro ops`` renders the live dashboard (statuses, burning
  SLOs, hot join points, fleet heatlines) with ``--json`` for scripts.

Quick use::

    from repro.telemetry.health import HealthPlane, SLO, CounterRatioSLI

    plane = HealthPlane(slos=[
        SLO("install-availability", "midas", target=0.999,
            sli=CounterRatioSLI(good=("midas.pipeline.completed",),
                                bad=("midas.pipeline.shed",
                                     "midas.pipeline.failed")))
    ])
    plane.attach(platform.enable_telemetry())
    plane.start(platform.simulator)       # periodic burn evaluation
    ...                                   # run the scenario
    print(plane.report().render())
"""

from repro.telemetry.health.model import (
    Cause,
    Condition,
    HealthModel,
    HealthReport,
    STATUSES,
    worst_status,
)
from repro.telemetry.health.plane import HealthPlane
from repro.telemetry.health.rollups import (
    QuantileRollup,
    RateRollup,
    RatioRollup,
    RollupBook,
    RollupRule,
)
from repro.telemetry.health.slo import (
    BurnAlert,
    BurnPair,
    CounterRatioSLI,
    DEFAULT_PAIRS,
    GaugeThresholdSLI,
    LatencySLI,
    SLO,
    SloEngine,
    scaled_pairs,
)
from repro.telemetry.health.windows import WindowedBuckets, WindowedCounts

__all__ = [
    "BurnAlert",
    "BurnPair",
    "Cause",
    "Condition",
    "CounterRatioSLI",
    "DEFAULT_PAIRS",
    "GaugeThresholdSLI",
    "HealthModel",
    "HealthPlane",
    "HealthReport",
    "LatencySLI",
    "QuantileRollup",
    "RateRollup",
    "RatioRollup",
    "RollupBook",
    "RollupRule",
    "SLO",
    "STATUSES",
    "SloEngine",
    "WindowedBuckets",
    "WindowedCounts",
    "scaled_pairs",
    "worst_status",
]
