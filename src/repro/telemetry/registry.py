"""The metrics registry — the platform's real telemetry recorder.

One :class:`MetricsRegistry` aggregates everything the instrumented
platform emits: counters, gauges, histograms, lifecycle events, and
finished spans.  It is clock-agnostic: give it a
:class:`~repro.util.clock.Clock` (e.g. a simulator's ``SimClock``) and
every timestamp is deterministic virtual time; leave the default
:class:`~repro.util.clock.SystemClock` for wall-clock runs.

Install one globally with :func:`repro.telemetry.runtime.install` to turn
the platform's instrumentation on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.telemetry import runtime
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LabelKey,
    label_key,
)
from repro.telemetry.recorder import FlightRecorderHub
from repro.telemetry.runtime import Recorder
from repro.telemetry.spans import Span, SpanContext, new_context
from repro.util.clock import Clock, SystemClock

#: Sentinel: "no parent given — use the ambient context".
_AMBIENT = object()

#: Default bound on retained spans/events: enough for any scenario in the
#: repo while keeping week-long simulations from growing without limit.
DEFAULT_RETENTION = 8192

#: Label value that absorbs everything past a label's cardinality cap.
OVERFLOW_LABEL = "~other"


@dataclass(frozen=True)
class TelemetryEvent:
    """One timestamped lifecycle event (install, expiry, timeout, ...)."""

    time: float
    name: str
    fields: Mapping[str, Any] = field(default_factory=dict)

    def to_record(self) -> dict[str, Any]:
        """The exportable (JSONL) form of this event."""
        return {
            "type": "event",
            "time": self.time,
            "name": self.name,
            "fields": dict(self.fields),
        }


class MetricsRegistry(Recorder):
    """Aggregates metrics, events, and spans for one process (or world)."""

    enabled = True

    def __init__(
        self,
        name: str = "telemetry",
        clock: Clock | None = None,
        max_spans: int = DEFAULT_RETENTION,
        max_events: int = DEFAULT_RETENTION,
        default_buckets: Iterable[float] = DEFAULT_BUCKETS,
        flight: FlightRecorderHub | None = None,
        label_limits: Mapping[str, int] | None = None,
    ):
        self.name = name
        self.clock = clock or SystemClock()
        #: Per-label-name cardinality caps, e.g. ``{"node": 256}``: the
        #: first N distinct values of a capped label get their own
        #: instruments, everything after lands on one aggregate
        #: ``~other`` series.  At fleet scale (100k nodes) per-node
        #: labels would otherwise mint 100k instruments per metric; the
        #: cap keeps the registry O(limit) while totals stay exact
        #: (:meth:`counter_total` sums the aggregate too).  ``None``
        #: caps nothing.
        self._label_limits = dict(label_limits) if label_limits else None
        self._label_seen: dict[str, set[str]] = {}
        #: Interned label keys: one shared tuple per distinct label set,
        #: however many metric names use it — each (name, labels) pair
        #: otherwise re-allocates the sorted tuple per instrument.
        self._interned_keys: dict[LabelKey, LabelKey] = {}
        #: Optional flight-recorder hub: every lifecycle event this
        #: registry records is also routed to the per-node ring of the
        #: node it names.  ``platform.enable_telemetry()`` attaches one.
        self.flight = flight
        #: Optional health plane (:mod:`repro.telemetry.health`): when
        #: attached, every count/observe/gauge is forwarded — after
        #: label capping/interning — so rollups and SLOs see the capped
        #: stream.  ``None`` costs one attribute check per sample.
        self.health = None
        self._counters: dict[tuple[str, LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, LabelKey], Histogram] = {}
        self._buckets_for: dict[str, tuple[float, ...]] = {}
        self._default_buckets = tuple(default_buckets)
        self.events: deque[TelemetryEvent] = deque(maxlen=max_events)
        self.spans: deque[Span] = deque(maxlen=max_spans)
        #: Events/spans silently evicted past the retention cap — surfaced
        #: by ``telemetry summary`` so "the export looks fine" can't hide
        #: a truncated record of a long run.
        self.dropped_events = 0
        self.dropped_spans = 0
        #: Spans started but not yet ended (kept so exports can show them).
        self._open_spans: dict[str, Span] = {}

    # -- label canonicalization --------------------------------------------------

    def _labels_key(self, labels: Mapping[str, Any], record: bool = True) -> LabelKey:
        """The (possibly capped, always interned) key for ``labels``.

        ``record=False`` is the read-side variant: a never-seen value of
        a capped label maps to the aggregate without consuming a slot,
        so queries cannot exhaust the cap.
        """
        if self._label_limits and labels:
            capped: dict[str, Any] | None = None
            for label_name, limit in self._label_limits.items():
                if label_name not in labels:
                    continue
                value = str(labels[label_name])
                if value == OVERFLOW_LABEL:
                    continue
                seen = self._label_seen.setdefault(label_name, set())
                if value in seen:
                    continue
                if len(seen) < limit:
                    if record:
                        seen.add(value)
                        continue
                    # A read for a value never written: it has no
                    # instrument either way; the raw key misses cleanly.
                    continue
                if capped is None:
                    capped = dict(labels)
                capped[label_name] = OVERFLOW_LABEL
            if capped is not None:
                labels = capped
        key = label_key(labels)
        shared = self._interned_keys.get(key)
        if shared is None:
            shared = self._interned_keys[key] = key
        return shared

    # -- recorder interface ----------------------------------------------------

    def count(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        """Increment counter ``name``/``labels`` by ``amount``."""
        key = (name, self._labels_key(labels))
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = Counter(name, key[1])
        counter.incr(amount)
        if self.health is not None:
            self.health.on_count(self.clock.now(), name, key[1], amount)

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set gauge ``name``/``labels`` to ``value``."""
        key = (name, self._labels_key(labels))
        gauge = self._gauges.get(key)
        if gauge is None:
            gauge = self._gauges[key] = Gauge(name, key[1])
        now = self.clock.now()
        gauge.set(value, now=now)
        if self.health is not None:
            self.health.on_gauge(now, name, key[1], value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record ``value`` in histogram ``name``/``labels``."""
        key = (name, self._labels_key(labels))
        histogram = self._histograms.get(key)
        if histogram is None:
            buckets = self._buckets_for.get(name, self._default_buckets)
            histogram = self._histograms[key] = Histogram(name, key[1], buckets)
        histogram.observe(value)
        if self.health is not None:
            self.health.on_observe(
                self.clock.now(), name, key[1], value, histogram.buckets
            )

    def event(self, name: str, **fields: Any) -> None:
        """Record a lifecycle event stamped with the registry clock.

        When a trace context is ambient (an active span, or a message's
        wire context activated around its delivery), the event carries
        its trace/span ids — so chaos timelines stay connected.  Call
        sites may pass explicit ``trace_id``/``span_id`` to override.
        """
        context = runtime.current_context()
        if context is not None:
            fields.setdefault("trace_id", context.trace_id)
            fields.setdefault("span_id", context.span_id)
        now = self.clock.now()
        if len(self.events) == self.events.maxlen:
            self.dropped_events += 1
        self.events.append(TelemetryEvent(now, name, fields))
        if self.flight is not None:
            self.flight.record(name, fields, time=now)

    def start_span(
        self,
        name: str,
        parent: SpanContext | None | Any = _AMBIENT,
        node: str | None = None,
        **attrs: Any,
    ) -> Span:
        """Start a span; the caller ends it (directly or via ``with``).

        ``parent`` defaults to the ambient context (so spans nest across
        message deliveries); pass ``None`` to force a new root trace, or
        an explicit :class:`SpanContext` to join a stored trace.
        """
        if parent is _AMBIENT:
            parent = runtime.current_context()
        context, parent_id = new_context(parent)
        span = Span(
            name,
            context,
            parent_id,
            start=self.clock.now(),
            attrs=attrs,
            node=node,
            on_end=self._span_ended,
        )
        self._open_spans[context.span_id] = span
        return span

    #: ``with registry.span(...)`` reads better at call sites; the span
    #: object itself is the context manager.
    span = start_span

    # -- instrument access ------------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter for ``name``/``labels`` (created on first use)."""
        key = (name, self._labels_key(labels))
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = Counter(name, key[1])
        return counter

    def counter_value(self, name: str, **labels: Any) -> float:
        """Current value of a counter (0.0 if never incremented).

        With a capped label, values past the cap read the aggregate
        ``~other`` series (their individual identity was never stored).
        """
        existing = self._counters.get((name, self._labels_key(labels, record=False)))
        return existing.value if existing is not None else 0.0

    def counter_total(self, name: str) -> float:
        """Sum of a counter across all of its label sets."""
        return sum(
            counter.value
            for (counter_name, _), counter in self._counters.items()
            if counter_name == name
        )

    def gauge_value(self, name: str, **labels: Any) -> float | None:
        """Current value of a gauge, or None if never set."""
        existing = self._gauges.get((name, self._labels_key(labels, record=False)))
        return existing.value if existing is not None else None

    def histogram(self, name: str, **labels: Any) -> Histogram | None:
        """The histogram for ``name``/``labels``, if any observations exist."""
        return self._histograms.get((name, self._labels_key(labels, record=False)))

    def histograms_named(self, name: str) -> list[Histogram]:
        """All histograms sharing ``name`` across label sets."""
        return [
            histogram
            for (histogram_name, _), histogram in self._histograms.items()
            if histogram_name == name
        ]

    def declare_buckets(self, name: str, buckets: Iterable[float]) -> None:
        """Fix custom bucket bounds for histograms named ``name``.

        Must run before the first observation of that name; existing
        histograms keep their bounds.
        """
        self._buckets_for[name] = tuple(sorted(float(b) for b in buckets))

    def finished_spans(self, name: str | None = None) -> list[Span]:
        """Finished spans, optionally filtered by span name."""
        if name is None:
            return list(self.spans)
        return [span for span in self.spans if span.name == name]

    def traces(self) -> dict[str, list[Span]]:
        """Finished spans grouped by trace id, in finish order."""
        grouped: dict[str, list[Span]] = {}
        for span in self.spans:
            grouped.setdefault(span.trace_id, []).append(span)
        return grouped

    # -- export -----------------------------------------------------------------

    def to_records(self) -> list[dict[str, Any]]:
        """Everything recorded, as plain JSON-serializable records.

        The list starts with a ``meta`` record; order within each record
        type is stable (insertion order).  Open spans are exported with
        ``end: null`` so a crash dump still shows what was in flight.
        """
        records: list[dict[str, Any]] = [
            {
                "type": "meta",
                "name": self.name,
                "exported_at": self.clock.now(),
                "dropped_events": self.dropped_events,
                "dropped_spans": self.dropped_spans,
            }
        ]
        records.extend(c.to_record() for c in self._counters.values())
        records.extend(g.to_record() for g in self._gauges.values())
        records.extend(h.to_record() for h in self._histograms.values())
        records.extend(e.to_record() for e in self.events)
        records.extend(s.to_record() for s in self.spans)
        records.extend(s.to_record() for s in self._open_spans.values())
        if self.flight is not None:
            records.extend(self.flight.to_records())
        return records

    # -- plumbing ----------------------------------------------------------------

    def _span_ended(self, span: Span) -> None:
        span.end_time = self.clock.now()
        self._open_spans.pop(span.span_id, None)
        if len(self.spans) == self.spans.maxlen:
            self.dropped_spans += 1
        self.spans.append(span)

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry {self.name!r} counters={len(self._counters)} "
            f"histograms={len(self._histograms)} spans={len(self.spans)}>"
        )
