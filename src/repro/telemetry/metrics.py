"""Metric instruments: counters, gauges, and fixed-bucket histograms.

Instruments are identified by a ``name`` plus a small set of string
``labels`` (e.g. ``prose.interceptions{joinpoint=Motor.rotate}``).  The
:class:`~repro.telemetry.registry.MetricsRegistry` owns one instrument per
distinct ``(name, labels)`` pair; this module only defines the value
containers, so they stay trivially testable and serializable.

Histograms use *fixed* bucket boundaries chosen at creation time.  That
keeps ``observe`` O(log buckets) with zero allocation, and makes two
exports mergeable bucket-by-bucket — the property every telemetry
pipeline (Prometheus, OpenTelemetry) relies on.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterable, Mapping

#: Label sets are stored as a sorted tuple of items so instruments hash
#: and compare regardless of keyword order at the call site.
LabelKey = tuple[tuple[str, str], ...]

#: Default histogram buckets, in seconds: spans six decades, from
#: sub-microsecond advice dispatch to multi-second protocol timeouts.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)


def label_key(labels: Mapping[str, Any]) -> LabelKey:
    """Canonical, hashable form of a label mapping (values stringified)."""
    if not labels:
        return ()
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def format_labels(labels: LabelKey) -> str:
    """Render a label key as ``{k=v, ...}`` (empty string for no labels)."""
    if not labels:
        return ""
    inner = ", ".join(f"{key}={value}" for key, value in labels)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def incr(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (by {amount})")
        self.value += amount

    def to_record(self) -> dict[str, Any]:
        """The exportable (JSONL) form of this counter."""
        return {
            "type": "counter",
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }

    def __repr__(self) -> str:
        return f"<Counter {self.name}{format_labels(self.labels)} = {self.value}>"


class Gauge:
    """A value that can go up and down (queue depth, live tuples, ...)."""

    __slots__ = ("name", "labels", "value", "updated_at")

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.updated_at: float | None = None

    def set(self, value: float, now: float | None = None) -> None:
        """Record the current level of the measured quantity."""
        self.value = float(value)
        self.updated_at = now

    def to_record(self) -> dict[str, Any]:
        """The exportable (JSONL) form of this gauge."""
        return {
            "type": "gauge",
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
            "updated_at": self.updated_at,
        }

    def __repr__(self) -> str:
        return f"<Gauge {self.name}{format_labels(self.labels)} = {self.value}>"


class Histogram:
    """A fixed-bucket histogram of observed values.

    ``buckets`` are upper bounds; an observation lands in the first bucket
    whose bound is >= the value, or in the implicit overflow bucket.  The
    exact sum/min/max are tracked alongside, so the mean is exact while
    quantiles are bucket-resolution estimates.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "count", "total",
                 "min", "max")

    def __init__(
        self,
        name: str,
        labels: LabelKey = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        #: One slot per bound plus the overflow bucket.
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def mean(self) -> float:
        """Exact mean of all observations (0.0 if empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution estimate of the ``q``-quantile (0 <= q <= 1).

        Returns the upper bound of the bucket containing the target rank
        (the recorded max for the overflow bucket), 0.0 if empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank and bucket_count:
                if index < len(self.buckets):
                    return self.buckets[index]
                return self.max if self.max is not None else 0.0
        return self.max if self.max is not None else 0.0

    def to_record(self) -> dict[str, Any]:
        """The exportable (JSONL) form of this histogram."""
        return {
            "type": "histogram",
            "name": self.name,
            "labels": dict(self.labels),
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }

    def __repr__(self) -> str:
        return (
            f"<Histogram {self.name}{format_labels(self.labels)} "
            f"n={self.count} mean={self.mean():.3g}>"
        )
