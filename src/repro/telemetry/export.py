"""Exporters: JSONL dumps and human-readable text summaries.

Both exporters work on *records* — the plain-dict form produced by
:meth:`MetricsRegistry.to_records` and round-tripped through JSONL — so
the same summary code renders a live registry and a file loaded back
from disk identically (that symmetry is what the CLI's
``telemetry summary`` relies on).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Any, Iterable, Union

from repro.telemetry.metrics import format_labels
from repro.telemetry.registry import MetricsRegistry

Records = list[dict[str, Any]]
_Source = Union[MetricsRegistry, Iterable[dict[str, Any]]]

#: Traces rendered in full by :func:`text_summary` before eliding.
MAX_TRACES_SHOWN = 5

#: Histogram quantiles summaries report unless the caller overrides them.
DEFAULT_QUANTILES = (0.5, 0.95, 0.99)


def _check_quantiles(quantiles: tuple[float, ...]) -> tuple[float, ...]:
    quantiles = tuple(quantiles)
    if not quantiles:
        raise ValueError("need at least one quantile")
    for q in quantiles:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantiles must be in (0, 1), got {q}")
    return quantiles


def quantile_label(q: float) -> str:
    """The conventional name of quantile ``q`` (0.5 -> 'p50', 0.999 -> 'p99.9')."""
    return f"p{q * 100:g}"


def _records_of(source: _Source) -> Records:
    if isinstance(source, MetricsRegistry):
        return source.to_records()
    return list(source)


def write_jsonl(source: _Source, destination: Union[str, Path, IO[str]]) -> int:
    """Write one JSON record per line; returns the record count."""
    records = _records_of(source)
    if hasattr(destination, "write"):
        for record in records:
            destination.write(json.dumps(record, sort_keys=True) + "\n")
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
    return len(records)


def read_jsonl(source: Union[str, Path, IO[str]]) -> Records:
    """Load records written by :func:`write_jsonl` (blank lines skipped).

    A truncated or corrupted line — half-written dump from a crashed
    process, stray shell output in the file — is *skipped and counted*
    rather than aborting the whole load: when any line fails to parse, a
    final ``{"type": "read_errors", "malformed_lines": n}`` record is
    appended so summaries can surface the damage.
    """
    if hasattr(source, "read"):
        lines = source.read().splitlines()
    else:
        lines = Path(source).read_text(encoding="utf-8").splitlines()
    records: Records = []
    malformed = 0
    for line in lines:
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            malformed += 1
    if malformed:
        records.append({"type": "read_errors", "malformed_lines": malformed})
    return records


def _label_suffix(record: dict[str, Any]) -> str:
    return format_labels(tuple(sorted(record.get("labels", {}).items())))


def _histogram_stats(
    record: dict[str, Any], quantiles: tuple[float, ...] = DEFAULT_QUANTILES
) -> str:
    count = record["count"]
    if not count:
        return "n=0"
    mean = record["sum"] / count
    values = _quantiles_from_buckets(record, quantiles)
    rendered = " ".join(
        f"{quantile_label(q)}={_si(value)}" for q, value in zip(quantiles, values)
    )
    middle = f" {rendered}" if rendered else ""
    return f"n={count} mean={_si(mean)}{middle} max={_si(record['max'])}"


def _quantiles_from_buckets(
    record: dict[str, Any], qs: tuple[float, ...]
) -> list[float]:
    buckets, counts, total = record["buckets"], record["counts"], record["count"]
    out = []
    for q in qs:
        rank = q * total
        seen = 0
        value = record["max"] or 0.0
        for index, bucket_count in enumerate(counts):
            seen += bucket_count
            if seen >= rank and bucket_count:
                value = buckets[index] if index < len(buckets) else (record["max"] or 0.0)
                break
        out.append(value)
    return out


def _si(value: float | None) -> str:
    """Render seconds-ish floats compactly (1.2ms, 340us, 2.5s)."""
    if value is None:
        return "-"
    magnitude = abs(value)
    for threshold, scale, unit in ((1.0, 1.0, "s"), (1e-3, 1e3, "ms"), (1e-6, 1e6, "us")):
        if magnitude >= threshold:
            return f"{value * scale:.3g}{unit}"
    return f"{value * 1e9:.3g}ns" if magnitude > 0 else "0s"


def _span_tree_lines(spans: list[dict[str, Any]]) -> list[str]:
    by_parent: dict[str | None, list[dict[str, Any]]] = {}
    ids = {span["span_id"] for span in spans}
    for span in spans:
        parent = span["parent_id"] if span["parent_id"] in ids else None
        by_parent.setdefault(parent, []).append(span)
    for children in by_parent.values():
        children.sort(key=lambda s: (s["start"], s["span_id"]))

    lines: list[str] = []

    def walk(parent: str | None, depth: int) -> None:
        for span in by_parent.get(parent, ()):
            node = f" @{span['node']}" if span.get("node") else ""
            end = span["end"]
            window = (
                f"t={span['start']:.3f}..{end:.3f}" if end is not None
                else f"t={span['start']:.3f}.. (open)"
            )
            status = span["status"] or "open"
            lines.append(f"{'  ' * depth}- {span['name']}{node} {window} [{status}]")
            walk(span["span_id"], depth + 1)

    walk(None, 0)
    return lines


def text_summary(
    source: _Source,
    title: str | None = None,
    quantiles: tuple[float, ...] = DEFAULT_QUANTILES,
) -> str:
    """A human-readable digest of counters, histograms, events and traces.

    ``quantiles`` picks the histogram quantiles shown (bucket-resolution,
    each in the open interval (0, 1)); the default adds tail visibility
    with p99 alongside the classic p50/p95.
    """
    quantiles = _check_quantiles(quantiles)
    records = _records_of(source)
    meta = next((r for r in records if r["type"] == "meta"), None)
    counters = sorted(
        (r for r in records if r["type"] == "counter"),
        key=lambda r: (r["name"], sorted(r.get("labels", {}).items())),
    )
    gauges = sorted(
        (r for r in records if r["type"] == "gauge"),
        key=lambda r: (r["name"], sorted(r.get("labels", {}).items())),
    )
    histograms = sorted(
        (r for r in records if r["type"] == "histogram"),
        key=lambda r: (r["name"], sorted(r.get("labels", {}).items())),
    )
    events = [r for r in records if r["type"] == "event"]
    spans = [r for r in records if r["type"] == "span"]
    flights = [r for r in records if r["type"] == "flight"]
    malformed = sum(
        r.get("malformed_lines", 0) for r in records if r["type"] == "read_errors"
    )

    header = title or (f"telemetry summary — {meta['name']}" if meta else "telemetry summary")
    lines = [header, "=" * len(header)]

    if counters:
        lines += ["", "counters:"]
        lines += [
            f"  {r['name']}{_label_suffix(r)} = {r['value']:g}" for r in counters
        ]
    if gauges:
        lines += ["", "gauges:"]
        lines += [f"  {r['name']}{_label_suffix(r)} = {r['value']:g}" for r in gauges]
    if histograms:
        lines += ["", "histograms:"]
        lines += [
            f"  {r['name']}{_label_suffix(r)}  {_histogram_stats(r, quantiles)}"
            for r in histograms
        ]
    if events:
        lines += ["", f"events: {len(events)}"]
        by_name: dict[str, int] = {}
        for record in events:
            by_name[record["name"]] = by_name.get(record["name"], 0) + 1
        lines += [f"  {name} x{count}" for name, count in sorted(by_name.items())]

    if flights:
        nodes = sorted({r["node"] for r in flights})
        lines += [
            "",
            f"flight recorder: {len(flights)} events on {len(nodes)} node(s) "
            f"({', '.join(nodes)})",
        ]

    if spans:
        traces: dict[str, list[dict[str, Any]]] = {}
        for span in spans:
            traces.setdefault(span["trace_id"], []).append(span)
        lines += ["", f"traces: {len(traces)} ({len(spans)} spans)"]
        for index, (trace_id, trace_spans) in enumerate(sorted(traces.items())):
            if index >= MAX_TRACES_SHOWN:
                lines.append(f"  ... and {len(traces) - MAX_TRACES_SHOWN} more traces")
                break
            lines.append(f"  trace {trace_id}:")
            lines += ["  " + line for line in _span_tree_lines(trace_spans)]

    dropped_events = int(meta.get("dropped_events", 0) or 0) if meta else 0
    dropped_spans = int(meta.get("dropped_spans", 0) or 0) if meta else 0
    if dropped_events or dropped_spans:
        lines += [
            "",
            f"warning: retention cap dropped {dropped_events} event(s) and "
            f"{dropped_spans} span(s) before this export",
        ]

    if malformed:
        lines += ["", f"warning: {malformed} malformed line(s) skipped while reading"]

    if len(lines) == 2:
        lines.append("(empty)")
    return "\n".join(lines)


def json_summary(
    source: _Source, quantiles: tuple[float, ...] = DEFAULT_QUANTILES
) -> dict[str, Any]:
    """A machine-readable digest of the same records :func:`text_summary` shows.

    The shape is stable for scripting (``repro telemetry summary --format
    json``): every value is a plain JSON type, histogram quantiles are
    bucket-resolution like the text rendering (one ``p<q>`` key per
    requested quantile, e.g. ``p50``/``p95``/``p99``), and any malformed
    lines counted by :func:`read_jsonl` appear under ``malformed_lines``.
    """
    quantiles = _check_quantiles(quantiles)
    records = _records_of(source)
    meta = next((r for r in records if r["type"] == "meta"), None)

    def metric(record: dict[str, Any]) -> dict[str, Any]:
        return {
            "name": record["name"],
            "labels": dict(record.get("labels", {})),
            "value": record["value"],
        }

    def histogram(record: dict[str, Any]) -> dict[str, Any]:
        count = record["count"]
        values = (
            _quantiles_from_buckets(record, quantiles)
            if count
            else [None] * len(quantiles)
        )
        summary = {
            "name": record["name"],
            "labels": dict(record.get("labels", {})),
            "count": count,
            "sum": record["sum"],
            "mean": (record["sum"] / count) if count else None,
        }
        summary.update(
            (quantile_label(q), value) for q, value in zip(quantiles, values)
        )
        summary["max"] = record["max"]
        return summary

    events = [r for r in records if r["type"] == "event"]
    events_by_name: dict[str, int] = {}
    for record in events:
        events_by_name[record["name"]] = events_by_name.get(record["name"], 0) + 1

    spans = [r for r in records if r["type"] == "span"]
    trace_ids = {span["trace_id"] for span in spans}

    flights = [r for r in records if r["type"] == "flight"]
    flights_by_node: dict[str, int] = {}
    for record in flights:
        flights_by_node[record["node"]] = flights_by_node.get(record["node"], 0) + 1

    return {
        "meta": dict(meta) if meta else None,
        "counters": sorted(
            (metric(r) for r in records if r["type"] == "counter"),
            key=lambda m: (m["name"], sorted(m["labels"].items())),
        ),
        "gauges": sorted(
            (metric(r) for r in records if r["type"] == "gauge"),
            key=lambda m: (m["name"], sorted(m["labels"].items())),
        ),
        "histograms": sorted(
            (histogram(r) for r in records if r["type"] == "histogram"),
            key=lambda h: (h["name"], sorted(h["labels"].items())),
        ),
        "events": {"total": len(events), "by_name": dict(sorted(events_by_name.items()))},
        "spans": {"total": len(spans), "traces": len(trace_ids)},
        "flight": {
            "total": len(flights),
            "by_node": dict(sorted(flights_by_node.items())),
        },
        "dropped": {
            "events": int(meta.get("dropped_events", 0) or 0) if meta else 0,
            "spans": int(meta.get("dropped_spans", 0) or 0) if meta else 0,
        },
        "malformed_lines": sum(
            r.get("malformed_lines", 0)
            for r in records
            if r["type"] == "read_errors"
        ),
    }


# -- Prometheus text exposition ---------------------------------------------------

#: Characters legal in a Prometheus metric name (after the first char).
_PROM_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _prom_name(name: str) -> str:
    """Sanitize a metric name (dots become underscores, etc.)."""
    cleaned = "".join(c if c in _PROM_OK else "_" for c in name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned or "_"


def _prom_label_value(value: str) -> str:
    """Escape a label value per the exposition format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_labels(labels: dict[str, Any], extra: str = "") -> str:
    parts = [
        f'{_prom_name(k)}="{_prom_label_value(v)}"'
        for k, v in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _prom_float(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    return repr(float(value))


def prom_text(source: _Source) -> str:
    """Prometheus text-exposition rendering of the metric records.

    Counters get a ``_total`` suffix; histograms emit cumulative
    ``_bucket{le=...}`` series plus ``_sum``/``_count`` (and the
    implicit ``+Inf`` bucket), matching what a real scrape endpoint
    would serve.  Label semantics are the registry's: values past a
    cardinality cap arrive already folded into the ``~other`` series,
    so the exposition stays bounded at fleet scale.  Events, spans and
    flight records have no Prometheus shape and are skipped.
    """
    records = _records_of(source)
    lines: list[str] = []
    #: name -> (prom kind, [(labels, record)]) keeping first-seen order.
    families: dict[str, tuple[str, list[dict[str, Any]]]] = {}
    for record in records:
        kind = record.get("type")
        if kind not in ("counter", "gauge", "histogram"):
            continue
        family = families.setdefault(record["name"], (kind, []))
        if family[0] == kind:
            family[1].append(record)
    for name, (kind, members) in families.items():
        prom = _prom_name(name)
        if kind == "counter":
            prom += "_total"
        lines.append(f"# TYPE {prom} {kind}")
        for record in members:
            labels = dict(record.get("labels", {}))
            if kind in ("counter", "gauge"):
                lines.append(
                    f"{prom}{_prom_labels(labels)} {_prom_float(record['value'])}"
                )
                continue
            # Histogram: cumulative buckets, then sum and count.
            cumulative = 0
            for bound, bucket_count in zip(record["buckets"], record["counts"]):
                cumulative += bucket_count
                le = _prom_labels(labels, extra=f'le="{_prom_float(bound)}"')
                lines.append(f"{prom}_bucket{le} {cumulative}")
            inf = _prom_labels(labels, extra='le="+Inf"')
            lines.append(f"{prom}_bucket{inf} {record['count']}")
            lines.append(
                f"{prom}_sum{_prom_labels(labels)} {_prom_float(record['sum'])}"
            )
            lines.append(f"{prom}_count{_prom_labels(labels)} {record['count']}")
    return "\n".join(lines) + ("\n" if lines else "")
