"""The flight recorder: bounded per-node rings of lifecycle events.

Metrics answer "how much"; spans answer "how long".  Neither answers the
question an operator actually asks after an incident: *what sequence of
events, on which nodes, led here?*  The flight recorder does.  Every
structured lifecycle event the platform emits — weave/unweave, advice
dispatch errors, lease grant/renew/expiry, offer/install/rollback,
injected faults, circuit-breaker transitions, quarantines — is copied
into a fixed-size ring buffer for the node it happened on, stamped with:

- the node id (derived from the event's own fields),
- a per-node monotonic sequence number (total order within the node),
- the registry clock's timestamp (virtual time under simulation),
- the active trace/span ids, when a trace context is live.

Rings are bounded (:data:`DEFAULT_CAPACITY` events per node) so a
week-long run keeps only the recent past — exactly a flight recorder.
Rings can be dumped to JSONL on demand, and dump automatically when a
*black-box event* (a crash, a quarantine) lands, if a dump directory is
configured.

Cost model: the hub only ever sees events that already went through an
installed :class:`~repro.telemetry.registry.MetricsRegistry`.  With no
recorder installed (the default) nothing reaches it, so the disabled
cost is exactly PR 1's no-op-recorder cost — one cell read.  Enabled, a
recorded event is one dataclass + one deque append on top of the
registry's own work; ``benchmarks/bench_o2_recorder_overhead.py`` gates
both ends.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Iterable, Iterator, Mapping, Union

from repro.telemetry import runtime
from repro.util.clock import Clock, SystemClock

#: Events kept per node before the ring starts evicting the oldest.
DEFAULT_CAPACITY = 512

#: Black-box events: when one lands and the hub has a ``dump_dir``, the
#: affected node's ring is dumped immediately (the state that *led to*
#: the incident is exactly what the ring still holds).
DUMP_KINDS = frozenset(
    {"fault.crash", "supervision.quarantined", "invariant.violation", "slo.burn"}
)

#: Ring assigned to events that name no node (world-level happenings).
WORLD = "world"


@dataclass(frozen=True)
class FlightEvent:
    """One recorded lifecycle event, causally stampable.

    ``seq`` is monotonic *per node*: it totally orders a node's own
    events even when several share a virtual-time instant.  ``trace_id``
    and ``span_id`` tie the event into the span graph when a context was
    ambient (or carried on the triggering message) at record time.
    """

    node: str
    seq: int
    time: float
    kind: str
    trace_id: str | None = None
    span_id: str | None = None
    fields: Mapping[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        """Field access shorthand (``event.get("reason")``)."""
        return self.fields.get(key, default)

    def to_record(self) -> dict[str, Any]:
        """The exportable (JSONL) form of this event."""
        return {
            "type": "flight",
            "node": self.node,
            "seq": self.seq,
            "time": self.time,
            "kind": self.kind,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "fields": dict(self.fields),
        }

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "FlightEvent":
        """Rebuild an event from its JSONL record."""
        return cls(
            node=record["node"],
            seq=record["seq"],
            time=record["time"],
            kind=record["kind"],
            trace_id=record.get("trace_id"),
            span_id=record.get("span_id"),
            fields=dict(record.get("fields", {})),
        )

    def __repr__(self) -> str:
        trace = f" trace={self.trace_id}" if self.trace_id else ""
        return f"<FlightEvent {self.node}#{self.seq} t={self.time:.3f} {self.kind}{trace}>"


class FlightRecorder:
    """One node's bounded event ring."""

    __slots__ = ("node", "capacity", "_ring", "_seq", "recorded", "evicted")

    def __init__(self, node: str, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"flight recorder capacity must be >= 1, got {capacity}")
        self.node = node
        self.capacity = capacity
        self._ring: deque[FlightEvent] = deque(maxlen=capacity)
        self._seq = 0
        #: Total events ever recorded (recorded - len(ring) were evicted).
        self.recorded = 0
        self.evicted = 0

    def record(
        self,
        kind: str,
        time: float,
        fields: Mapping[str, Any],
        trace_id: str | None = None,
        span_id: str | None = None,
    ) -> FlightEvent:
        """Append one event, stamping the node's next sequence number."""
        event = FlightEvent(
            node=self.node,
            seq=self._seq,
            time=time,
            kind=kind,
            trace_id=trace_id,
            span_id=span_id,
            fields=fields,
        )
        self._seq += 1
        if len(self._ring) == self.capacity:
            self.evicted += 1
        self._ring.append(event)
        self.recorded += 1
        return event

    def events(self) -> list[FlightEvent]:
        """The retained events, oldest first."""
        return list(self._ring)

    def tail(self, count: int = 10) -> list[FlightEvent]:
        """The most recent ``count`` retained events, oldest first."""
        if count <= 0:
            return []
        return list(self._ring)[-count:]

    def to_records(self) -> list[dict[str, Any]]:
        """Exportable form of the whole ring, oldest first."""
        return [event.to_record() for event in self._ring]

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[FlightEvent]:
        return iter(self._ring)

    def __repr__(self) -> str:
        return (
            f"<FlightRecorder {self.node} retained={len(self._ring)}"
            f"/{self.capacity} recorded={self.recorded}>"
        )


def _derive_node(fields: Mapping[str, Any]) -> str:
    """Which node's ring an event belongs to, from its own fields.

    Priority: an explicit ``node`` field; then instance names that embed
    the node id as their first dot-separated component (``owner`` on
    breakers — ``hall.base`` —, ``table`` on lease tables —
    ``robot.extensions`` —, ``agent``/``client`` on renewal agents and
    resilient clients); then the message ``source`` on injected faults.
    Events naming nothing land on the shared :data:`WORLD` ring.
    """
    node = fields.get("node")
    if node:
        return str(node)
    for key in ("owner", "table", "agent", "client"):
        value = fields.get(key)
        if value:
            return str(value).split(".", 1)[0]
    source = fields.get("source")
    if source:
        return str(source)
    return WORLD


class FlightRecorderHub:
    """All nodes' flight recorders, fed by the metrics registry.

    Attach a hub to a :class:`~repro.telemetry.registry.MetricsRegistry`
    (``MetricsRegistry(flight=hub)`` or ``registry.flight = hub``) and
    every lifecycle event the registry records is also routed to the
    ring of the node it names.  ``platform.enable_telemetry()`` does the
    wiring automatically.
    """

    def __init__(
        self,
        clock: Clock | None = None,
        capacity: int = DEFAULT_CAPACITY,
        dump_dir: Union[str, Path, None] = None,
    ):
        self.clock = clock or SystemClock()
        self.capacity = capacity
        #: When set, black-box events (:data:`DUMP_KINDS`) dump the
        #: affected node's ring to ``<dump_dir>/flight-<node>.jsonl``.
        self.dump_dir = Path(dump_dir) if dump_dir is not None else None
        self._recorders: dict[str, FlightRecorder] = {}
        self.auto_dumps = 0

    # -- recording ---------------------------------------------------------------

    def record(
        self,
        kind: str,
        fields: Mapping[str, Any],
        time: float | None = None,
    ) -> FlightEvent:
        """Route one lifecycle event to its node's ring.

        The trace/span stamp prefers ids already present in ``fields``
        (e.g. a fault stamped from the faulted message's wire context)
        and falls back to the ambient span context.
        """
        trace_id = fields.get("trace_id")
        span_id = fields.get("span_id")
        if trace_id is None:
            context = runtime.current_context()
            if context is not None:
                trace_id = context.trace_id
                span_id = context.span_id
        event = self.recorder(_derive_node(fields)).record(
            kind,
            self.clock.now() if time is None else time,
            fields,
            trace_id=trace_id,
            span_id=span_id,
        )
        if kind in DUMP_KINDS and self.dump_dir is not None:
            self._auto_dump(event.node)
        return event

    # -- access ------------------------------------------------------------------

    def recorder(self, node: str) -> FlightRecorder:
        """The ring for ``node`` (created on first use)."""
        recorder = self._recorders.get(node)
        if recorder is None:
            recorder = self._recorders[node] = FlightRecorder(node, self.capacity)
        return recorder

    def nodes(self) -> list[str]:
        """Node ids with at least one recorded event, sorted."""
        return sorted(self._recorders)

    def events(self, node: str | None = None) -> list[FlightEvent]:
        """Retained events of one node, or of every node (by node, seq)."""
        if node is not None:
            return self.recorder(node).events()
        out: list[FlightEvent] = []
        for node_id in self.nodes():
            out.extend(self._recorders[node_id].events())
        return out

    def to_records(self) -> list[dict[str, Any]]:
        """Every retained event across all rings, exportable form."""
        return [event.to_record() for event in self.events()]

    # -- dumps -------------------------------------------------------------------

    def dump(
        self, destination: Union[str, Path, IO[str]], node: str | None = None
    ) -> int:
        """Write retained events (one node's, or everyone's) as JSONL.

        Returns the number of records written.  Accepts a path or an
        open text handle, like :func:`~repro.telemetry.export.write_jsonl`.
        """
        records = self.to_records() if node is None else self.recorder(node).to_records()
        if hasattr(destination, "write"):
            for record in records:
                destination.write(json.dumps(record, sort_keys=True) + "\n")
        else:
            path = Path(destination)
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(path, "w", encoding="utf-8") as handle:
                for record in records:
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)

    def dump_all(self, directory: Union[str, Path]) -> list[Path]:
        """Dump each node's ring to ``<directory>/flight-<node>.jsonl``."""
        directory = Path(directory)
        paths = []
        for node in self.nodes():
            path = directory / f"flight-{node}.jsonl"
            self.dump(path, node=node)
            paths.append(path)
        return paths

    def _auto_dump(self, node: str) -> None:
        try:
            self.dump(self.dump_dir / f"flight-{node}.jsonl", node=node)
            self.auto_dumps += 1
        except OSError:  # pragma: no cover - a full disk must not kill the run
            pass

    def __repr__(self) -> str:
        total = sum(len(r) for r in self._recorders.values())
        return f"<FlightRecorderHub nodes={len(self._recorders)} retained={total}>"


def read_flight_jsonl(source: Union[str, Path, IO[str]]) -> list[FlightEvent]:
    """Load one node's flight dump back into events (malformed lines skipped)."""
    if hasattr(source, "read"):
        lines = source.read().splitlines()
    else:
        lines = Path(source).read_text(encoding="utf-8").splitlines()
    events: list[FlightEvent] = []
    for line in lines:
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if record.get("type") == "flight":
            events.append(FlightEvent.from_record(record))
    return events


def merge_records(sources: Iterable[Iterable[Mapping[str, Any]]]) -> list[FlightEvent]:
    """Rebuild events from several record iterables (one per dump file)."""
    out: list[FlightEvent] = []
    for records in sources:
        for record in records:
            if record.get("type") == "flight":
                out.append(FlightEvent.from_record(record))
    return out
