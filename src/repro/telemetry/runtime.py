"""The process-global recorder the instrumented platform reports to.

Call sites across the stack (advice dispatch, transport, MIDAS, leases,
tuple spaces) never hold a registry directly; they read the one installed
here.  By default nothing is installed and every operation hits
:class:`NullRecorder` — empty methods, so an uninstrumented run pays only
an attribute read per telemetry point.

The *hot* call site — PROSE advice dispatch — cannot even afford a
function call when telemetry is off, so the installed recorder also lives
in a one-element list (:func:`cell`).  Dispatch closures capture that
list once at weave time and test ``cell[0] is None`` per interception,
exactly like the advice cells of :mod:`repro.aop.hooks`.

Install a registry with :func:`install` (or the :func:`recording` context
manager); :func:`reset` returns to the no-op default.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from repro.telemetry.spans import (  # noqa: F401 - re-exported for call sites
    NULL_SPAN,
    Span,
    SpanContext,
    activate,
    activate_wire,
    current_context,
    current_wire,
    deactivate,
)


class Recorder:
    """The interface instrumentation reports to.  All methods no-ops here.

    :class:`~repro.telemetry.registry.MetricsRegistry` is the real
    implementation; this base doubles as the null recorder so that a
    custom recorder only overrides what it cares about.
    """

    #: Dispatch closures branch on this (via :func:`cell`) before paying
    #: for timing; custom recorders should leave it True.
    enabled = False

    def count(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        """Increment the counter ``name`` with ``labels``."""

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set the gauge ``name`` with ``labels``."""

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record ``value`` into the histogram ``name`` with ``labels``."""

    def event(self, name: str, **fields: Any) -> None:
        """Record a timestamped lifecycle event."""

    def start_span(
        self, name: str, parent: Any = ..., **attrs: Any
    ) -> Any:
        """Start a span (ended by the caller).  Returns :data:`NULL_SPAN` here."""
        return NULL_SPAN

    def span(self, name: str, **attrs: Any) -> Any:
        """A span for ``with`` use.  Returns :data:`NULL_SPAN` here."""
        return NULL_SPAN


class NullRecorder(Recorder):
    """Explicit name for the default do-nothing recorder."""


_NULL = NullRecorder()

#: The hot-path cell: ``[None]`` while disabled, ``[recorder]`` otherwise.
_cell: list[Recorder | None] = [None]


def cell() -> list[Recorder | None]:
    """The one-element recorder cell (captured by dispatch closures)."""
    return _cell


def get_recorder() -> Recorder:
    """The installed recorder, or the shared null recorder."""
    recorder = _cell[0]
    return _NULL if recorder is None else recorder


def enabled() -> bool:
    """True while a real recorder is installed."""
    return _cell[0] is not None


def install(recorder: Recorder | None) -> Recorder | None:
    """Install ``recorder`` process-wide; returns the previous one (or None).

    Passing None uninstalls (same as :func:`reset`).
    """
    previous = _cell[0]
    _cell[0] = recorder
    return previous


def reset() -> None:
    """Return to the default no-op recorder."""
    _cell[0] = None


@contextmanager
def recording(recorder: Recorder) -> Iterator[Recorder]:
    """Scope ``recorder`` as the global recorder for a ``with`` block."""
    previous = install(recorder)
    try:
        yield recorder
    finally:
        install(previous)
