"""The join-point profiler: where does woven time actually go?

PR 1's ``prose.dispatch`` histogram answers "how expensive is dispatch at
this join point" — but a join point can host advice from several
extensions, and a slow dispatch is useless to debug without knowing
*which* extension burned the time and *which request* it burned it on.
The :class:`JoinPointProfiler` fills both gaps:

- per-``(joinpoint, extension)`` latency accounting (count, total,
  min/max, full histogram) measured around each advice callback;
- an *exemplar* trace id per entry — the trace that was ambient during
  the slowest observed call — linking the worst dispatch straight to its
  causal timeline;
- aggregate weave-cost accounting fed by the VM (time spent weaving and
  unweaving, per operation), so (de)activation cost is visible next to
  per-call cost — the trade-off the paper's hook-cost experiments and
  the SWAP-mode ablation are about.

Attach one to a VM (``vm.profiler = profiler``, or platform-wide with
``platform.enable_profiler()``) *before* aspects are inserted: the
profiler wraps advice callbacks at weave time, between the sandbox and
the containment barrier, so containment still sees (and may suppress)
advice failures while the profiler still observes their duration.

``python -m repro telemetry profile`` runs the demo scenario under a
profiler and renders :meth:`JoinPointProfiler.report`.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable

from repro.telemetry import runtime
from repro.telemetry.metrics import DEFAULT_BUCKETS, Histogram, label_key


class ProfileEntry:
    """Latency accounting for one (joinpoint, extension) pair."""

    __slots__ = (
        "joinpoint",
        "extension",
        "count",
        "total",
        "minimum",
        "maximum",
        "errors",
        "histogram",
        "exemplar_trace",
        "exemplar_span",
    )

    def __init__(self, joinpoint: str, extension: str):
        self.joinpoint = joinpoint
        self.extension = extension
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = 0.0
        #: Calls that ended in an exception escaping the advice.
        self.errors = 0
        self.histogram = Histogram(
            "profile.advice_seconds",
            label_key({"joinpoint": joinpoint, "extension": extension}),
            DEFAULT_BUCKETS,
        )
        #: Trace/span ambient during the slowest observed call, if any —
        #: the handle that links this entry back to a causal timeline.
        self.exemplar_trace: str | None = None
        self.exemplar_span: str | None = None

    def observe(self, seconds: float, failed: bool) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.minimum:
            self.minimum = seconds
        if failed:
            self.errors += 1
        self.histogram.observe(seconds)
        if seconds >= self.maximum:
            self.maximum = seconds
            context = runtime.current_context()
            if context is not None:
                self.exemplar_trace = context.trace_id
                self.exemplar_span = context.span_id

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_record(self) -> dict[str, Any]:
        """Exportable (JSON) form of this entry."""
        return {
            "type": "profile",
            "joinpoint": self.joinpoint,
            "extension": self.extension,
            "count": self.count,
            "errors": self.errors,
            "total_seconds": self.total,
            "mean_seconds": self.mean,
            "min_seconds": self.minimum if self.count else None,
            "max_seconds": self.maximum if self.count else None,
            "p50_seconds": self.histogram.quantile(0.5),
            "p99_seconds": self.histogram.quantile(0.99),
            "exemplar_trace": self.exemplar_trace,
            "exemplar_span": self.exemplar_span,
        }

    def __repr__(self) -> str:
        return (
            f"<ProfileEntry {self.joinpoint} [{self.extension}] "
            f"n={self.count} total={self.total * 1e3:.3f}ms>"
        )


class WeaveCost:
    """Aggregate (de)activation cost for one VM and operation."""

    __slots__ = ("vm", "operation", "count", "total")

    def __init__(self, vm: str, operation: str):
        self.vm = vm
        self.operation = operation
        self.count = 0
        self.total = 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_record(self) -> dict[str, Any]:
        return {
            "type": "weave_cost",
            "vm": self.vm,
            "operation": self.operation,
            "count": self.count,
            "total_seconds": self.total,
            "mean_seconds": self.mean,
        }


def _advice_extension(advice: Any) -> str:
    """The extension label for an advice: its aspect type, else its name.

    The aspect *type* (``CallLogging``) is the extension identity the
    operator knows; ``aspect.name`` carries a fresh-id suffix and the
    advice name is just the callback method.
    """
    aspect = getattr(advice, "aspect", None)
    if aspect is not None:
        return type(aspect).__name__
    name = getattr(advice, "name", None)
    return str(name) if name else "<anonymous>"


def _joinpoint_label(ctx: Any) -> str:
    jp = ctx.joinpoint
    return f"{jp.cls.__name__}.{jp.member}"


class JoinPointProfiler:
    """Per-(joinpoint, extension) advice latency + VM weave-cost profiler."""

    def __init__(self) -> None:
        self._entries: dict[tuple[str, str], ProfileEntry] = {}
        self._weaves: dict[tuple[str, str], WeaveCost] = {}

    # -- weaving-side hooks ------------------------------------------------------

    def wrap(self, advice: Any, callback: Callable[..., Any]) -> Callable[..., Any]:
        """Wrap one advice callback with latency measurement.

        Called by :meth:`ProseVM.insert` at weave time.  The extension
        label is resolved once here; the join-point label per call (one
        advice can be woven at many join points).
        """
        extension = _advice_extension(advice)
        entries = self._entries

        def profiled(ctx: Any) -> Any:
            start = perf_counter()
            failed = True
            try:
                result = callback(ctx)
                failed = False
                return result
            finally:
                seconds = perf_counter() - start
                key = (_joinpoint_label(ctx), extension)
                entry = entries.get(key)
                if entry is None:
                    entry = entries[key] = ProfileEntry(*key)
                entry.observe(seconds, failed)

        profiled.__prose_profiled__ = callback  # type: ignore[attr-defined]
        return profiled

    def record_weave(self, vm: str, operation: str, seconds: float) -> None:
        """Account one weave/unweave operation's cost (called by the VM)."""
        key = (vm, operation)
        cost = self._weaves.get(key)
        if cost is None:
            cost = self._weaves[key] = WeaveCost(vm, operation)
        cost.count += 1
        cost.total += seconds

    # -- results -----------------------------------------------------------------

    def entries(self) -> list[ProfileEntry]:
        """All entries, hottest (largest total time) first."""
        return sorted(
            self._entries.values(), key=lambda e: e.total, reverse=True
        )

    def entry(self, joinpoint: str, extension: str) -> ProfileEntry | None:
        """The entry for one (joinpoint, extension) pair, if it ever ran."""
        return self._entries.get((joinpoint, extension))

    def weave_costs(self) -> list[WeaveCost]:
        """Weave-cost aggregates, sorted by (vm, operation)."""
        return [self._weaves[key] for key in sorted(self._weaves)]

    def to_records(self) -> list[dict[str, Any]]:
        """Exportable (JSONL-ready) form of all entries and weave costs."""
        records: list[dict[str, Any]] = [e.to_record() for e in self.entries()]
        records.extend(c.to_record() for c in self.weave_costs())
        return records

    def report(self, limit: int | None = None) -> str:
        """A human-readable profile table, hottest entries first."""
        lines = ["join-point profile (hottest first)", ""]
        entries = self.entries()
        if limit is not None:
            entries = entries[:limit]
        if not entries:
            lines.append("  (no advice dispatches profiled)")
        else:
            header = (
                f"  {'joinpoint':<32} {'extension':<20} {'calls':>7} "
                f"{'mean':>10} {'max':>10} {'errors':>7}  exemplar"
            )
            lines.append(header)
            lines.append("  " + "-" * (len(header) - 2))
            for entry in entries:
                exemplar = entry.exemplar_trace or "-"
                lines.append(
                    f"  {entry.joinpoint:<32} {entry.extension:<20} "
                    f"{entry.count:>7} {entry.mean * 1e6:>8.1f}µs "
                    f"{entry.maximum * 1e6:>8.1f}µs {entry.errors:>7}  {exemplar}"
                )
        costs = self.weave_costs()
        if costs:
            lines.append("")
            lines.append("weave cost")
            for cost in costs:
                lines.append(
                    f"  {cost.vm:<12} {cost.operation:<12} n={cost.count:<4} "
                    f"total={cost.total * 1e3:.3f}ms mean={cost.mean * 1e6:.1f}µs"
                )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<JoinPointProfiler entries={len(self._entries)} "
            f"weaves={len(self._weaves)}>"
        )
