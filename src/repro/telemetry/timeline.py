"""Causal timelines: per-node flight rings merged into one history.

Each node's flight recorder totally orders *its own* events (the per-node
sequence number).  A :class:`Timeline` merges those per-node streams into
one happens-before-consistent linearization of the whole world:

- Events are ordered by ``(time, node, seq)``.  Under the deterministic
  simulator every timestamp is virtual time from one shared clock, and a
  message is always delivered strictly after it was sent — so time order
  *is* a valid happens-before linearization (a send always precedes its
  receive), and ``(node, seq)`` breaks same-instant ties deterministically
  while preserving each node's own order.
- Events are additionally indexed by trace id, so a cross-node causal
  chain (offer → install → quarantine → health report) can be pulled out
  as one keyed sub-history.

Timelines are built from a live hub (:meth:`Timeline.from_hub`), from
exported records (:meth:`Timeline.from_records` — e.g. several per-node
JSONL dumps collected after a crash), or straight from events.  Querying
goes through :class:`~repro.telemetry.query.TimelineQuery` — start with
:meth:`Timeline.events`.
"""

from __future__ import annotations

from pathlib import Path
from typing import IO, Any, Iterable, Iterator, Mapping, Union

from repro.telemetry.query import TimelineQuery
from repro.telemetry.recorder import FlightEvent, FlightRecorderHub, read_flight_jsonl


def _order_key(event: FlightEvent) -> tuple[float, str, int]:
    return (event.time, event.node, event.seq)


class Timeline:
    """A merged, happens-before-ordered history of flight events."""

    def __init__(self, events: Iterable[FlightEvent] = ()):
        self._events: list[FlightEvent] = sorted(events, key=_order_key)
        #: Position of each event in the merged order (identity-keyed:
        #: FlightEvent is frozen but two nodes can record equal payloads).
        self._index: dict[int, int] = {
            id(event): position for position, event in enumerate(self._events)
        }
        self._by_trace: dict[str, list[FlightEvent]] = {}
        for event in self._events:
            if event.trace_id is not None:
                self._by_trace.setdefault(event.trace_id, []).append(event)

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_hub(cls, hub: FlightRecorderHub) -> "Timeline":
        """Merge every ring of a live hub."""
        return cls(hub.events())

    @classmethod
    def from_records(cls, records: Iterable[Mapping[str, Any]]) -> "Timeline":
        """Rebuild a timeline from exported records (non-flight records skipped)."""
        return cls(
            FlightEvent.from_record(record)
            for record in records
            if record.get("type") == "flight"
        )

    @classmethod
    def from_dumps(cls, sources: Iterable[Union[str, Path, IO[str]]]) -> "Timeline":
        """Merge several per-node JSONL dump files into one timeline."""
        events: list[FlightEvent] = []
        for source in sources:
            events.extend(read_flight_jsonl(source))
        return cls(events)

    # -- queries -----------------------------------------------------------------

    def events(self, kind: str | None = None) -> TimelineQuery:
        """The root query: every event, optionally filtered by kind."""
        query = TimelineQuery(self, tuple(self._events))
        return query.kind(kind) if kind is not None else query

    def trace(self, trace_id: str) -> TimelineQuery:
        """Every event stamped with ``trace_id``, in merged order."""
        return TimelineQuery(self, tuple(self._by_trace.get(trace_id, ())))

    def traces(self) -> dict[str, list[FlightEvent]]:
        """Trace-stamped events grouped by trace id, each in merged order."""
        return {trace: list(events) for trace, events in self._by_trace.items()}

    def nodes(self) -> list[str]:
        """Node ids present on the timeline, sorted."""
        return sorted({event.node for event in self._events})

    def kinds(self) -> list[str]:
        """Event kinds present on the timeline, sorted."""
        return sorted({event.kind for event in self._events})

    def position(self, event: FlightEvent) -> int:
        """The event's position in the merged order (ValueError if foreign)."""
        try:
            return self._index[id(event)]
        except KeyError:
            raise ValueError(f"{event!r} is not on this timeline") from None

    # -- rendering ---------------------------------------------------------------

    def render(self, limit: int | None = None) -> str:
        """A human-readable dump of the merged order (for debugging)."""
        events = self._events if limit is None else self._events[-limit:]
        lines = []
        for event in events:
            trace = f"  [{event.trace_id}]" if event.trace_id else ""
            detail = ", ".join(
                f"{key}={value}"
                for key, value in event.fields.items()
                if key not in ("trace_id", "span_id")
            )
            lines.append(
                f"{event.time:10.3f}  {event.node:<10} #{event.seq:<4} "
                f"{event.kind:<28} {detail}{trace}"
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FlightEvent]:
        return iter(self._events)

    def __repr__(self) -> str:
        return (
            f"<Timeline events={len(self._events)} nodes={len(self.nodes())} "
            f"traces={len(self._by_trace)}>"
        )
