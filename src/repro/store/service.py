"""The store as a network service.

"We have developed several such applications by making the base station
itself available as a Jini service.  One can, thus, connect to the base
station and query the database that stores all movements performed by
robots being monitored by the base station." (§4.5)

Operations:

- ``store.append`` — one-way batch append (what the monitoring extension
  posts to);
- ``store.query`` — per-robot action list with filters;
- ``store.robots`` — robots known to this hall's database.
"""

from __future__ import annotations

from typing import Any

from repro.discovery.client import DiscoveryClient
from repro.discovery.service import ServiceItem
from repro.net.transport import Transport
from repro.store.database import MovementRecord, MovementStore

#: The interface name the store advertises under.
STORE_INTERFACE = "midas.MovementStore"

APPEND = "store.append"
QUERY = "store.query"
ROBOTS = "store.robots"


class StoreService:
    """Exposes a :class:`MovementStore` over the transport layer."""

    def __init__(self, store: MovementStore, transport: Transport):
        self.store = store
        self.transport = transport
        transport.register(APPEND, self._serve_append)
        transport.register(QUERY, self._serve_query)
        transport.register(ROBOTS, self._serve_robots)

    def advertise(self, discovery: DiscoveryClient) -> None:
        """Register the store with the discovery layer."""
        discovery.register(
            ServiceItem(
                STORE_INTERFACE,
                self.transport.node.node_id,
                {"store": self.store.name},
            )
        )

    def _serve_append(self, sender: str, body: dict[str, Any]) -> dict[str, Any]:
        records = body["records"]
        for record in records:
            if not isinstance(record, MovementRecord):
                raise TypeError(f"expected MovementRecord, got {type(record).__name__}")
        count = self.store.append_many(records)
        return {"stored": count}

    def _serve_query(self, sender: str, body: dict[str, Any]) -> dict[str, Any]:
        records = self.store.actions_of(
            body["robot_id"],
            since=body.get("since"),
            until=body.get("until"),
            device_id=body.get("device_id"),
            command=body.get("command"),
        )
        return {"records": records}

    def _serve_robots(self, sender: str, body: Any) -> dict[str, Any]:
        return {"robots": self.store.robots()}

    def __repr__(self) -> str:
        return f"<StoreService {self.store.name} on {self.transport.node.node_id}>"
