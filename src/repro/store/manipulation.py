"""Manipulating recorded movement sequences (the Fig. 6 right panel).

The paper lists three families of manipulations of a selected sequence:

- **remote replication** — feed the movements to an identical robot, and
  "it is also possible that the replication of the work takes place at a
  scale different from what is being done": :meth:`MovementSequence.scaled`;
- **simulation** — "replay a part of the sequence of movements", and for
  multi-robot failures "replay the sequence of movements of all robots at
  the right relative time": :class:`ReplaySession`;
- **control** — derive forbidden movements (handled by the control
  extension; sequences expose the reachable envelope via
  :meth:`MovementSequence.rotation_span`).
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import QueryError
from repro.robot.rcx import HardwareMacro, RCXBrick
from repro.sim.kernel import Simulator
from repro.store.database import MovementRecord, MovementStore
from repro.util.signal import Signal

#: Commands whose (single, numeric) argument scales with replication scale.
_SCALABLE_COMMANDS = frozenset({"rotate"})


def plotter_port_map(records: list[MovementRecord]) -> dict[str, str]:
    """Derive the device→port mapping for plotter sequences.

    Plotter motors are named ``<robot>.motor.x|y|pen`` and live on ports
    A, B and C respectively (see :func:`repro.robot.plotter.build_plotter`).
    """
    suffix_to_port = {"motor.x": "A", "motor.y": "B", "motor.pen": "C"}
    mapping: dict[str, str] = {}
    for record in records:
        for suffix, port in suffix_to_port.items():
            if record.device_id.endswith(suffix):
                mapping[record.device_id] = port
    return mapping


class MovementSequence:
    """An ordered selection of movement records."""

    def __init__(self, records: list[MovementRecord]):
        self.records = sorted(records, key=lambda r: r.time)

    @classmethod
    def from_store(cls, store: MovementStore, robot_id: str, **filters) -> "MovementSequence":
        """Select one robot's actions from the store (see ``actions_of``)."""
        return cls(store.actions_of(robot_id, **filters))

    # -- measurements -----------------------------------------------------------

    def duration(self) -> float:
        """Seconds between the first and last action."""
        if not self.records:
            return 0.0
        return self.records[-1].time - self.records[0].time

    def start_time(self) -> float:
        """Time of the first action (0 for an empty sequence)."""
        return self.records[0].time if self.records else 0.0

    def rotation_span(self, device_id: str) -> float:
        """Net shaft rotation a device accumulates over the sequence."""
        return sum(
            float(record.args[0])
            for record in self.records
            if record.device_id == device_id
            and record.command in _SCALABLE_COMMANDS
            and record.args
        )

    # -- manipulations ------------------------------------------------------------

    def scaled(self, factor: float) -> "MovementSequence":
        """Amplify or reduce the movements by ``factor``."""
        if factor <= 0:
            raise QueryError(f"scale factor must be positive, got {factor}")
        scaled = []
        for record in self.records:
            if record.command in _SCALABLE_COMMANDS and record.args:
                args = (float(record.args[0]) * factor, *record.args[1:])
            else:
                args = record.args
            scaled.append(
                MovementRecord(
                    record.robot_id,
                    record.device_id,
                    record.command,
                    args,
                    record.time,
                    record.duration,
                )
            )
        return MovementSequence(scaled)

    def slice(self, since: float, until: float) -> "MovementSequence":
        """The sub-sequence with action times in ``[since, until]``."""
        if until < since:
            raise QueryError(f"empty time window [{since}, {until}]")
        return MovementSequence(
            [record for record in self.records if since <= record.time <= until]
        )

    def to_macros(
        self, port_map: Mapping[str, str]
    ) -> list[tuple[float, HardwareMacro]]:
        """(relative time, macro) pairs ready for replay.

        Records whose device is not in ``port_map`` are skipped (e.g. a
        sensor reading in a motor replay).
        """
        start = self.start_time()
        out = []
        for record in self.records:
            port = port_map.get(record.device_id)
            if port is None:
                continue
            macro = HardwareMacro(port, record.command, record.args, record.duration)
            out.append((record.time - start, macro))
        return out

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return f"<MovementSequence n={len(self.records)} dur={self.duration():.2f}s>"


class ReplaySession:
    """Replays one or more sequences onto target hardware, time-aligned.

    All sequences share a common origin (the earliest start time across
    them), so the *relative* timing between robots is reproduced — the
    paper's multi-robot failure-reproduction scenario.  ``time_scale``
    stretches (>1) or compresses (<1) replay time.
    """

    def __init__(self, simulator: Simulator, time_scale: float = 1.0):
        if time_scale <= 0:
            raise QueryError(f"time scale must be positive, got {time_scale}")
        self.simulator = simulator
        self.time_scale = time_scale
        #: Fires with (self,) when every scheduled macro has run.
        self.on_done = Signal("replay.on_done")
        self._plan: list[tuple[float, RCXBrick, HardwareMacro]] = []
        self._origin: float | None = None
        self.macros_replayed = 0
        self._remaining = 0

    def add(
        self,
        sequence: MovementSequence,
        rcx: RCXBrick,
        port_map: Mapping[str, str] | None = None,
    ) -> None:
        """Queue ``sequence`` for replay onto ``rcx``."""
        if not sequence.records:
            return
        mapping = port_map if port_map is not None else plotter_port_map(sequence.records)
        start = sequence.start_time()
        if self._origin is None or start < self._origin:
            self._origin = start
        for offset, macro in sequence.to_macros(mapping):
            # Store absolute source time so cross-sequence alignment survives.
            self._plan.append((start + offset, rcx, macro))

    def start(self) -> int:
        """Schedule every macro; returns the number scheduled."""
        if self._origin is None:
            self.on_done.fire(self)
            return 0
        self._remaining = len(self._plan)
        for source_time, rcx, macro in self._plan:
            delay = (source_time - self._origin) * self.time_scale
            self.simulator.schedule(delay, self._replay_one, rcx, macro)
        return len(self._plan)

    def _replay_one(self, rcx: RCXBrick, macro: HardwareMacro) -> None:
        rcx.execute(macro)
        self.macros_replayed += 1
        self._remaining -= 1
        if self._remaining == 0:
            self.on_done.fire(self)

    def __repr__(self) -> str:
        return f"<ReplaySession planned={len(self._plan)} replayed={self.macros_replayed}>"
