"""The movement store.

An embedded append-only database of hardware actions.  Records are
indexed by robot for the Fig. 6 "list of all the motor actions ever
executed by the robot named robot:1:1" query, and time-ordered within a
robot so selections replay in the right relative order.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.errors import QueryError, StoreError
from repro.util.ids import fresh_id


@dataclass(frozen=True)
class MovementRecord:
    """One hardware action performed by one robot."""

    robot_id: str
    device_id: str
    command: str
    args: tuple[Any, ...]
    time: float  # when the command was issued (robot-side clock)
    duration: float = 0.0
    record_id: str = field(default_factory=lambda: fresh_id("mov"))

    def describe(self) -> str:
        """Human-readable one-liner (the Fig. 6 action-list row)."""
        args = ", ".join(repr(a) for a in self.args)
        return f"[{self.time:9.3f}] {self.robot_id} {self.device_id}.{self.command}({args})"


class MovementStore:
    """Append-only movement database with per-robot indexes."""

    def __init__(self, name: str = "hall-db"):
        self.name = name
        self._records: list[MovementRecord] = []
        self._by_robot: dict[str, list[MovementRecord]] = {}

    # -- writes ------------------------------------------------------------------

    def append(self, record: MovementRecord) -> MovementRecord:
        """Store one record (records arrive in robot-time order per robot)."""
        self._records.append(record)
        self._by_robot.setdefault(record.robot_id, []).append(record)
        return record

    def append_many(self, records: Iterable[MovementRecord]) -> int:
        """Store a batch (the monitoring extension flushes in batches)."""
        count = 0
        for record in records:
            self.append(record)
            count += 1
        return count

    # -- queries --------------------------------------------------------------------

    def robots(self) -> list[str]:
        """All robot ids that ever logged an action."""
        return sorted(self._by_robot)

    def actions_of(
        self,
        robot_id: str,
        since: float | None = None,
        until: float | None = None,
        device_id: str | None = None,
        command: str | None = None,
    ) -> list[MovementRecord]:
        """A robot's actions, optionally filtered by time window and shape."""
        if since is not None and until is not None and until < since:
            raise QueryError(f"empty time window [{since}, {until}]")
        records = self._by_robot.get(robot_id, [])
        out = []
        for record in records:
            if since is not None and record.time < since:
                continue
            if until is not None and record.time > until:
                continue
            if device_id is not None and record.device_id != device_id:
                continue
            if command is not None and record.command != command:
                continue
            out.append(record)
        return out

    def all_records(self) -> list[MovementRecord]:
        """Every record, in arrival order."""
        return list(self._records)

    def count(self, robot_id: str | None = None) -> int:
        """Total records, or records of one robot."""
        if robot_id is None:
            return len(self._records)
        return len(self._by_robot.get(robot_id, []))

    def time_span(self, robot_id: str) -> tuple[float, float] | None:
        """(first, last) action time of a robot, or None."""
        records = self._by_robot.get(robot_id)
        if not records:
            return None
        times = [record.time for record in records]
        return (min(times), max(times))

    def clear(self) -> None:
        """Drop everything (tests)."""
        self._records.clear()
        self._by_robot.clear()

    # -- durability -------------------------------------------------------------

    def snapshot(self, path: str | Path) -> int:
        """Write all records to ``path`` as JSON lines; returns the count.

        Args are JSON-encoded; non-JSON argument values are stringified
        (movement records carry numbers in practice).
        """
        path = Path(path)
        with path.open("w", encoding="utf-8") as fh:
            for record in self._records:
                fh.write(json.dumps(self._encode(record)) + "\n")
        return len(self._records)

    @classmethod
    def load(cls, path: str | Path, name: str = "hall-db") -> "MovementStore":
        """Rebuild a store from a :meth:`snapshot` file."""
        store = cls(name=name)
        path = Path(path)
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except OSError as exc:
            raise StoreError(f"cannot read snapshot {path}: {exc}") from exc
        for line_number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                raw = json.loads(line)
                store.append(
                    MovementRecord(
                        raw["robot_id"],
                        raw["device_id"],
                        raw["command"],
                        tuple(raw["args"]),
                        raw["time"],
                        raw.get("duration", 0.0),
                        raw["record_id"],
                    )
                )
            except (KeyError, ValueError, TypeError) as exc:
                raise StoreError(
                    f"corrupt snapshot {path} at line {line_number}: {exc}"
                ) from exc
        return store

    @staticmethod
    def _encode(record: MovementRecord) -> dict[str, Any]:
        def jsonable(value: Any) -> Any:
            if isinstance(value, (int, float, str, bool)) or value is None:
                return value
            return repr(value)

        return {
            "robot_id": record.robot_id,
            "device_id": record.device_id,
            "command": record.command,
            "args": [jsonable(a) for a in record.args],
            "time": record.time,
            "duration": record.duration,
            "record_id": record.record_id,
        }

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        return f"<MovementStore {self.name} records={len(self._records)}>"
