"""The base-station movement database and its clients.

The monitoring extension ships every motor action to the base station,
where it is "stored in a database associated to the production hall"
(§3.3, Fig. 3b).  Fig. 6 shows a client that lists a robot's actions and
manipulates selections — replication at a different scale, replay at the
right relative times, movement control.

- :class:`~repro.store.database.MovementStore` — the append/query store;
- :class:`~repro.store.service.StoreService` — exposes it over the
  network (``store.append`` / ``store.query``) and via discovery;
- :mod:`repro.store.manipulation` — selection, scaling, and replay of
  movement sequences (including time-aligned multi-robot replay).
"""

from repro.store.client import HallClient
from repro.store.database import MovementRecord, MovementStore
from repro.store.manipulation import MovementSequence, ReplaySession
from repro.store.service import StoreService

__all__ = [
    "HallClient",
    "MovementRecord",
    "MovementSequence",
    "MovementStore",
    "ReplaySession",
    "StoreService",
]
