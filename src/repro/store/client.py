"""The Fig. 6 client application, as a library façade.

"One can, thus, connect to the base station and query the database that
stores all movements performed by robots being monitored by the base
station."  The screenshot shows an action list per robot (left panel)
and manipulations of a selection (right panel).

:class:`HallClient` is that tool: it finds movement stores through
discovery, lists robots and their actions, and turns selections into
replications and replays using :mod:`repro.store.manipulation`.
"""

from __future__ import annotations

from typing import Callable

from repro.discovery.client import DiscoveryClient
from repro.discovery.service import ServiceTemplate
from repro.net.transport import Transport
from repro.robot.rcx import RCXBrick
from repro.sim.kernel import Simulator
from repro.store.database import MovementRecord
from repro.store.manipulation import MovementSequence, ReplaySession
from repro.store.service import QUERY, ROBOTS, STORE_INTERFACE


class HallClient:
    """Connects to hall movement stores and manipulates recorded work."""

    def __init__(
        self,
        transport: Transport,
        simulator: Simulator,
        discovery: DiscoveryClient | None = None,
    ):
        self.transport = transport
        self.simulator = simulator
        self.discovery = discovery

    # -- finding stores -----------------------------------------------------------

    def find_stores(self, on_result: Callable[[list[str]], None]) -> None:
        """Node ids of base stations exporting a movement store."""
        if self.discovery is None:
            on_result([])
            return
        self.discovery.lookup(
            ServiceTemplate(interface=STORE_INTERFACE),
            lambda items: on_result(sorted({item.provider for item in items})),
        )

    # -- the left panel -------------------------------------------------------------

    def list_robots(
        self,
        store_node: str,
        on_result: Callable[[list[str]], None],
        on_error: Callable[[Exception], None] | None = None,
    ) -> None:
        """All robots the hall's database has ever seen.

        A timeout or store fault reaches ``on_error`` when given;
        otherwise the panel simply shows an empty robot list.
        """
        self.transport.request(
            store_node,
            ROBOTS,
            on_reply=lambda body: on_result(body["robots"]),
            on_error=on_error or (lambda exc: on_result([])),
        )

    def action_list(
        self,
        store_node: str,
        robot_id: str,
        on_result: Callable[[list[MovementRecord]], None],
        since: float | None = None,
        until: float | None = None,
        on_error: Callable[[Exception], None] | None = None,
    ) -> None:
        """A robot's recorded actions (optionally a time window).

        As with :meth:`list_robots`, a lost query degrades to an empty
        action list unless the caller supplies ``on_error``.
        """
        self.transport.request(
            store_node,
            QUERY,
            {"robot_id": robot_id, "since": since, "until": until},
            on_reply=lambda body: on_result(body["records"]),
            on_error=on_error or (lambda exc: on_result([])),
        )

    # -- the right panel ---------------------------------------------------------------

    @staticmethod
    def select(records: list[MovementRecord]) -> MovementSequence:
        """Transfer a selection to the manipulation panel."""
        return MovementSequence(records)

    def replicate(
        self,
        selection: MovementSequence,
        target: RCXBrick,
        scale: float = 1.0,
        time_scale: float = 1.0,
    ) -> ReplaySession:
        """Feed the selection to an identical robot, optionally 'at a
        scale different from what is being done by the original'."""
        session = ReplaySession(self.simulator, time_scale=time_scale)
        sequence = selection.scaled(scale) if scale != 1.0 else selection
        session.add(sequence, target)
        session.start()
        return session

    def replay_interaction(
        self,
        selections: list[tuple[MovementSequence, RCXBrick]],
        time_scale: float = 1.0,
    ) -> ReplaySession:
        """Replay several robots "at the right relative time" to
        reproduce an interaction (the paper's failure-analysis case)."""
        session = ReplaySession(self.simulator, time_scale=time_scale)
        for sequence, target in selections:
            session.add(sequence, target)
        session.start()
        return session

    def __repr__(self) -> str:
        return f"<HallClient via {self.transport.node.node_id}>"
