"""Storm worlds: seeded, replayable federated-roaming chaos.

:class:`StormWorld` turns a :class:`~repro.scenarios.spec.StormSpec`
into a running world — 2-4 linked base stations sharing a catalog,
hundreds-to-thousands of :class:`~repro.scenarios.nodes.StormNode`
stubs, a :class:`~repro.scenarios.monitor.InvariantMonitor` ticking
throughout — and schedules the whole storm up front from one seeded RNG:
staggered joins, flash-crowd migration waves, mass revocation, mass
quarantine reports, churn, backbone partition/heal cycles, and a
FaultPlan eating a share of the roaming control traffic.

Every draw comes from ``random.Random(f"storm:{seed}")`` at build time
and the simulator is deterministic, so the same spec replays the same
storm event-for-event — :meth:`StormWorld.run` fingerprints enforce it.
"""

from __future__ import annotations

import random
from itertools import combinations

from repro.core.platform import ProactivePlatform
from repro.extensions.call_logging import CallLogging
from repro.faults.plan import FaultPlan
from repro.midas.base import ROAM_SYNC, ROAMED
from repro.net.geometry import ORIGIN
from repro.net.node import NetworkNode
from repro.net.transport import Transport
from repro.resilience.policy import RetryPolicy
from repro.scenarios.monitor import InvariantMonitor
from repro.scenarios.nodes import StormNode
from repro.scenarios.spec import StormSpec
from repro.sim.timers import PeriodicTimer
from repro.telemetry import MetricsRegistry
from repro.telemetry.health import (
    BurnPair,
    Cause,
    Condition,
    CounterRatioSLI,
    GaugeThresholdSLI,
    HealthPlane,
    RollupRule,
    SLO,
)

#: Dual-home lag (virtual seconds) past which a monitor sample counts
#: against the roam-convergence SLO.  Well under ``grace`` (an
#: *invariant* breach) but above the sub-second healing a healthy
#: ROAMED announcement achieves — so lost announcements burn budget
#: long before they become violations.
ROAM_LAG_BOUND = 2.0


def storm_health_plane(spec: StormSpec) -> HealthPlane:
    """The storm-scaled health plane: roaming SLOs + windowed rollups.

    Burn windows derive from the monitor cadence rather than wall-clock
    SRE defaults: the fast (page) pair needs sustained badness across
    ~10 monitor samples, the slow (ticket) pair across most of the run —
    the same multi-window shape as the classic 5m/1h + 6h/3d pairs,
    compressed to storm time.
    """
    interval = spec.monitor_interval
    horizon = max(spec.total_time, 12 * interval)
    pairs = (
        BurnPair(
            "fast",
            long_window=10 * interval,
            short_window=3 * interval,
            threshold=3.0,
            severity="page",
        ),
        BurnPair(
            "slow",
            long_window=max(min(0.75 * horizon, 60 * interval), 12 * interval),
            short_window=10 * interval,
            threshold=1.0,
            severity="ticket",
        ),
    )
    return HealthPlane(
        slos=[
            SLO(
                "roam-convergence",
                "roaming",
                target=0.9,
                sli=GaugeThresholdSLI("scenarios.roam_lag", ROAM_LAG_BOUND),
                pairs=pairs,
                min_samples=4,
                description=f"dual-home lag <= {ROAM_LAG_BOUND:g}s",
            ),
            SLO(
                "roam-delivery",
                "roaming",
                target=0.9,
                sli=CounterRatioSLI(
                    good=("midas.roam.announced",),
                    bad=("midas.roam.announce_failed",),
                ),
                pairs=pairs,
                min_samples=4,
            ),
        ],
        rules=[
            RollupRule(
                "roam-rate", "midas.roam.*", "rate", window=10 * interval
            ),
            RollupRule(
                "violation-rate",
                "invariants.violations",
                "rate",
                window=10 * interval,
            ),
        ],
        name=f"storm:{spec.name}",
    )


def base_name(index: int) -> str:
    return f"storm-base-{index}"


def ext_name(index: int) -> str:
    return f"storm-ext-{index:02d}"


def node_name(index: int) -> str:
    return f"storm-{index:04d}"


class StormWorld:
    """One built (not yet run) storm; see :func:`repro.scenarios.harness.run_storm`."""

    def __init__(
        self,
        spec: StormSpec,
        registry: MetricsRegistry | None = None,
        dump_dir: str | None = None,
        health: bool = True,
    ):
        spec.validate()
        self.spec = spec
        retry = (
            RetryPolicy(
                max_attempts=spec.announce_attempts,
                initial_backoff=0.5,
                multiplier=2.0,
                max_backoff=3.0,
                jitter=0.3,
            )
            if spec.announce_attempts > 0
            else None
        )
        self.platform = ProactivePlatform(
            seed=spec.seed,
            lease_duration=spec.lease_duration,
            retry_policy=retry,
            roam_sync_interval=spec.roam_sync_interval,
        )
        self.registry = self.platform.enable_telemetry(registry, dump_dir=dump_dir)
        self.simulator = self.platform.simulator
        self.network = self.platform.network
        self.rng = random.Random(f"storm:{spec.seed}")

        # -- bases (auto-wired + peer-linked by the platform) ---------------------
        self.stations = []
        for index in range(spec.bases):
            station = self.platform.create_base_station(base_name(index), ORIGIN)
            for ext in range(spec.catalog_size):
                station.add_extension(
                    ext_name(ext),
                    lambda ext=ext: CallLogging(type_pattern=f"StormTarget{ext}"),
                )
            self.stations.append(station)
        self.station_ids = [station.node_id for station in self.stations]
        self.bases = {
            station.node_id: station.extension_base for station in self.stations
        }

        # -- nodes ----------------------------------------------------------------
        self.storm_nodes: dict[str, StormNode] = {}
        for index in range(spec.nodes):
            node = self.network.attach(NetworkNode(node_name(index), ORIGIN))
            transport = Transport(node, self.simulator)
            node_class = f"storm-class-{index % spec.node_classes}"
            self.storm_nodes[node.node_id] = StormNode(
                index, transport, self.simulator, node_class, spec.registration_lease
            )

        # -- continuous machinery -------------------------------------------------
        self.monitor = InvariantMonitor(
            self.simulator,
            self.bases,
            self.storm_nodes,
            self.registry,
            interval=spec.monitor_interval,
            grace=spec.grace,
        ).start()
        self._sweeper = PeriodicTimer(
            self.simulator, 1.0, self._sweep_nodes, name="storm.sweep"
        ).start()
        #: The storm's health plane: fed by the registry stream (the
        #: monitor's lag gauges, roaming counters), burn-evaluated every
        #: monitor interval.  ``slo.burn`` events auto-dump flight rings
        #: through the same hub invariant violations use.
        self.health: HealthPlane | None = None
        if health:
            self.health = storm_health_plane(spec).attach(self.registry)
            self.health.watch_platform(self.platform)
            self.health.model.declare_subsystem("roaming", "invariants")
            self.health.model.add_probe("invariants", self._invariant_conditions)
            self.health.start(self.simulator, interval=spec.monitor_interval)

        # -- storm accounting -----------------------------------------------------
        self.migrations_planned = 0
        self.churns_planned = 0
        self.revocation_cleared_at: float | None = None
        self._revocation_probe: PeriodicTimer | None = None

        self._install_faults()
        self._plan()

    # -- faults ------------------------------------------------------------------

    def _install_faults(self) -> None:
        spec = self.spec
        plan = FaultPlan()
        rules = False
        if spec.drop_roamed > 0:
            plan.drop(operation=ROAMED, probability=spec.drop_roamed)
            rules = True
        if spec.drop_sync > 0:
            plan.drop(operation=ROAM_SYNC, probability=spec.drop_sync)
            rules = True
        if rules:
            self.platform.install_faults(plan)

    # -- the storm plan ----------------------------------------------------------

    def _at(self, time: float, fn, *args) -> None:
        self.simulator.schedule(time, fn, *args)

    def _plan(self) -> None:
        spec = self.spec
        rng = self.rng
        node_ids = sorted(self.storm_nodes)
        planned_home: dict[str, str] = {}

        # Staggered joins across the join window.
        for position, node_id in enumerate(node_ids):
            base = self.station_ids[rng.randrange(spec.bases)]
            planned_home[node_id] = base
            at = spec.join_window * (position + 1) / len(node_ids)
            self._at(at, self.storm_nodes[node_id].join, base)

        # Churners leave mid-storm and re-join later, maybe elsewhere.
        churners = [n for n in node_ids if rng.random() < spec.churn_fraction]
        self.churns_planned = len(churners)

        # Flash-crowd migration waves.
        migrators = [n for n in node_ids if rng.random() < spec.migrate_fraction]
        if migrators and spec.migrate_waves:
            per_wave = max(1, (len(migrators) + spec.migrate_waves - 1) // spec.migrate_waves)
            for wave in range(spec.migrate_waves):
                wave_time = spec.storm_start + wave * spec.duration / spec.migrate_waves
                for node_id in migrators[wave * per_wave : (wave + 1) * per_wave]:
                    others = [b for b in self.station_ids if b != planned_home[node_id]]
                    target = others[rng.randrange(len(others))]
                    planned_home[node_id] = target
                    self._at(
                        wave_time + rng.uniform(0.0, spec.wave_spread),
                        self.storm_nodes[node_id].migrate,
                        target,
                    )
                    self.migrations_planned += 1

        # Mass revocation: a policy change pulls one extension everywhere.
        if spec.revoke_at is not None:
            self._at(spec.revoke_at, self._revoke_storm)

        # Mass quarantine reports.
        if spec.quarantine_at is not None:
            count = max(1, int(spec.quarantine_fraction * len(node_ids)))
            for node_id in rng.sample(node_ids, min(count, len(node_ids))):
                self._at(
                    spec.quarantine_at + rng.uniform(0.0, 1.0),
                    self.storm_nodes[node_id].report_quarantine,
                    spec.quarantine_extension,
                )

        # Churn: leave during the first half of the storm, return later.
        for node_id in churners:
            away_at = spec.storm_start + rng.uniform(0.0, spec.duration * 0.5)
            back_base = self.station_ids[rng.randrange(spec.bases)]
            planned_home[node_id] = back_base
            self._at(away_at, self.storm_nodes[node_id].leave)
            self._at(away_at + spec.churn_away, self._rejoin, node_id, back_base)

        # Backbone partition/heal cycles (whole-backbone splits).
        for cycle in range(spec.partition_cycles):
            start = spec.storm_start + cycle * (spec.partition_down + spec.partition_gap)
            self._at(start, self._partition_backbone)
            self._at(start + spec.partition_down, self._heal_backbone)

    # -- scheduled actions ---------------------------------------------------------

    def _sweep_nodes(self) -> None:
        now = self.simulator.now
        for node in self.storm_nodes.values():
            node.sweep(now)

    def _rejoin(self, node_id: str, base_id: str) -> None:
        self.storm_nodes[node_id].rejoin(self.network, base_id)

    def _partition_backbone(self) -> None:
        for a, b in combinations(self.station_ids, 2):
            self.network.partition(a, b)
        self.registry.event("storm.partition", node="world")

    def _heal_backbone(self) -> None:
        for a, b in combinations(self.station_ids, 2):
            self.network.heal(a, b)
        self.registry.event("storm.heal", node="world")

    def _revoke_storm(self) -> None:
        spec = self.spec
        name = spec.revoke_extension
        self.registry.event("storm.revocation", node="world", extension=name)
        for base in self.bases.values():
            if name in base.catalog:
                base.catalog.remove(name)
            for (node, ext) in list(base._adapted):
                if ext == name:
                    base.revoke(node, ext, reason="storm-revocation")
        # Revoked copies must be gone once lost revokes had time to lapse.
        self.monitor.expect_revocation(
            name, self.simulator.now + spec.lease_duration + spec.grace
        )
        if self._revocation_probe is None:
            self._revocation_probe = PeriodicTimer(
                self.simulator, 0.5, self._probe_revocation, name="storm.revocation"
            ).start()

    def _probe_revocation(self) -> None:
        name = self.spec.revoke_extension
        for base in self.bases.values():
            if any(ext == name for (_node, ext) in base._adapted):
                return
        for node in self.storm_nodes.values():
            if node.attached and node.holds(name):
                return
        self.revocation_cleared_at = self.simulator.now
        if self._revocation_probe is not None:
            self._revocation_probe.stop()
            self._revocation_probe = None

    def _invariant_conditions(self) -> list[Condition]:
        """Monitor violations become critical health conditions."""
        violations = self.monitor.violations
        if not violations:
            return []
        causes = tuple(
            Cause(
                "invariant.violation",
                f"{v.invariant}:{v.subject}",
                f"t={v.time:.1f}s — {v.detail}",
            )
            for v in violations[:5]
        )
        kinds = sorted({v.invariant for v in violations})
        return [
            Condition(
                subsystem="invariants",
                status="critical",
                summary=(
                    f"{len(violations)} invariant violation(s): "
                    + ", ".join(kinds)
                ),
                cause=Cause(
                    "invariants", "monitor",
                    f"{self.monitor.ticks} ticks", causes=causes,
                ),
            )
        ]

    # -- convenience -------------------------------------------------------------

    def other_base(self, node_id: str) -> str:
        """A deterministic peer base different from the node's home."""
        home = self.storm_nodes[node_id].home
        for base_id in self.station_ids:
            if base_id != home:
                return base_id
        raise ValueError("storm worlds always have at least two bases")

    def homes(self) -> dict[str, list[str]]:
        """node -> bases tracking it right now (from the bases' books)."""
        homes: dict[str, set[str]] = {}
        for base_id, base in self.bases.items():
            for (node, _name) in base._adapted:
                homes.setdefault(node, set()).add(base_id)
        return {node: sorted(tracked) for node, tracked in sorted(homes.items())}

    def run_for(self, seconds: float) -> None:
        self.platform.run_for(seconds)

    def close(self) -> None:
        if self.health is not None:
            self.health.stop()
        self.platform.disable_telemetry()
