"""Deterministic storm-and-soak scenarios for the federated platform.

The scenario subsystem answers ROADMAP item 5's question — *does
federated roaming actually hold together under sustained chaos?* — with
machinery rather than anecdotes:

- :mod:`repro.scenarios.spec` — :class:`StormSpec`, the replayable
  description of one storm (JSON round-trip; same spec = same storm);
- :mod:`repro.scenarios.nodes` — :class:`StormNode`, a roaming protocol
  stub cheap enough to run in the thousands;
- :mod:`repro.scenarios.storms` — :class:`StormWorld`, the seeded
  builder that schedules flash-crowd waves, revocation and quarantine
  storms, churn and backbone partitions;
- :mod:`repro.scenarios.monitor` — :class:`InvariantMonitor`, the
  continuous checker (single-home, lease soundness, revocation
  completeness, quarantine convergence) whose violations carry causal
  flight-recorder traces;
- :mod:`repro.scenarios.harness` — :func:`run_storm` /
  :class:`StormReport` with the determinism fingerprint, and
  :func:`plant_dual_home`, the monitor's own mutation test.

Typical use::

    from repro.scenarios import roaming_storm, run_storm

    report = run_storm(roaming_storm(nodes=500, seed=21))
    assert report.clean, report.violations
"""

from repro.scenarios.harness import (
    StormReport,
    plant_dual_home,
    report_from,
    run_storm,
)
from repro.scenarios.monitor import InvariantMonitor, Violation
from repro.scenarios.nodes import HeldLease, StormNode
from repro.scenarios.spec import (
    PRESETS,
    StormSpec,
    partition_storm,
    revocation_storm,
    roaming_storm,
    soak,
)
from repro.scenarios.storms import StormWorld, base_name, ext_name, node_name

__all__ = [
    "PRESETS",
    "HeldLease",
    "InvariantMonitor",
    "StormNode",
    "StormReport",
    "StormSpec",
    "StormWorld",
    "Violation",
    "base_name",
    "ext_name",
    "node_name",
    "partition_storm",
    "plant_dual_home",
    "report_from",
    "revocation_storm",
    "roaming_storm",
    "run_storm",
    "soak",
]
