"""Storm specifications: deterministic, replayable chaos scenarios.

A :class:`StormSpec` is plain data — every knob of a storm world (how
many bases and nodes, when the migration waves hit, what fraction of the
roaming control traffic the network eats, how patient the invariant
monitor is) in one JSON-serializable record.  The same spec + the same
seed is the same storm, event for event: specs round-trip through JSON
so a failing CI run can be replayed locally from its artifact.

Presets cover the scenario arc of ROADMAP item 5:

- :func:`roaming_storm` — flash-crowd waves of nodes migrating between
  linked bases while the network drops roaming announcements;
- :func:`revocation_storm` — a policy change mass-revokes an extension
  mid-storm; no zombie copy may survive;
- :func:`partition_storm` — the base backbone partitions and heals in
  cycles while nodes keep roaming across it;
- :func:`soak` — all of the above at once, plus churn (nodes leaving
  and re-joining), for long runs.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any


@dataclass(frozen=True)
class StormSpec:
    """Everything one storm run needs, as replayable data."""

    name: str = "storm"
    seed: int = 7

    # -- world shape ------------------------------------------------------------
    #: Linked peer bases (2-4 is the federated-roaming regime).
    bases: int = 2
    #: Storm nodes (protocol stubs; thousands are cheap).
    nodes: int = 120
    #: Extensions per base catalog (``storm-ext-NN``, same names on
    #: every base — a migrating node gets the same policy at its new
    #: home, under fresh leases).
    catalog_size: int = 2
    #: Distinct device classes advertised by the nodes (quarantine marks
    #: scope to a class).
    node_classes: int = 4

    # -- timing -----------------------------------------------------------------
    #: Nodes join staggered across the first ``join_window`` seconds.
    join_window: float = 5.0
    #: The storm (waves, revocations, partitions) starts here.
    storm_start: float = 10.0
    #: Length of the storm window.
    duration: float = 40.0
    #: Quiet time after the storm; invariants must hold before it ends.
    settle: float = 30.0

    # -- leases -----------------------------------------------------------------
    #: Extension lease term (base-side keepalive cadence follows it).
    lease_duration: float = 8.0
    #: Registration lease the nodes *request* (registrars cap at their
    #: own max — 30s by default — so registrations are renewed in the
    #: background like a real DiscoveryClient would).
    registration_lease: float = 30.0

    # -- roaming hardening (the knobs under test) -------------------------------
    #: Retry budget for ROAMED announcements (and offers/revokes).
    #: 0 disables the retry policy entirely: the paper's classic
    #: fire-and-forget roaming, which storms exist to break.
    announce_attempts: int = 3
    #: Anti-entropy digest-exchange period between peer bases; None
    #: disables reconciliation (announce-only).
    roam_sync_interval: float | None = 4.0

    # -- invariant monitor ------------------------------------------------------
    monitor_interval: float = 1.0
    #: How long a node may be dual-homed (or a record otherwise stale)
    #: before the monitor calls it a violation.  Must sit *below* the
    #: registrar-expiry backstop (>= 20s after a migration with the
    #: default 30s cap) so a lost ROAMED is caught as a roaming bug, not
    #: silently healed by registration expiry.
    grace: float = 15.0

    # -- storm content ----------------------------------------------------------
    #: Fraction of the population that migrates during the storm.
    migrate_fraction: float = 0.6
    #: The migrating nodes hit in this many flash-crowd waves.
    migrate_waves: int = 3
    #: Each wave's migrations land within this many seconds.
    wave_spread: float = 2.0
    #: When set, every base revokes (and drops from its catalog) the
    #: extension ``revoke_extension`` at this time.
    revoke_at: float | None = None
    revoke_extension: str = "storm-ext-00"
    #: When set, ``quarantine_fraction`` of the nodes report this
    #: extension as quarantined at this time.
    quarantine_at: float | None = None
    quarantine_fraction: float = 0.02
    quarantine_extension: str = "storm-ext-01"
    #: Fraction of nodes that leave mid-storm and re-join later (churn).
    churn_fraction: float = 0.0
    #: How long a churning node stays away.
    churn_away: float = 12.0

    # -- injected faults --------------------------------------------------------
    #: Probability the network eats each ROAMED announcement (retries
    #: included — each retry is a fresh draw).
    drop_roamed: float = 0.0
    #: Probability the network eats each anti-entropy exchange.
    drop_sync: float = 0.0
    #: Base-backbone partition/heal cycles during the storm window.
    partition_cycles: int = 0
    partition_down: float = 3.0
    partition_gap: float = 10.0

    extras: dict[str, Any] = field(default_factory=dict)

    # -- derived ----------------------------------------------------------------

    @property
    def total_time(self) -> float:
        """Virtual seconds one run covers."""
        return self.storm_start + self.duration + self.settle

    def validate(self) -> None:
        if not (2 <= self.bases <= 8):
            raise ValueError(f"bases must be in [2, 8], got {self.bases}")
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")
        if self.catalog_size < 1:
            raise ValueError("catalog_size must be >= 1")
        if self.migrate_waves < 1:
            raise ValueError("migrate_waves must be >= 1")
        if not (0.0 <= self.migrate_fraction <= 1.0):
            raise ValueError("migrate_fraction must be in [0, 1]")
        if not (0.0 <= self.churn_fraction <= 1.0):
            raise ValueError("churn_fraction must be in [0, 1]")
        if self.grace <= self.monitor_interval:
            raise ValueError("grace must exceed the monitor interval")
        if self.revoke_at is not None and not (
            self.storm_start <= self.revoke_at <= self.storm_start + self.duration
        ):
            raise ValueError("revoke_at must fall inside the storm window")
        if self.quarantine_at is not None and not (
            self.storm_start
            <= self.quarantine_at
            <= self.storm_start + self.duration
        ):
            raise ValueError("quarantine_at must fall inside the storm window")

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "StormSpec":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{key: value for key, value in data.items() if key in known})

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "StormSpec":
        return cls.from_dict(json.loads(text))

    def with_overrides(self, **overrides: Any) -> "StormSpec":
        """A copy with fields replaced (specs are frozen)."""
        return replace(self, **overrides)


# -- presets ---------------------------------------------------------------------


def roaming_storm(
    nodes: int = 200, bases: int = 3, seed: int = 7, **overrides: Any
) -> StormSpec:
    """Flash-crowd roaming with lossy announcements.

    Without retrying announcements + anti-entropy this spec dual-homes
    a good share of its migrators; with them it must stay clean.
    """
    spec = StormSpec(
        name="roaming-storm",
        seed=seed,
        bases=bases,
        nodes=nodes,
        migrate_fraction=0.6,
        migrate_waves=3,
        drop_roamed=0.4,
    )
    return spec.with_overrides(**overrides) if overrides else spec


def revocation_storm(
    nodes: int = 200, bases: int = 2, seed: int = 7, **overrides: Any
) -> StormSpec:
    """Mass revocation mid-storm: no zombie extension may survive it."""
    spec = StormSpec(
        name="revocation-storm",
        seed=seed,
        bases=bases,
        nodes=nodes,
        migrate_fraction=0.4,
        migrate_waves=2,
        drop_roamed=0.3,
        revoke_at=30.0,
        quarantine_at=25.0,
        quarantine_fraction=0.03,
    )
    return spec.with_overrides(**overrides) if overrides else spec


def partition_storm(
    nodes: int = 150, bases: int = 3, seed: int = 7, **overrides: Any
) -> StormSpec:
    """Roaming while the base backbone partitions and heals in cycles."""
    spec = StormSpec(
        name="partition-storm",
        seed=seed,
        bases=bases,
        nodes=nodes,
        migrate_fraction=0.5,
        migrate_waves=3,
        partition_cycles=2,
        partition_down=3.0,
        partition_gap=12.0,
        roam_sync_interval=2.5,
        settle=35.0,
    )
    return spec.with_overrides(**overrides) if overrides else spec


def soak(
    nodes: int = 300, bases: int = 4, seed: int = 7, **overrides: Any
) -> StormSpec:
    """Everything at once, for longer: waves + revocation + quarantine +
    partitions + churn.  Scale ``nodes``/``duration`` up for real soaks
    (the benchmark runs this at thousands of leaves)."""
    spec = StormSpec(
        name="soak",
        seed=seed,
        bases=bases,
        nodes=nodes,
        catalog_size=3,
        duration=60.0,
        settle=35.0,
        migrate_fraction=0.5,
        migrate_waves=4,
        drop_roamed=0.25,
        revoke_at=45.0,
        quarantine_at=35.0,
        quarantine_fraction=0.02,
        churn_fraction=0.1,
        partition_cycles=1,
        partition_down=3.0,
        partition_gap=15.0,
        roam_sync_interval=3.0,
        monitor_interval=2.0,
    )
    return spec.with_overrides(**overrides) if overrides else spec


#: Name -> preset factory, for CLIs and CI jobs.
PRESETS = {
    "roaming": roaming_storm,
    "revocation": revocation_storm,
    "partition": partition_storm,
    "soak": soak,
}
