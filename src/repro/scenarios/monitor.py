"""The continuously evaluated invariant monitor.

While a storm runs, an :class:`InvariantMonitor` re-checks the federated
world every ``interval`` virtual seconds against four invariants:

- **single-home** — after quiescence a node is tracked (and its leases
  renewed) by at most one base.  Transient dual-homes are the nature of
  roaming; one that outlives ``grace`` means a ROAMED announcement was
  lost *and* reconciliation failed to converge.
- **lease-soundness** — base-side records and node-side leases agree:
  no base renews a lease its node no longer holds past grace, and no
  node sits on an expired lease the sweeper should have withdrawn.
- **revocation-completeness** — after a mass revocation settles, no
  zombie copy of the revoked extension survives on any base's books or
  any node.
- **quarantine-convergence** — a reported quarantine sticks: the
  reporter's record is dropped and the catalog keeps suppressing the
  bad version for that device class until a version bump heals it.

A violation is reported once per ``(invariant, subject)``, carries a
causal trace cut from the flight-recorder timeline (every event that
names the subject), and lands on the flight recorder itself as an
``invariant.violation`` event — an auto-dump kind, so a hub wired to a
dump directory writes the black box the moment an invariant breaks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.midas.base import ExtensionBase
from repro.scenarios.nodes import StormNode
from repro.sim.kernel import Simulator
from repro.sim.timers import PeriodicTimer
from repro.telemetry import MetricsRegistry
from repro.telemetry.timeline import Timeline
from repro.util.signal import Signal

#: Causal-trace length attached to each violation.
TRACE_LIMIT = 40


@dataclass
class Violation:
    """One invariant breach, with enough context to debug it."""

    invariant: str  # single-home | lease-soundness | revocation-completeness | quarantine-convergence
    subject: str  # the node / extension the invariant broke for
    time: float
    detail: str
    trace: str = ""

    def to_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "subject": self.subject,
            "time": self.time,
            "detail": self.detail,
            "trace": self.trace,
        }


@dataclass
class _QuarantineExpectation:
    base_id: str
    reporter: str
    extension: str
    node_class: str
    version: int | None
    reported_at: float


@dataclass
class _RevocationExpectation:
    extension: str
    deadline: float
    violated: bool = field(default=False)


class InvariantMonitor:
    """Continuously checks a storm world's federated invariants."""

    def __init__(
        self,
        simulator: Simulator,
        bases: dict[str, ExtensionBase],
        nodes: dict[str, StormNode],
        registry: MetricsRegistry,
        interval: float = 1.0,
        grace: float = 15.0,
    ):
        self.simulator = simulator
        self.bases = bases
        self.nodes = nodes
        self.registry = registry
        self.interval = interval
        self.grace = grace
        self.violations: list[Violation] = []
        #: Fires with (violation,) the moment one is reported.
        self.on_violation = Signal("invariants.on_violation")
        self.ticks = 0
        #: Virtual time dual-homing was last observed anywhere (None =
        #: never) — the roam-storm convergence measurement.
        self.last_dual_at: float | None = None
        self._dual_since: dict[str, float] = {}
        self._phantom_since: dict[tuple[str, str, str], float] = {}
        self._reported: set[tuple[str, str]] = set()
        self._revocations: list[_RevocationExpectation] = []
        self._quarantines: list[_QuarantineExpectation] = []
        self._timer: PeriodicTimer | None = None
        for base in bases.values():
            base.on_quarantined.connect(
                lambda reporter, name, body, base=base: self._quarantine_reported(
                    base, reporter, name, body
                )
            )

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "InvariantMonitor":
        if self._timer is None:
            self._timer = PeriodicTimer(
                self.simulator, self.interval, self.tick, name="invariants.monitor"
            ).start()
        return self

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()
            self._timer = None

    # -- expectations ------------------------------------------------------------

    def expect_revocation(self, extension: str, deadline: float) -> None:
        """Promise: by ``deadline``, no copy of ``extension`` survives."""
        self._revocations.append(_RevocationExpectation(extension, deadline))

    def _quarantine_reported(
        self, base: ExtensionBase, reporter: str, name: str, body: dict
    ) -> None:
        version = body.get("version")
        self._quarantines.append(
            _QuarantineExpectation(
                base.node_id,
                reporter,
                name,
                str(body.get("node_class", reporter)),
                int(version) if version is not None else None,
                self.simulator.now,
            )
        )

    # -- the continuous check ------------------------------------------------------

    def tick(self) -> None:
        self.ticks += 1
        now = self.simulator.now
        homes = self._homes()
        self._check_single_home(now, homes)
        self._check_lease_soundness(now)
        self._check_revocations(now)
        self._check_quarantines(now)

    def _homes(self) -> dict[str, set[str]]:
        """node -> bases currently tracking (renewing) it."""
        homes: dict[str, set[str]] = {}
        for base_id, base in self.bases.items():
            for (node, _name) in base._adapted:
                homes.setdefault(node, set()).add(base_id)
        return homes

    def _check_single_home(self, now: float, homes: dict[str, set[str]]) -> None:
        dual = {node for node, tracked in homes.items() if len(tracked) > 1}
        if dual:
            self.last_dual_at = now
        for node in dual:
            since = self._dual_since.setdefault(node, now)
            if now - since >= self.grace:
                self._violate(
                    "single-home",
                    node,
                    f"tracked by {sorted(homes[node])} since t={since:.2f} "
                    f"({now - since:.1f}s > grace {self.grace:.1f}s)",
                )
        # Nodes that converged leave the watch list.
        self._dual_since = {
            node: since for node, since in self._dual_since.items() if node in dual
        }
        # Convergence gauges, sampled every tick: how many nodes are
        # dual-homed right now, and the worst observed lag.  These feed
        # the health plane's convergence-lag SLO (sampled gauges measure
        # *what fraction of time* the fleet was out of bounds).
        self.registry.gauge("scenarios.dual_homed", float(len(dual)))
        if self._dual_since:
            worst_node, since = max(
                self._dual_since.items(), key=lambda item: (now - item[1], item[0])
            )
            self.registry.gauge("scenarios.roam_lag", now - since, node=worst_node)
        else:
            self.registry.gauge("scenarios.roam_lag", 0.0)

    def _check_lease_soundness(self, now: float) -> None:
        # Base-side phantoms: a base renewing a lease its node dropped.
        # (Keepalives self-heal this — the node answers "unknown" and the
        # renewer abandons — so only persistence past grace is a bug.)
        live: set[tuple[str, str, str]] = set()
        for base_id, base in self.bases.items():
            for (node_id, name) in base._adapted:
                node = self.nodes.get(node_id)
                if node is None or not node.attached:
                    continue  # churned away: abandonment owns this case
                key = (base_id, node_id, name)
                live.add(key)
                if (base_id, name) in node.held:
                    continue
                since = self._phantom_since.setdefault(key, now)
                if now - since >= self.grace:
                    self._violate(
                        "lease-soundness",
                        node_id,
                        f"{base_id} still renews {name!r} the node dropped "
                        f"{now - since:.1f}s ago",
                    )
        self._phantom_since = {
            key: since for key, since in self._phantom_since.items() if key in live
        }
        # Node-side: the sweeper must withdraw expired leases promptly.
        slack = 2 * self.interval + 1.0
        for node_id, node in self.nodes.items():
            for (granter, name), lease in node.held.items():
                if lease.expires_at + slack < now:
                    self._violate(
                        "lease-soundness",
                        node_id,
                        f"holds expired lease on {name!r} from {granter} "
                        f"({now - lease.expires_at:.1f}s past expiry)",
                    )

    def _check_revocations(self, now: float) -> None:
        for expectation in list(self._revocations):
            if now < expectation.deadline:
                continue
            name = expectation.extension
            zombies: list[str] = []
            for base_id, base in self.bases.items():
                for (node, ext) in base._adapted:
                    if ext == name:
                        zombies.append(f"{base_id} tracks {node}")
            for node_id, node in self.nodes.items():
                if node.attached and node.holds(name):
                    zombies.append(f"{node_id} holds it")
            if zombies:
                self._violate(
                    "revocation-completeness",
                    name,
                    f"zombies after deadline t={expectation.deadline:.1f}: "
                    + "; ".join(sorted(zombies)[:8]),
                )
            self._revocations.remove(expectation)

    def _check_quarantines(self, now: float) -> None:
        for expectation in list(self._quarantines):
            if now - expectation.reported_at < self.grace:
                continue
            base = self.bases.get(expectation.base_id)
            self._quarantines.remove(expectation)
            if base is None:
                continue
            name = expectation.extension
            if name not in base.catalog:
                continue  # revoked / removed since: nothing left to converge
            if (
                expectation.version is not None
                and base.catalog.version_of(name) > expectation.version
            ):
                continue  # a newer version healed the mark legitimately
            if base.catalog.is_healthy(name, expectation.node_class):
                self._violate(
                    "quarantine-convergence",
                    name,
                    f"{expectation.base_id} still offers {name!r} to class "
                    f"{expectation.node_class} after {expectation.reporter}'s report",
                )
            if (expectation.reporter, name) in base._adapted:
                self._violate(
                    "quarantine-convergence",
                    name,
                    f"{expectation.base_id} re-adapted reporter "
                    f"{expectation.reporter} with {name!r}",
                )

    # -- reporting ------------------------------------------------------------------

    def _violate(self, invariant: str, subject: str, detail: str) -> None:
        key = (invariant, subject)
        if key in self._reported:
            return
        self._reported.add(key)
        violation = Violation(
            invariant, subject, self.simulator.now, detail, self._causal_trace(subject)
        )
        self.violations.append(violation)
        # Lands on the subject's flight ring; "invariant.violation" is an
        # auto-dump kind, so a dump-wired hub writes the black box now.
        self.registry.event(
            "invariant.violation",
            node=subject,
            invariant=invariant,
            detail=detail,
        )
        self.registry.count("invariants.violations", invariant=invariant)
        self.on_violation.fire(violation)

    def _causal_trace(self, subject: str) -> str:
        """The merged timeline, cut down to events naming the subject."""
        hub = self.registry.flight
        if hub is None:
            return ""
        events = [
            event
            for event in hub.events()
            if event.node == subject
            or any(value == subject for value in event.fields.values())
        ]
        if not events:
            return ""
        return Timeline(events[-TRACE_LIMIT:]).render()

    def summary(self) -> dict:
        """Counts for reports and fingerprints."""
        return {
            "ticks": self.ticks,
            "violations": [v.to_dict() for v in self.violations],
            "last_dual_at": self.last_dual_at,
        }
