"""Storm nodes: lightweight roaming receivers.

A :class:`StormNode` is a protocol stub in the :mod:`repro.loadgen`
mold — it speaks just enough MIDAS (OFFER / KEEPALIVE / REVOKE, plus
registrar REGISTER / RENEW) for bases to adapt it, without a ProseVM, so
storms scale to thousands of nodes.  Unlike a load client it models the
*roaming* side faithfully:

- it is homed at exactly one base at a time and keeps exactly that
  base's registrar lease alive;
- :meth:`migrate` re-registers it at a new base and abandons the old
  registration — the moment federated bookkeeping can go wrong;
- leases are tracked per ``(granting base, extension)``: if two bases
  each believe they host the node, the node really holds two lease sets,
  which is exactly the dual-home state the invariant monitor hunts;
- every install / withdrawal / migration lands on the flight recorder,
  so invariant violations come with a causal timeline.
"""

from __future__ import annotations

from repro.discovery.registrar import REGISTER, RENEW
from repro.discovery.service import ServiceItem
from repro.midas.receiver import (
    ADAPTATION_INTERFACE,
    HEALTH,
    KEEPALIVE,
    OFFER,
    REVOKE,
)
from repro.net.transport import Transport
from repro.sim.kernel import Simulator
from repro.sim.timers import PeriodicTimer
from repro.telemetry import runtime as _telemetry
from repro.util.ids import fresh_id


class HeldLease:
    """One extension lease this node holds from one base."""

    __slots__ = ("lease_id", "name", "granter", "version", "duration", "expires_at")

    def __init__(
        self,
        lease_id: str,
        name: str,
        granter: str,
        version: int,
        duration: float,
        expires_at: float,
    ):
        self.lease_id = lease_id
        self.name = name
        self.granter = granter
        self.version = version
        self.duration = duration
        self.expires_at = expires_at


class StormNode:
    """One roaming member of the storm population."""

    def __init__(
        self,
        index: int,
        transport: Transport,
        simulator: Simulator,
        node_class: str,
        registration_lease: float,
    ):
        self.index = index
        self.transport = transport
        self.simulator = simulator
        self.node_class = node_class
        self.registration_lease = registration_lease
        self.node_id = transport.node.node_id
        #: The base this node currently calls home (None before joining
        #: and while churned away).
        self.home: str | None = None
        #: ``(granting base, extension)`` -> lease.  Two granters for the
        #: same node is physically possible — that is the dual-home bug
        #: state, observable here and at the bases.
        self.held: dict[tuple[str, str], HeldLease] = {}
        self.attached = True
        self._registration_lease_id: str | None = None
        self._upkeep: PeriodicTimer | None = None
        # Storm accounting.
        self.migrations = 0
        self.installs = 0
        self.withdrawals = 0

        transport.register(OFFER, self._serve_offer)
        transport.register(KEEPALIVE, self._serve_keepalive)
        transport.register(REVOKE, self._serve_revoke)

    # -- MIDAS protocol stub -------------------------------------------------------

    def _serve_offer(self, sender: str, body: dict) -> dict:
        envelope = body["envelope"]
        duration = float(body["duration"])
        key = (sender, envelope.name)
        lease = self.held.get(key)
        if lease is None:
            lease = self.held[key] = HeldLease(
                fresh_id(f"{self.node_id}.lease"),
                envelope.name,
                sender,
                envelope.version,
                duration,
                self.simulator.now + duration,
            )
            self.installs += 1
            _telemetry.get_recorder().event(
                "storm.installed",
                node=self.node_id,
                extension=envelope.name,
                granter=sender,
            )
        else:
            # Re-offer of a held extension: refresh under the same lease
            # id (a version bump rides the same refresh).
            lease.version = envelope.version
            lease.duration = duration
            lease.expires_at = self.simulator.now + duration
        return {"lease_id": lease.lease_id, "duration": duration}

    def _serve_keepalive(self, sender: str, body: dict) -> dict:
        by_id = {lease.lease_id: lease for lease in self.held.values()}
        renewed, unknown = [], []
        for lease_id in body["lease_ids"]:
            lease = by_id.get(lease_id)
            if lease is None:
                unknown.append(lease_id)
            else:
                lease.expires_at = self.simulator.now + lease.duration
                renewed.append(lease_id)
        return {"renewed": renewed, "unknown": unknown}

    def _serve_revoke(self, sender: str, body: dict) -> dict:
        lease_id = body["lease_id"]
        for key, lease in list(self.held.items()):
            if lease.lease_id == lease_id:
                self._withdraw(key, "revoked")
                return {"revoked": True}
        return {"revoked": False}

    def sweep(self, now: float) -> None:
        """Expire overdue leases (driven by the world's shared sweeper)."""
        for key, lease in list(self.held.items()):
            if lease.expires_at <= now:
                self._withdraw(key, "expired")

    def _withdraw(self, key: tuple[str, str], reason: str) -> None:
        lease = self.held.pop(key, None)
        if lease is None:
            return
        self.withdrawals += 1
        _telemetry.get_recorder().event(
            "storm.withdrawn",
            node=self.node_id,
            extension=lease.name,
            granter=lease.granter,
            reason=reason,
        )

    # -- roaming lifecycle ---------------------------------------------------------

    def join(self, base_id: str) -> None:
        """First arrival: register the adaptation service at ``base_id``."""
        self.home = base_id
        _telemetry.get_recorder().event(
            "storm.join", node=self.node_id, base=base_id
        )
        self._register(base_id)

    def migrate(self, base_id: str) -> None:
        """Roam to ``base_id``: register there, let the old lease lapse.

        The old base is *not* told by this node — that is the ROAMED
        announcement's job, which is exactly what storms attack.
        """
        if not self.attached or base_id == self.home:
            return
        previous = self.home
        self.home = base_id
        self._registration_lease_id = None  # the old base's lease lapses
        self.migrations += 1
        _telemetry.get_recorder().event(
            "storm.migrate",
            node=self.node_id,
            base=base_id,
            previous=previous or "",
        )
        self._register(base_id)

    def leave(self) -> None:
        """Churn out: drop off the network mid-storm."""
        if not self.attached:
            return
        self.attached = False
        previous = self.home
        self.home = None
        self._registration_lease_id = None
        if self._upkeep is not None:
            self._upkeep.stop()
            self._upkeep = None
        _telemetry.get_recorder().event(
            "storm.leave", node=self.node_id, base=previous or ""
        )
        network = self.transport.node.network
        if network is not None:
            network.detach(self.transport.node)

    def rejoin(self, network, base_id: str) -> None:
        """Churn back in at ``base_id`` (a fresh arrival)."""
        if self.attached:
            return
        network.attach(self.transport.node)
        self.attached = True
        _telemetry.get_recorder().event(
            "storm.return", node=self.node_id, base=base_id
        )
        self.home = base_id
        self._register(base_id)

    def report_quarantine(self, name: str) -> None:
        """Report ``name`` quarantined to its granter and withdraw it."""
        target: tuple[str, str] | None = None
        for key in self.held:
            if key[1] == name and (target is None or key[0] == self.home):
                target = key
        if target is None:
            return
        granter, _ = target
        lease = self.held[target]
        self.transport.notify(
            granter,
            HEALTH,
            {
                "extension": name,
                "node_class": self.node_class,
                "version": lease.version,
                "offender": name,
            },
        )
        self._withdraw(target, "quarantined")

    # -- registration upkeep ---------------------------------------------------------

    def _register(self, base_id: str) -> None:
        item = ServiceItem(
            ADAPTATION_INTERFACE, self.node_id, {"class": self.node_class}
        )

        def on_reply(body: dict) -> None:
            if self.home != base_id or not self.attached:
                return  # migrated again (or left) before the reply landed
            self._registration_lease_id = body["lease_id"]
            self._start_upkeep(float(body["duration"]))

        self.transport.request(
            base_id,
            REGISTER,
            {"item": item, "duration": self.registration_lease},
            on_reply=on_reply,
            on_error=lambda error: None,  # upkeep / re-register heals later
        )

    def _start_upkeep(self, granted: float) -> None:
        if self._upkeep is not None:
            return
        self._upkeep = PeriodicTimer(
            self.simulator,
            max(granted / 3.0, 0.1),
            self._renew_registration,
            name=f"{self.node_id}.registration",
        ).start()

    def _renew_registration(self) -> None:
        # Only the *current* home's registration is kept alive; after a
        # migration the old base's registrar lease is left to expire,
        # like a device that walked out of radio range.
        if self.home is None or self._registration_lease_id is None:
            return
        self.transport.request(
            self.home,
            RENEW,
            {
                "lease_id": self._registration_lease_id,
                "duration": self.registration_lease,
            },
            on_error=lambda error: None,
        )

    # -- queries ----------------------------------------------------------------------

    def granters(self) -> list[str]:
        """Bases this node currently holds at least one lease from."""
        return sorted({granter for (granter, _name) in self.held})

    def holds(self, name: str) -> bool:
        """Does this node hold ``name`` from any granter?"""
        return any(key[1] == name for key in self.held)

    def __repr__(self) -> str:
        return (
            f"<StormNode {self.node_id} home={self.home} "
            f"held={len(self.held)} attached={self.attached}>"
        )
