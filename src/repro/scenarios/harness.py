"""Run storms end to end and report on them.

:func:`run_storm` is the one-call entry point: build a
:class:`~repro.scenarios.storms.StormWorld` from a spec, run it to
``spec.total_time``, take a final invariant reading, and fold the whole
run into a :class:`StormReport`.

The report's :attr:`~StormReport.fingerprint` is a SHA-256 over the
run's *deterministic* observable state — final homes, held leases,
violations, the roaming flight-event stream, roaming counters, and
network totals.  Process-global artifacts (lease ids, trace ids, error
strings) are deliberately excluded, so the same spec fingerprints
identically in any process — the replayability contract the scenario
tests enforce across seeds.

:func:`plant_dual_home` is the monitor's mutation test: it surgically
creates the dual-home state (a node registered at a second base while
the first base is never told and reconciliation is off) that a correct
monitor must flag — and exactly flag.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from repro.scenarios.monitor import Violation
from repro.scenarios.spec import StormSpec
from repro.scenarios.storms import StormWorld
from repro.telemetry import MetricsRegistry

#: Roaming counters folded into reports and fingerprints.
ROAM_COUNTERS = (
    "midas.roam.announced",
    "midas.roam.announce_failed",
    "midas.roam.dropped",
    "midas.roam.recorded",
    "midas.roam.stale_ignored",
    "midas.roam.stale_refused",
    "midas.roam.sync_sent",
    "midas.roam.sync_failed",
    "midas.roam.reconciled",
    "invariants.violations",
)

#: Flight-event kinds whose stream is part of the fingerprint.
FINGERPRINT_KINDS = (
    "midas.roam.dropped",
    "midas.roam.recorded",
    "midas.roam.reconciled",
    "midas.roam.announce_failed",
    "invariant.violation",
    "storm.migrate",
    "storm.partition",
    "storm.heal",
)


@dataclass
class StormReport:
    """Everything one storm run produced, JSON-exportable."""

    spec: StormSpec
    violations: list[Violation]
    #: node -> bases still tracking it when the run ended.
    homes: dict[str, list[str]]
    #: node -> sorted ``granter:extension`` leases still held.
    held: dict[str, list[str]]
    counters: dict[str, int]
    network: dict[str, int]
    stats: dict[str, Any] = field(default_factory=dict)
    #: Roaming flight events as (node, kind, time, roamed, peer) tuples.
    roam_events: list[tuple] = field(default_factory=list)
    #: Health-plane verdict at the end of the run (None if disabled).
    #: Deliberately NOT part of the fingerprint: the judgment layer must
    #: be free to evolve without invalidating replay fingerprints.
    health: dict[str, Any] | None = None
    last_dual_at: float | None = None
    revocation_cleared_at: float | None = None
    ticks: int = 0

    @property
    def clean(self) -> bool:
        return not self.violations

    @property
    def dual_homed(self) -> list[str]:
        """Nodes still tracked by more than one base at the end."""
        return sorted(n for n, tracked in self.homes.items() if len(tracked) > 1)

    def to_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "violations": [v.to_dict() for v in self.violations],
            "homes": self.homes,
            "held": self.held,
            "counters": self.counters,
            "network": self.network,
            "stats": self.stats,
            "last_dual_at": self.last_dual_at,
            "revocation_cleared_at": self.revocation_cleared_at,
            "ticks": self.ticks,
            "health": self.health,
            "fingerprint": self.fingerprint,
        }

    @property
    def fingerprint(self) -> str:
        """SHA-256 of the run's deterministic observable state.

        Covers final homes, held leases, violation keys, the roaming
        event stream, roaming counters and network totals; excludes
        process-global ids (leases, traces) and free-form error text so
        the same spec fingerprints identically in any process.
        """
        canonical = {
            "homes": self.homes,
            "held": self.held,
            "violations": sorted(
                (v.invariant, v.subject, round(v.time, 6)) for v in self.violations
            ),
            "events": self.roam_events,
            "counters": self.counters,
            "network": self.network,
            "last_dual_at": self.last_dual_at,
            "revocation_cleared_at": self.revocation_cleared_at,
        }
        payload = json.dumps(canonical, sort_keys=True, default=str)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def summary(self) -> str:
        """One human line, for logs and benchmark output."""
        verdict = "clean" if self.clean else f"{len(self.violations)} VIOLATIONS"
        return (
            f"{self.spec.name}[seed={self.spec.seed}] nodes={self.spec.nodes} "
            f"bases={self.spec.bases}: {verdict}, "
            f"dual_homed={len(self.dual_homed)}, "
            f"announced={self.counters.get('midas.roam.announced', 0)}, "
            f"reconciled={self.counters.get('midas.roam.reconciled', 0)}"
        )


def report_from(world: StormWorld) -> StormReport:
    """Fold a finished world into a :class:`StormReport`."""
    registry = world.registry
    counters = {
        name: int(registry.counter_total(name)) for name in ROAM_COUNTERS
    }
    network = world.network
    hub = registry.flight
    roam_events: list[tuple] = []
    if hub is not None:
        wanted = set(FINGERPRINT_KINDS)
        for event in hub.events():
            if event.kind in wanted:
                roam_events.append(
                    (
                        event.node,
                        event.kind,
                        round(event.time, 6),
                        str(event.get("roamed", "")),
                        str(event.get("peer", event.get("base", ""))),
                    )
                )
    roam_events.sort()
    nodes = world.storm_nodes
    return StormReport(
        spec=world.spec,
        violations=list(world.monitor.violations),
        homes=world.homes(),
        held={
            node_id: sorted(f"{g}:{n}" for (g, n) in node.held)
            for node_id, node in sorted(nodes.items())
            if node.held
        },
        counters=counters,
        network={
            "transmitted": network.messages_transmitted,
            "delivered": network.messages_delivered,
            "dropped": network.messages_dropped,
        },
        stats={
            "migrations_planned": world.migrations_planned,
            "migrations": sum(n.migrations for n in nodes.values()),
            "installs": sum(n.installs for n in nodes.values()),
            "withdrawals": sum(n.withdrawals for n in nodes.values()),
            "churns_planned": world.churns_planned,
            "monitor_ticks": world.monitor.ticks,
        },
        roam_events=roam_events,
        last_dual_at=world.monitor.last_dual_at,
        revocation_cleared_at=world.revocation_cleared_at,
        ticks=world.monitor.ticks,
        health=_health_dict(world),
    )


def _health_dict(world: StormWorld) -> dict[str, Any] | None:
    """Final health verdict plus the peak mid-run incident snapshot."""
    if world.health is None:
        return None
    health = world.health.report().to_dict()
    if world.health.peak is not None:
        health["peak"] = world.health.peak.to_dict()
    return health


def run_storm(
    spec: StormSpec,
    registry: MetricsRegistry | None = None,
    dump_dir: str | None = None,
    health: bool = True,
) -> StormReport:
    """Build, run and report one storm (the whole ``spec.total_time``)."""
    world = StormWorld(spec, registry=registry, dump_dir=dump_dir, health=health)
    try:
        world.run_for(spec.total_time)
        world.monitor.tick()  # a final reading at the boundary
        if world.health is not None:
            world.health.tick()  # final burn reading at the same boundary
        return report_from(world)
    finally:
        world.close()


def plant_dual_home(world: StormWorld, node_id: str, at: float) -> str:
    """Schedule a *silent* migration: the mutation the monitor must catch.

    At ``at``, ``node_id`` registers at a peer base while its old base's
    ROAMED announcement is suppressed by pointing the announcer at an
    empty peer list — the bases never hear about the move, so with
    reconciliation off the node stays dual-homed until the registrar
    backstop (past any reasonable ``grace``).
    """

    def mutate() -> None:
        # Sever the announcement path only: every base forgets its peers
        # (no ROAMED, no anti-entropy), then the node migrates normally.
        for base in world.bases.values():
            base._peer_bases.clear()
            if base._roam_sync_timer is not None:
                base._roam_sync_timer.stop()
                base._roam_sync_timer = None
        world.storm_nodes[node_id].migrate(world.other_base(node_id))

    world.simulator.schedule(at, mutate)
