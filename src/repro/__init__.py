"""repro — a reproduction of *A Proactive Middleware Platform for Mobile
Computing* (Popovici, Frei, Alonso; Middleware 2003) in Python.

The platform lets a proactive environment extend the functionality of
mobile applications at run time.  Two layers:

- **PROSE** (:mod:`repro.aop`) — dynamic AOP: classes are instrumented
  with minimal hooks when loaded; first-class aspects are inserted and
  withdrawn at run time, their advice sandboxed;
- **MIDAS** (:mod:`repro.midas`) — extension management: discovery of
  adaptable nodes, signed extension distribution, lease-based locality,
  revocation and replacement.

Substrates (all built here, simulated where the paper used hardware):
discrete-event kernel (:mod:`repro.sim`), wireless network with mobility
(:mod:`repro.net`), Jini-like discovery (:mod:`repro.discovery`), leases
(:mod:`repro.leasing`), a LEGO-RCX robot stack with the plotter prototype
(:mod:`repro.robot`), the hall movement database (:mod:`repro.store`),
the standard extension library (:mod:`repro.extensions`), and SPECjvm-like
workloads (:mod:`repro.workloads`).

Quickstart::

    from repro import ProactivePlatform, Position
    from repro.extensions import CallLogging

    platform = ProactivePlatform()
    hall = platform.create_base_station("hall-A", Position(0, 0))
    hall.add_extension("call-log", CallLogging)
    robot = platform.create_mobile_node("robot:1:1", Position(5, 0))
    robot.load_class(MyAppClass)
    platform.run_for(5.0)          # robot discovered and adapted
    assert "call-log" in robot.extensions()
"""

from repro.aop import (
    Aspect,
    Capability,
    MethodCut,
    ProseVM,
    REST,
    SandboxPolicy,
    after,
    after_throwing,
    around,
    before,
)
from repro.core import (
    BaseStation,
    MobileNode,
    ProactiveEnvironment,
    ProactivePlatform,
    ProductionHall,
)
from repro.net.geometry import Position, Region

__version__ = "1.0.0"

__all__ = [
    "Aspect",
    "BaseStation",
    "Capability",
    "MethodCut",
    "MobileNode",
    "Position",
    "ProactiveEnvironment",
    "ProactivePlatform",
    "ProductionHall",
    "ProseVM",
    "REST",
    "Region",
    "SandboxPolicy",
    "after",
    "after_throwing",
    "around",
    "before",
    "__version__",
]
