"""Synthetic whole-application workloads (the SPECjvm stand-in).

§4.6 measures the cost of a PROSE-activated JVM with no extensions at
"about 7% (measured using a SPECjvm benchmark)".  SPECjvm98 is proprietary
and Java; what the measurement needs is a *method-call-dense, realistic
application mix* whose classes the weaver instruments.  This package
provides three kernels modelled on the SPECjvm98 mix:

- :class:`~repro.workloads.kernels.CompressKernel` — run-length coding
  over byte buffers (``_201_compress``-like);
- :class:`~repro.workloads.kernels.DbKernel` — an in-memory table with
  insert/lookup/update operations (``_209_db``-like);
- :class:`~repro.workloads.kernels.RayKernel` — 3-D vector arithmetic and
  sphere intersection (``_205_raytrace``-like);

and :class:`~repro.workloads.suite.WorkloadSuite` to run them under a
given VM.  Experiment E1 compares suite throughput with classes
uninstrumented vs. instrumented-but-unadvised.
"""

from repro.workloads.kernels import (
    CompressKernel,
    DbKernel,
    RayKernel,
    Vec3,
    workload_classes,
)
from repro.workloads.suite import WorkloadSuite

__all__ = [
    "CompressKernel",
    "DbKernel",
    "RayKernel",
    "Vec3",
    "WorkloadSuite",
    "workload_classes",
]
