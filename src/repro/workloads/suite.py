"""Running the workload kernels as one suite."""

from __future__ import annotations

import time

from repro.workloads.kernels import CompressKernel, DbKernel, RayKernel


class WorkloadSuite:
    """The three kernels run back to back (one 'SPECjvm iteration')."""

    def __init__(
        self,
        compress_size: int = 512,
        db_rows: int = 200,
        rays: int = 40,
    ):
        self.compress = CompressKernel(size=compress_size)
        self.db = DbKernel(rows=db_rows)
        self.ray = RayKernel(rays=rays)

    def run_once(self) -> int:
        """One iteration of every kernel; returns a combined work witness."""
        witness = self.compress.run_once()
        witness += self.db.run_once()
        witness += self.ray.run_once()
        return witness

    def run(self, iterations: int) -> int:
        """``iterations`` full suite iterations."""
        witness = 0
        for _ in range(iterations):
            witness += self.run_once()
        return witness

    def time_iterations(self, iterations: int) -> float:
        """Wall-clock seconds for ``iterations`` suite iterations."""
        start = time.perf_counter()
        self.run(iterations)
        return time.perf_counter() - start
