"""The three workload kernels.

Each kernel is deliberately written in an object-oriented, call-dense
style — short methods invoked in tight loops — because that is the shape
that makes always-present hooks expensive.  Writing them as flat loops
would (unrealistically) hide the instrumentation cost E1 measures.
"""

from __future__ import annotations


class CompressKernel:
    """Run-length encodes and decodes a synthetic byte buffer."""

    def __init__(self, size: int = 512, seed: int = 1):
        self.size = size
        self.seed = seed
        self.data = self._make_data()

    def _make_data(self) -> bytes:
        # A mildly compressible deterministic pattern.
        out = bytearray()
        value = self.seed & 0xFF
        run = 1
        while len(out) < self.size:
            out.extend([value] * run)
            value = (value * 31 + 7) & 0xFF
            run = (run % 9) + 1
        return bytes(out[: self.size])

    def encode_byte(self, value: int, count: int, out: bytearray) -> None:
        """Append one (count, value) run to the output."""
        out.append(count)
        out.append(value)

    def compress(self, data: bytes) -> bytes:
        """RLE-compress ``data``."""
        out = bytearray()
        index = 0
        while index < len(data):
            value = data[index]
            count = 1
            while (
                index + count < len(data)
                and count < 255
                and data[index + count] == value
            ):
                count += 1
            self.encode_byte(value, count, out)
            index += count
        return bytes(out)

    def decompress(self, data: bytes) -> bytes:
        """Invert :meth:`compress`."""
        out = bytearray()
        for position in range(0, len(data), 2):
            count, value = data[position], data[position + 1]
            out.extend([value] * count)
        return bytes(out)

    def run_once(self) -> int:
        """One round trip; returns the compressed size (work witness)."""
        packed = self.compress(self.data)
        restored = self.decompress(packed)
        if restored != self.data:
            raise AssertionError("compress kernel corrupted its data")
        return len(packed)


class DbKernel:
    """An in-memory keyed table exercised with a fixed operation script."""

    def __init__(self, rows: int = 200):
        self.rows = rows
        self._table: dict[int, tuple[str, int]] = {}

    def insert(self, key: int, name: str, balance: int) -> None:
        """Add one row."""
        self._table[key] = (name, balance)

    def lookup(self, key: int) -> tuple[str, int] | None:
        """Fetch one row."""
        return self._table.get(key)

    def update(self, key: int, delta: int) -> int:
        """Adjust one row's balance; returns the new balance."""
        name, balance = self._table[key]
        balance += delta
        self._table[key] = (name, balance)
        return balance

    def delete(self, key: int) -> bool:
        """Remove one row; True if it existed."""
        return self._table.pop(key, None) is not None

    def run_once(self) -> int:
        """Insert, read, update and delete ``rows`` rows; returns a checksum."""
        checksum = 0
        for key in range(self.rows):
            self.insert(key, f"acct-{key}", key * 10)
        for key in range(self.rows):
            row = self.lookup(key)
            if row is not None:
                checksum += row[1]
        for key in range(0, self.rows, 3):
            checksum += self.update(key, 5)
        for key in range(self.rows):
            self.delete(key)
        return checksum


class Vec3:
    """A 3-D vector with method-per-operation arithmetic."""

    __slots__ = ("x", "y", "z")

    def __init__(self, x: float, y: float, z: float):
        self.x = x
        self.y = y
        self.z = z

    def add(self, other: "Vec3") -> "Vec3":
        """Component-wise sum."""
        return Vec3(self.x + other.x, self.y + other.y, self.z + other.z)

    def sub(self, other: "Vec3") -> "Vec3":
        """Component-wise difference."""
        return Vec3(self.x - other.x, self.y - other.y, self.z - other.z)

    def scale(self, factor: float) -> "Vec3":
        """Scalar multiple."""
        return Vec3(self.x * factor, self.y * factor, self.z * factor)

    def dot(self, other: "Vec3") -> float:
        """Dot product."""
        return self.x * other.x + self.y * other.y + self.z * other.z


class RayKernel:
    """Casts rays at a sphere grid — vector-method-call heavy."""

    def __init__(self, rays: int = 100):
        self.rays = rays
        self.center = Vec3(0.0, 0.0, 5.0)
        self.radius2 = 1.5

    def intersect(self, origin: Vec3, direction: Vec3) -> float | None:
        """Parameter along ``direction`` to the sphere, or None for a miss.

        ``direction`` need not be normalized; the full quadratic is solved.
        """
        oc = origin.sub(self.center)
        a = direction.dot(direction)
        b = 2.0 * oc.dot(direction)
        c = oc.dot(oc) - self.radius2
        disc = b * b - 4.0 * a * c
        if disc < 0:
            return None
        return (-b - disc**0.5) / (2.0 * a)

    def run_once(self) -> int:
        """Cast ``rays``² rays; returns the number of hits."""
        hits = 0
        origin = Vec3(0.0, 0.0, 0.0)
        span = self.rays
        for ix in range(span):
            for iy in range(span):
                direction = Vec3(
                    (ix - span / 2) / span, (iy - span / 2) / span, 1.0
                ).scale(1.0 / 1.5)
                if self.intersect(origin, direction) is not None:
                    hits += 1
        return hits


def workload_classes() -> tuple[type, ...]:
    """The classes a VM must load to instrument the whole suite."""
    return (CompressKernel, DbKernel, RayKernel, Vec3)
