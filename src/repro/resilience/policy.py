"""Retry policies: exponential backoff, seeded jitter, deadline budgets.

A :class:`RetryPolicy` is immutable data — the same policy object can be
shared by every client on a node (or every node in a simulation).  All
randomness is drawn from the caller's ``random.Random``, so a seeded run
retries at exactly the same instants every time.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class RetryPolicy:
    """How a client retries a failed request.

    ``max_attempts`` counts the *initial* attempt too: ``1`` means never
    retry.  ``deadline`` bounds the whole exchange — a retry is only
    scheduled while ``now + backoff`` stays within ``deadline`` seconds
    of the first send, so a policy can promise "keep trying for one
    lease term, then give up".
    """

    max_attempts: int = 3
    initial_backoff: float = 0.25
    multiplier: float = 2.0
    max_backoff: float = 5.0
    #: Fraction of each backoff randomized away (0 = none, 0.5 = the
    #: delay lands uniformly in [0.5·b, b]).  Jitter decorrelates the
    #: retry storms of many clients that failed at the same instant.
    jitter: float = 0.5
    #: Overall time budget in seconds from the first send; None = only
    #: ``max_attempts`` bounds the exchange.
    deadline: float | None = None
    #: Retry replies that carry a remote exception (usually a bad idea —
    #: the request *arrived*; only enable for known-transient faults).
    retry_remote_errors: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if not (0.0 <= self.jitter <= 1.0):
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Delay before retry number ``attempt`` (1 = first retry)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        base = self.initial_backoff * self.multiplier ** (attempt - 1)
        base = min(base, self.max_backoff)
        if self.jitter and base > 0:
            base -= rng.uniform(0, self.jitter * base)
        return base

    def allows_retry(self, attempt: int, elapsed: float, backoff: float) -> bool:
        """May attempt ``attempt + 1`` start, ``elapsed`` s after the first?"""
        if attempt >= self.max_attempts:
            return False
        if self.deadline is not None and elapsed + backoff >= self.deadline:
            return False
        return True

    def with_deadline(self, deadline: float | None) -> "RetryPolicy":
        """A copy of this policy with a different deadline budget."""
        return replace(self, deadline=deadline)

    def worst_case_duration(self, per_attempt_timeout: float) -> float:
        """Upper bound on how long an exchange under this policy can take."""
        total = 0.0
        for attempt in range(1, self.max_attempts + 1):
            total += per_attempt_timeout
            if attempt < self.max_attempts:
                total += min(
                    self.initial_backoff * self.multiplier ** (attempt - 1),
                    self.max_backoff,
                )
        if self.deadline is not None:
            return min(total, self.deadline + per_attempt_timeout)
        return total if math.isfinite(total) else self.deadline or total


#: The do-nothing policy: a single attempt, no backoff.  Clients built on
#: :class:`~repro.resilience.client.ResilientClient` behave exactly like
#: bare ``Transport.request`` under it.
NO_RETRY = RetryPolicy(max_attempts=1, initial_backoff=0.0, jitter=0.0)
