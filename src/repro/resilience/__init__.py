"""Recovery policy as a pluggable layer.

Every protocol client above the raw transport (extension delivery, lease
renewal, discovery registration) faces the same hostile radio, and the
paper's answer — leases, renewals, reconciliation — assumes requests are
retried rather than abandoned on the first lost datagram.  Following the
policy-free-middleware argument (Dearle et al.), the *mechanism* lives
here and the *policy* is data:

- :class:`RetryPolicy` — exponential backoff with seeded jitter and an
  overall deadline budget;
- :class:`CircuitBreaker` — per-peer failure accounting that stops
  hammering a peer that is clearly down, with half-open probing;
- :class:`ResilientClient` — a transport-side client combining both:
  ``call()`` looks like ``Transport.request`` but retries retryable
  failures under the policy and fails fast while a peer's circuit is
  open.

Everything is driven by the simulation clock and seeded RNGs, so chaos
runs are reproducible; every retry and breaker transition is recorded
through the telemetry runtime.
"""

from repro.resilience.breaker import BreakerState, CircuitBreaker
from repro.resilience.client import ResilientClient
from repro.resilience.policy import NO_RETRY, RetryPolicy

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "NO_RETRY",
    "ResilientClient",
    "RetryPolicy",
]
