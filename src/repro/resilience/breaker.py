"""Per-peer circuit breakers.

When a peer stops answering, every further request costs a full timeout
of silence and a round of radio traffic.  A :class:`CircuitBreaker`
tracks consecutive failures per peer and, past a threshold, *opens*:
calls fail immediately and locally.  After ``recovery_time`` the breaker
turns *half-open* and lets a single probe through — its outcome decides
between closing (peer is back) and re-opening (still gone).

The breaker reads time from a :class:`~repro.util.clock.Clock`, so in a
simulation the whole open/half-open dance is deterministic virtual time.
State transitions are recorded as telemetry events
(``resilience.breaker``), which makes "why did this request never go on
the wire" visible in traces.
"""

from __future__ import annotations

import enum
import logging

from repro.telemetry import runtime as _telemetry
from repro.util.clock import Clock

logger = logging.getLogger(__name__)

#: Consecutive failures that open a circuit.
DEFAULT_FAILURE_THRESHOLD = 5
#: Seconds an open circuit waits before allowing a half-open probe.
DEFAULT_RECOVERY_TIME = 10.0


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Failure accounting for one peer, with half-open probing."""

    __slots__ = (
        "peer",
        "owner",
        "clock",
        "failure_threshold",
        "recovery_time",
        "state",
        "failures",
        "opened_at",
        "probe_in_flight",
        "times_opened",
    )

    def __init__(
        self,
        peer: str,
        clock: Clock,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        recovery_time: float = DEFAULT_RECOVERY_TIME,
        owner: str = "",
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.peer = peer
        self.owner = owner
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.state = BreakerState.CLOSED
        self.failures = 0
        self.opened_at = 0.0
        #: True while the single half-open probe is outstanding.
        self.probe_in_flight = False
        self.times_opened = 0

    # -- gatekeeping ------------------------------------------------------------

    def allows(self) -> bool:
        """May a request to this peer go on the wire right now?

        An open breaker flips to half-open once ``recovery_time`` has
        elapsed; the first caller after that gets the probe slot, later
        callers are rejected until the probe resolves.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if self.clock.now() - self.opened_at >= self.recovery_time:
                self._transition(BreakerState.HALF_OPEN)
            else:
                return False
        # Half-open: exactly one probe at a time.
        if self.probe_in_flight:
            return False
        self.probe_in_flight = True
        return True

    # -- outcome reporting --------------------------------------------------------

    def record_success(self) -> None:
        """A request to the peer completed (any reply counts as alive)."""
        self.probe_in_flight = False
        self.failures = 0
        if self.state is not BreakerState.CLOSED:
            self._transition(BreakerState.CLOSED)

    def record_failure(self) -> None:
        """A request to the peer failed to complete (timeout-class)."""
        self.probe_in_flight = False
        self.failures += 1
        if self.state is BreakerState.HALF_OPEN:
            self._reopen()
        elif (
            self.state is BreakerState.CLOSED
            and self.failures >= self.failure_threshold
        ):
            self._reopen()

    # -- plumbing ------------------------------------------------------------------

    def _reopen(self) -> None:
        self.opened_at = self.clock.now()
        self.times_opened += 1
        self._transition(BreakerState.OPEN)

    def _transition(self, state: BreakerState) -> None:
        previous, self.state = self.state, state
        logger.debug(
            "breaker %s->%s: %s -> %s", self.owner, self.peer,
            previous.value, state.value,
        )
        recorder = _telemetry.get_recorder()
        recorder.count(
            "resilience.breaker.transitions",
            owner=self.owner,
            peer=self.peer,
            to=state.value,
        )
        recorder.event(
            "resilience.breaker",
            owner=self.owner,
            peer=self.peer,
            state=state.value,
            failures=self.failures,
        )

    def __repr__(self) -> str:
        return (
            f"<CircuitBreaker {self.owner}->{self.peer} {self.state.value} "
            f"failures={self.failures}>"
        )
