"""The retrying request client.

:class:`ResilientClient` wraps one node's :class:`~repro.net.transport.Transport`
with recovery policy: failed requests are retried under a
:class:`~repro.resilience.policy.RetryPolicy` (exponential backoff,
seeded jitter, deadline budget) and every peer gets a
:class:`~repro.resilience.breaker.CircuitBreaker` so a dead peer costs
one timeout, not one per call.

The call contract is the transport's: exactly one of ``on_reply`` /
``on_error`` fires, later, never synchronously inside :meth:`call`.
Each retry is a *fresh* transport request (new request id) — the server
side never sees the same id twice, so reply matching stays exact.
Timeout-class failures are retryable; a :class:`RemoteError` means the
request arrived and the handler raised, which a retry would only repeat
(opt in per policy for known-transient faults).
"""

from __future__ import annotations

import logging
import random
import zlib
from typing import Any

from repro.errors import CircuitOpenError, RequestTimeout
from repro.net.transport import OnError, OnReply, RemoteError, Transport
from repro.resilience.breaker import (
    DEFAULT_FAILURE_THRESHOLD,
    DEFAULT_RECOVERY_TIME,
    CircuitBreaker,
)
from repro.resilience.policy import NO_RETRY, RetryPolicy
from repro.sim.kernel import Simulator
from repro.telemetry import runtime as _telemetry

logger = logging.getLogger(__name__)


def _under(context: Any, fn: Any, *args: Any) -> Any:
    """Run ``fn`` with ``context`` ambient (no-op when context is None).

    Retries and breaker bookkeeping run from timer callbacks, where the
    originating request's span context is long gone — re-activating the
    context captured at :meth:`ResilientClient.call` time keeps their
    telemetry events stamped onto the right trace.
    """
    if context is None:
        return fn(*args)
    token = _telemetry.activate(context)
    try:
        return fn(*args)
    finally:
        _telemetry.deactivate(token)


class ResilientClient:
    """Retry + circuit-breaker front end over one node's transport."""

    def __init__(
        self,
        transport: Transport,
        simulator: Simulator,
        policy: RetryPolicy | None = None,
        failure_threshold: int | None = DEFAULT_FAILURE_THRESHOLD,
        recovery_time: float = DEFAULT_RECOVERY_TIME,
        rng: random.Random | None = None,
        name: str | None = None,
    ):
        self.transport = transport
        self.simulator = simulator
        self.policy = policy or NO_RETRY
        #: None disables circuit breaking entirely.
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.name = name or f"{transport.node.node_id}.client"
        # Seeded per client name: deterministic jitter, decorrelated
        # between nodes.
        self._rng = rng or random.Random(zlib.crc32(self.name.encode()))
        self._breakers: dict[str, CircuitBreaker] = {}
        self.retries = 0
        self.exhausted = 0
        self.rejected = 0

    # -- breakers ----------------------------------------------------------------

    def breakers(self) -> dict[str, CircuitBreaker]:
        """All breakers this client has minted so far, keyed by peer."""
        return dict(self._breakers)

    def breaker(self, peer: str) -> CircuitBreaker | None:
        """The breaker guarding ``peer`` (None if breaking is disabled)."""
        if self.failure_threshold is None:
            return None
        breaker = self._breakers.get(peer)
        if breaker is None:
            breaker = self._breakers[peer] = CircuitBreaker(
                peer,
                self.simulator.clock,
                failure_threshold=self.failure_threshold,
                recovery_time=self.recovery_time,
                owner=self.name,
            )
        return breaker

    # -- calls -------------------------------------------------------------------

    def call(
        self,
        destination: str,
        operation: str,
        body: Any = None,
        on_reply: OnReply | None = None,
        on_error: OnError | None = None,
        timeout: float | None = None,
        policy: RetryPolicy | None = None,
    ) -> None:
        """Send a request, retrying under the policy until it succeeds.

        Exactly one of the callbacks fires, asynchronously.  ``policy``
        overrides the client default for this call.
        """
        effective = policy or self.policy
        started = self.simulator.now
        self._attempt(
            destination, operation, body, on_reply, on_error,
            timeout, effective, attempt=1, started=started, last_error=None,
            context=_telemetry.current_context(),
        )

    def _attempt(
        self,
        destination: str,
        operation: str,
        body: Any,
        on_reply: OnReply | None,
        on_error: OnError | None,
        timeout: float | None,
        policy: RetryPolicy,
        attempt: int,
        started: float,
        last_error: Exception | None,
        context: Any = None,
    ) -> None:
        breaker = self.breaker(destination)
        if breaker is not None and not _under(context, breaker.allows):
            self._breaker_rejected(
                destination, operation, body, on_reply, on_error,
                timeout, policy, attempt, started, context,
            )
            return

        per_attempt = (
            timeout if timeout is not None else self.transport.default_timeout
        )
        if policy.deadline is not None:
            remaining = policy.deadline - (self.simulator.now - started)
            per_attempt = max(min(per_attempt, remaining), 1e-6)

        def reply(result: Any) -> None:
            if breaker is not None:
                _under(context, breaker.record_success)
            if on_reply is not None:
                on_reply(result)

        def error(exc: Exception) -> None:
            _under(
                context, self._failed,
                exc, destination, operation, body, on_reply, on_error,
                timeout, policy, attempt, started, breaker, context,
            )

        self.transport.request(
            destination, operation, body,
            on_reply=reply, on_error=error, timeout=per_attempt,
        )

    def _failed(
        self,
        exc: Exception,
        destination: str,
        operation: str,
        body: Any,
        on_reply: OnReply | None,
        on_error: OnError | None,
        timeout: float | None,
        policy: RetryPolicy,
        attempt: int,
        started: float,
        breaker: CircuitBreaker | None,
        context: Any = None,
    ) -> None:
        # A RemoteError means the peer is alive and answering; only
        # transport-level silence counts against its breaker.
        if breaker is not None:
            if isinstance(exc, RemoteError):
                breaker.record_success()
            else:
                breaker.record_failure()
        if not self._retryable(exc, policy):
            self._give_up(exc, operation, destination, attempt, on_error)
            return
        backoff = policy.backoff(attempt, self._rng)
        elapsed = self.simulator.now - started
        if not policy.allows_retry(attempt, elapsed, backoff):
            self.exhausted += 1
            _telemetry.get_recorder().count(
                "resilience.exhausted",
                client=self.name,
                operation=operation,
                peer=destination,
            )
            self._give_up(exc, operation, destination, attempt, on_error)
            return
        self.retries += 1
        recorder = _telemetry.get_recorder()
        recorder.count(
            "resilience.retries",
            client=self.name,
            operation=operation,
            peer=destination,
        )
        recorder.event(
            "resilience.retry",
            client=self.name,
            operation=operation,
            peer=destination,
            attempt=attempt,
            backoff=backoff,
            error=type(exc).__name__,
        )
        self.simulator.schedule(
            backoff,
            self._attempt,
            destination, operation, body, on_reply, on_error,
            timeout, policy, attempt + 1, started, exc, context,
        )

    def _breaker_rejected(
        self,
        destination: str,
        operation: str,
        body: Any,
        on_reply: OnReply | None,
        on_error: OnError | None,
        timeout: float | None,
        policy: RetryPolicy,
        attempt: int,
        started: float,
        context: Any = None,
    ) -> None:
        """The breaker refused the attempt: treat as an instant failure.

        Retries still back off — one of them may land in the breaker's
        half-open window and become the probe.
        """
        self.rejected += 1
        _telemetry.get_recorder().count(
            "resilience.breaker.rejected",
            client=self.name,
            operation=operation,
            peer=destination,
        )
        exc = CircuitOpenError(destination, operation)
        backoff = policy.backoff(attempt, self._rng)
        elapsed = self.simulator.now - started
        if policy.allows_retry(attempt, elapsed, backoff):
            self.retries += 1
            self.simulator.schedule(
                backoff,
                self._attempt,
                destination, operation, body, on_reply, on_error,
                timeout, policy, attempt + 1, started, exc, context,
            )
        else:
            self.simulator.schedule(
                0.0, self._give_up, exc, operation, destination, attempt, on_error
            )

    @staticmethod
    def _retryable(exc: Exception, policy: RetryPolicy) -> bool:
        if isinstance(exc, RemoteError):
            return policy.retry_remote_errors
        return isinstance(exc, (RequestTimeout, CircuitOpenError))

    def _give_up(
        self,
        exc: Exception,
        operation: str,
        destination: str,
        attempt: int,
        on_error: OnError | None,
    ) -> None:
        logger.debug(
            "%s: %s to %s failed for good after %d attempt(s): %s",
            self.name, operation, destination, attempt, exc,
        )
        if on_error is not None:
            on_error(exc)

    def __repr__(self) -> str:
        return (
            f"<ResilientClient {self.name} retries={self.retries} "
            f"breakers={len(self._breakers)}>"
        )
