"""Wildcard patterns.

PROSE crosscuts use simple ``*`` wildcards to match class and method names
(e.g. all methods whose name starts with ``send``).  This module implements
that matching once, compiled to a regular expression, so both the AOP
signature language (:mod:`repro.aop.signature`) and the discovery attribute
matcher can share it.

Only ``*`` (any run of characters, including none) is special; every other
character matches literally.  Matching is anchored at both ends.
"""

from __future__ import annotations

import re
from functools import lru_cache


@lru_cache(maxsize=4096)
def _compile(pattern: str) -> re.Pattern[str]:
    parts = (re.escape(part) for part in pattern.split("*"))
    return re.compile("^" + ".*".join(parts) + "$")


def wildcard_match(pattern: str, text: str) -> bool:
    """Return True if ``text`` matches ``pattern`` (with ``*`` wildcards)."""
    return _compile(pattern).match(text) is not None


@lru_cache(maxsize=4096)
def wildcard_overlaps(first: str, second: str) -> bool:
    """True if some string matches *both* wildcard patterns.

    This is the symbolic question static crosscut-interference analysis
    asks: can two patterns ever select the same name?  ``send*`` and
    ``*Bytes`` overlap (``sendBytes``); ``send*`` and ``recv*`` do not.

    >>> wildcard_overlaps("send*", "*Bytes")
    True
    >>> wildcard_overlaps("send*", "recv*")
    False
    """
    memo: dict[tuple[int, int], bool] = {}

    def walk(i: int, j: int) -> bool:
        key = (i, j)
        cached = memo.get(key)
        if cached is not None:
            return cached
        if i == len(first) and j == len(second):
            result = True
        elif i < len(first) and first[i] == "*":
            # The star matches nothing, or absorbs one more character of
            # whatever the other pattern will produce.
            result = walk(i + 1, j) or (j < len(second) and walk(i, j + 1))
        elif j < len(second) and second[j] == "*":
            result = walk(i, j + 1) or (i < len(first) and walk(i + 1, j))
        elif i < len(first) and j < len(second) and first[i] == second[j]:
            result = walk(i + 1, j + 1)
        else:
            result = False
        memo[key] = result
        return result

    return walk(0, 0)


class WildcardPattern:
    """A reusable compiled wildcard pattern.

    >>> p = WildcardPattern("send*")
    >>> p.matches("sendBytes")
    True
    >>> p.matches("resend")
    False
    """

    __slots__ = ("pattern", "_regex")

    def __init__(self, pattern: str):
        self.pattern = pattern
        self._regex = _compile(pattern)

    def matches(self, text: str) -> bool:
        """Return True if ``text`` matches this pattern."""
        return self._regex.match(text) is not None

    def overlaps(self, other: "WildcardPattern | str") -> bool:
        """True if some string matches both this pattern and ``other``."""
        other_pattern = other.pattern if isinstance(other, WildcardPattern) else other
        return wildcard_overlaps(self.pattern, other_pattern)

    @property
    def is_universal(self) -> bool:
        """True if this pattern matches every string (it is just ``*``)."""
        return self.pattern == "*"

    @property
    def is_anchored(self) -> bool:
        """True if this pattern contains no wildcard (a literal name)."""
        return "*" not in self.pattern

    def __eq__(self, other: object) -> bool:
        return isinstance(other, WildcardPattern) and other.pattern == self.pattern

    def __hash__(self) -> int:
        return hash((WildcardPattern, self.pattern))

    def __repr__(self) -> str:
        return f"WildcardPattern({self.pattern!r})"
