"""Wildcard patterns.

PROSE crosscuts use simple ``*`` wildcards to match class and method names
(e.g. all methods whose name starts with ``send``).  This module implements
that matching once, compiled to a regular expression, so both the AOP
signature language (:mod:`repro.aop.signature`) and the discovery attribute
matcher can share it.

Only ``*`` (any run of characters, including none) is special; every other
character matches literally.  Matching is anchored at both ends.
"""

from __future__ import annotations

import re
from functools import lru_cache


@lru_cache(maxsize=4096)
def _compile(pattern: str) -> re.Pattern[str]:
    parts = (re.escape(part) for part in pattern.split("*"))
    return re.compile("^" + ".*".join(parts) + "$")


def wildcard_match(pattern: str, text: str) -> bool:
    """Return True if ``text`` matches ``pattern`` (with ``*`` wildcards)."""
    return _compile(pattern).match(text) is not None


class WildcardPattern:
    """A reusable compiled wildcard pattern.

    >>> p = WildcardPattern("send*")
    >>> p.matches("sendBytes")
    True
    >>> p.matches("resend")
    False
    """

    __slots__ = ("pattern", "_regex")

    def __init__(self, pattern: str):
        self.pattern = pattern
        self._regex = _compile(pattern)

    def matches(self, text: str) -> bool:
        """Return True if ``text`` matches this pattern."""
        return self._regex.match(text) is not None

    @property
    def is_universal(self) -> bool:
        """True if this pattern matches every string (it is just ``*``)."""
        return self.pattern == "*"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, WildcardPattern) and other.pattern == self.pattern

    def __hash__(self) -> int:
        return hash((WildcardPattern, self.pattern))

    def __repr__(self) -> str:
        return f"WildcardPattern({self.pattern!r})"
