"""Identifier generation.

Components across the platform need short, unique, human-readable ids
(node ids, lease ids, extension ids, message ids).  A per-process
:class:`IdGenerator` produces ``prefix:N`` strings deterministically, which
keeps simulation runs reproducible (no UUID randomness in the hot path).
"""

from __future__ import annotations

import itertools
import threading


class IdGenerator:
    """Generates sequential ``prefix:N`` identifiers, thread-safely.

    Separate instances count independently; a single instance never
    repeats an id.
    """

    def __init__(self):
        self._counters: dict[str, itertools.count] = {}
        self._lock = threading.Lock()

    def next(self, prefix: str) -> str:
        """Return the next id for ``prefix``, e.g. ``next('lease')`` → ``'lease:0'``."""
        with self._lock:
            counter = self._counters.setdefault(prefix, itertools.count())
            return f"{prefix}:{next(counter)}"

    def reset(self) -> None:
        """Forget all counters (mainly for tests)."""
        with self._lock:
            self._counters.clear()


_DEFAULT = IdGenerator()


def fresh_id(prefix: str) -> str:
    """Return a fresh id from the process-wide default generator."""
    return _DEFAULT.next(prefix)
