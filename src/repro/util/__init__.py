"""Shared utilities: clocks, identifiers, wildcard patterns, event signals."""

from repro.util.clock import Clock, ManualClock, SystemClock
from repro.util.ids import IdGenerator, fresh_id
from repro.util.patterns import WildcardPattern, wildcard_match
from repro.util.signal import Signal

__all__ = [
    "Clock",
    "ManualClock",
    "SystemClock",
    "IdGenerator",
    "fresh_id",
    "WildcardPattern",
    "wildcard_match",
    "Signal",
]
