"""Clock abstractions.

Every time-dependent component of the platform (leases, discovery
announcements, the movement store, ...) reads time from a :class:`Clock`
object instead of calling :func:`time.monotonic` directly.  This makes the
entire middleware stack runnable both in real time (``SystemClock``) and
under the deterministic discrete-event simulator (``SimClock`` in
:mod:`repro.sim.kernel`, which subclasses :class:`Clock`).

Times are floats in seconds; the epoch is clock-specific.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod

from repro.errors import ClockError


class Clock(ABC):
    """A source of monotonic time in seconds."""

    @abstractmethod
    def now(self) -> float:
        """Return the current time in seconds."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} now={self.now():.6f}>"


class SystemClock(Clock):
    """Wall-clock time backed by :func:`time.monotonic`."""

    def now(self) -> float:
        return time.monotonic()


class ManualClock(Clock):
    """A clock advanced explicitly by the caller.

    Useful in unit tests that need precise control over time without
    involving the full simulation kernel::

        clock = ManualClock()
        lease = grantor.grant(..., clock=clock)
        clock.advance(lease.duration + 1.0)
        assert lease.expired
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by ``delta`` seconds and return the new time."""
        if delta < 0:
            raise ClockError(f"cannot advance clock by negative delta {delta}")
        self._now += delta
        return self._now

    def set(self, value: float) -> None:
        """Jump the clock to an absolute time (must not move backwards)."""
        if value < self._now:
            raise ClockError(
                f"cannot move clock backwards from {self._now} to {value}"
            )
        self._now = float(value)
