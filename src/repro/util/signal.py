"""A minimal synchronous publish/subscribe signal.

Several layers expose lifecycle events (extension inserted/withdrawn, lease
expired, node discovered).  :class:`Signal` is the one mechanism they all
use: listeners subscribe with a callable, publishers ``fire`` with
positional arguments.  Listener errors are collected, not propagated, so a
faulty observer cannot corrupt protocol state — mirroring how the paper's
platform keeps extension failures away from the application.
"""

from __future__ import annotations

import logging
from typing import Any, Callable

logger = logging.getLogger(__name__)

Listener = Callable[..., Any]


class Signal:
    """A named, synchronous event with fan-out to subscribed listeners."""

    def __init__(self, name: str = "signal"):
        self.name = name
        self._listeners: list[Listener] = []

    def connect(self, listener: Listener) -> Listener:
        """Subscribe ``listener``; returns it so the call can decorate."""
        self._listeners.append(listener)
        return listener

    def disconnect(self, listener: Listener) -> None:
        """Unsubscribe ``listener`` (no error if it is not subscribed)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def fire(self, *args: Any, **kwargs: Any) -> list[Exception]:
        """Invoke every listener; return the exceptions raised (if any)."""
        errors: list[Exception] = []
        for listener in list(self._listeners):
            try:
                listener(*args, **kwargs)
            except Exception as exc:  # noqa: BLE001 - observer isolation
                logger.warning("listener on %s failed: %s", self.name, exc)
                errors.append(exc)
        return errors

    def __len__(self) -> int:
        return len(self._listeners)

    def __repr__(self) -> str:
        return f"Signal({self.name!r}, listeners={len(self._listeners)})"
