"""Remote events (the Jini distributed event model, reduced).

Listeners register a template with the lookup service and receive a
:class:`RemoteEvent` whenever a matching service appears, expires, or is
cancelled.  Events carry a per-registration sequence number so listeners
can detect loss or reordering on the radio.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.discovery.service import ServiceItem


class EventKind(enum.Enum):
    """What happened to a matching service registration."""

    REGISTERED = "registered"
    EXPIRED = "expired"
    CANCELLED = "cancelled"


@dataclass(frozen=True)
class RemoteEvent:
    """One notification delivered to a remote listener."""

    kind: EventKind
    item: ServiceItem
    registrar: str  # node id of the lookup service
    sequence: int

    def __repr__(self) -> str:
        return (
            f"<RemoteEvent {self.kind.value} {self.item.describe()} "
            f"seq={self.sequence}>"
        )
