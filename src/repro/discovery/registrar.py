"""The lookup service (registrar).

Runs on one node (typically the base station) and offers, over the
transport layer:

=================  ==========================================================
``lookup.register``  register a :class:`ServiceItem` under a fresh lease
``lookup.renew``     extend a registration's lease
``lookup.renew_batch``  extend many leases in one round trip (fleet trees)
``lookup.cancel``    drop a registration
``lookup.query``     all items matching a :class:`ServiceTemplate`
``lookup.listen``    leased remote-event subscription for a template
=================  ==========================================================

and broadcasts periodic ``lookup.announce`` messages so newcomers find it
(the Jini announcement protocol); a ``lookup.probe`` broadcast from a
client is answered with a unicast announce (the request protocol).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Any

from repro.discovery.events import EventKind, RemoteEvent
from repro.discovery.service import ServiceItem, ServiceTemplate
from repro.errors import LeaseExpiredError, RegistrationError
from repro.leasing.lease import Lease
from repro.leasing.table import LeaseTable
from repro.net.transport import Transport
from repro.sim.kernel import Simulator
from repro.sim.timers import PeriodicTimer
from repro.util.signal import Signal

logger = logging.getLogger(__name__)

ANNOUNCE = "lookup.announce"
PROBE = "lookup.probe"
REGISTER = "lookup.register"
RENEW = "lookup.renew"
RENEW_BATCH = "lookup.renew_batch"
CANCEL = "lookup.cancel"
QUERY = "lookup.query"
LISTEN = "lookup.listen"

#: Seconds between registrar announcements.
DEFAULT_ANNOUNCE_INTERVAL = 5.0
#: Longest registration lease a registrar will grant.
DEFAULT_MAX_LEASE = 30.0


@dataclass
class _Listener:
    """One leased remote-event subscription."""

    template: ServiceTemplate
    node_id: str
    operation: str
    sequence: int = 0


class LookupService:
    """A Jini-style lookup service bound to one node's transport."""

    def __init__(
        self,
        transport: Transport,
        simulator: Simulator,
        announce_interval: float = DEFAULT_ANNOUNCE_INTERVAL,
        max_lease: float = DEFAULT_MAX_LEASE,
        sweep_interval: float | None = None,
    ):
        """``sweep_interval`` switches the lease tables to batched
        expiry (one sweep timer per table instead of one kernel event
        per registration) — the fleet-scale mode; ``None`` keeps exact
        per-lease expiry."""
        self.transport = transport
        self.simulator = simulator
        self.node_id = transport.node.node_id
        #: Fires with (item,) when a service registers.
        self.on_registered = Signal("lookup.on_registered")
        #: Fires with (item, kind) when a registration ends.
        self.on_deregistered = Signal("lookup.on_deregistered")

        self._registrations = LeaseTable(
            simulator,
            max_duration=max_lease,
            name=f"{self.node_id}.registrations",
            sweep_interval=sweep_interval,
        )
        self._registrations.on_expired.connect(self._registration_gone(EventKind.EXPIRED))
        self._registrations.on_cancelled.connect(
            self._registration_gone(EventKind.CANCELLED)
        )
        self._listeners = LeaseTable(
            simulator,
            max_duration=max_lease,
            name=f"{self.node_id}.listeners",
            sweep_interval=sweep_interval,
        )
        self._local_items: list[ServiceItem] = []

        transport.register(REGISTER, self._serve_register)
        transport.register(RENEW, self._serve_renew)
        transport.register(RENEW_BATCH, self._serve_renew_batch)
        transport.register(CANCEL, self._serve_cancel)
        transport.register(QUERY, self._serve_query)
        transport.register(LISTEN, self._serve_listen)
        transport.register(PROBE, self._serve_probe)

        self._announcer = PeriodicTimer(
            simulator, announce_interval, self._announce, name=f"{self.node_id}.announce"
        )

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "LookupService":
        """Begin announcing; returns self for chaining."""
        self._announce()
        self._announcer.start()
        return self

    def stop(self) -> None:
        """Stop announcing (registrations keep expiring naturally)."""
        self._announcer.stop()

    def reset_volatile(self) -> None:
        """Crash model: all leased state vanishes, silently.

        Leased registrations and listener subscriptions are in-memory
        only; locally registered items are part of the co-hosted
        process's configuration and come back with it.  Clients discover
        the loss when their next renewal is refused and must re-register
        (their reconciliation loop does exactly that).
        """
        self._registrations.reset_volatile()
        self._listeners.reset_volatile()

    def announce(self) -> None:
        """Broadcast one announcement immediately (besides the periodic
        cadence) — e.g. right after a restart, so clients in range
        re-register without waiting out the announce interval."""
        self._announce()

    # -- queries (local convenience) ------------------------------------------------

    def register_local(self, item: ServiceItem) -> None:
        """Register a service co-hosted with the registrar itself.

        Local services (the base station's own store, its mirror hub)
        need no lease — they live and die with the registrar process.
        """
        self._local_items.append(item)
        self.on_registered.fire(item)
        self._publish(EventKind.REGISTERED, item)

    def items(self, template: ServiceTemplate | None = None) -> list[ServiceItem]:
        """Currently registered items, optionally filtered by template."""
        found = list(self._local_items)
        found.extend(lease.resource for lease in self._registrations.active())
        if template is None:
            return found
        return [item for item in found if template.matches(item)]

    def registration_count(self) -> int:
        """Number of live *leased* registrations (local items excluded)."""
        return len(self._registrations)

    # -- protocol handlers --------------------------------------------------------------

    def _serve_register(self, sender: str, body: dict[str, Any]) -> dict[str, Any]:
        item: ServiceItem = body["item"]
        duration: float = body.get("duration", DEFAULT_MAX_LEASE)
        if not isinstance(item, ServiceItem):
            raise RegistrationError(f"expected a ServiceItem, got {item!r}")
        # Re-registration of the same service id replaces the old lease.
        for lease in self._registrations.active():
            if lease.resource.service_id == item.service_id:
                self._registrations.cancel(lease.lease_id)
        lease = self._registrations.grant(sender, item, duration)
        logger.debug("%s: registered %s", self.node_id, item.describe())
        self.on_registered.fire(item)
        self._publish(EventKind.REGISTERED, item)
        return {"lease_id": lease.lease_id, "duration": lease.duration}

    def _serve_renew(self, sender: str, body: dict[str, Any]) -> dict[str, Any]:
        lease_id = body["lease_id"]
        table = self._listeners if lease_id in self._listeners else self._registrations
        lease = table.renew(lease_id, body.get("duration"))
        return {"duration": lease.duration}

    def _serve_renew_batch(self, sender: str, body: dict[str, Any]) -> dict[str, Any]:
        """Renew many leases in one round trip (the aggregation-tree path).

        A cluster registrar renewing on behalf of the heads below it
        sends one ``lookup.renew_batch`` per sweep instead of one
        ``lookup.renew`` per lease.  Unknown/expired ids are reported
        back rather than failing the whole batch — the caller
        re-registers exactly the losers.
        """
        renewed: dict[str, float] = {}
        unknown: list[str] = []
        duration = body.get("duration")
        for lease_id in body["lease_ids"]:
            table = (
                self._listeners if lease_id in self._listeners else self._registrations
            )
            try:
                lease = table.renew(lease_id, duration)
            except LeaseExpiredError:
                unknown.append(lease_id)
            else:
                renewed[lease_id] = lease.duration
        return {"renewed": renewed, "unknown": unknown}

    def _serve_cancel(self, sender: str, body: dict[str, Any]) -> dict[str, Any]:
        lease_id = body["lease_id"]
        table = self._listeners if lease_id in self._listeners else self._registrations
        table.cancel(lease_id)
        return {}

    def _serve_query(self, sender: str, body: dict[str, Any]) -> dict[str, Any]:
        template: ServiceTemplate = body["template"]
        return {"items": self.items(template)}

    def _serve_listen(self, sender: str, body: dict[str, Any]) -> dict[str, Any]:
        listener = _Listener(body["template"], sender, body["operation"])
        duration: float = body.get("duration", DEFAULT_MAX_LEASE)
        lease = self._listeners.grant(sender, listener, duration)
        return {"lease_id": lease.lease_id, "duration": lease.duration}

    def _serve_probe(self, sender: str, body: Any) -> None:
        # Probes arrive as broadcast notifications; answer with a unicast
        # announce so the prober learns this registrar immediately.
        self.transport.notify(sender, ANNOUNCE, {"registrar": self.node_id})

    # -- events ---------------------------------------------------------------------------

    def _publish(self, kind: EventKind, item: ServiceItem) -> None:
        for lease in self._listeners.active():
            listener: _Listener = lease.resource
            if not listener.template.matches(item):
                continue
            listener.sequence += 1
            event = RemoteEvent(kind, item, self.node_id, listener.sequence)
            self.transport.notify(listener.node_id, listener.operation, event)

    def _registration_gone(self, kind: EventKind):
        def handler(lease: Lease) -> None:
            item: ServiceItem = lease.resource
            logger.debug("%s: %s %s", self.node_id, kind.value, item.describe())
            self.on_deregistered.fire(item, kind)
            self._publish(kind, item)
        return handler

    def _announce(self) -> None:
        self.transport.broadcast(ANNOUNCE, {"registrar": self.node_id})

    def __repr__(self) -> str:
        return f"<LookupService on {self.node_id} items={len(self._registrations)}>"
