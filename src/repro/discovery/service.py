"""Service descriptions and template matching.

A :class:`ServiceItem` describes one exported service: the interface it
implements (by name — the Jini analogue of a Java interface type), the
node providing it, and a dictionary of descriptive attributes.  A
:class:`ServiceTemplate` matches items the Jini way: wildcard on the
interface name plus attribute-subset equality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.util.ids import fresh_id
from repro.util.patterns import wildcard_match


@dataclass(frozen=True)
class ServiceItem:
    """One exported service."""

    interface: str
    provider: str  # node id
    attributes: Mapping[str, Any] = field(default_factory=dict)
    service_id: str = field(default_factory=lambda: fresh_id("svc"))

    def describe(self) -> str:
        """Human-readable one-liner for logs and UIs."""
        attrs = ", ".join(f"{k}={v}" for k, v in sorted(self.attributes.items()))
        return f"{self.interface}@{self.provider}({attrs})"

    def __repr__(self) -> str:
        return f"<ServiceItem {self.describe()} id={self.service_id}>"


@dataclass(frozen=True)
class ServiceTemplate:
    """A query over service items.

    ``interface`` is a wildcard pattern; ``attributes`` must be a subset
    of the item's attributes (exact value equality).  ``provider``
    optionally pins the providing node.
    """

    interface: str = "*"
    attributes: Mapping[str, Any] = field(default_factory=dict)
    provider: str | None = None

    def matches(self, item: ServiceItem) -> bool:
        """True if ``item`` satisfies this template."""
        if not wildcard_match(self.interface, item.interface):
            return False
        if self.provider is not None and self.provider != item.provider:
            return False
        for key, value in self.attributes.items():
            if key not in item.attributes or item.attributes[key] != value:
                return False
        return True

    def __repr__(self) -> str:
        parts = [self.interface]
        if self.provider:
            parts.append(f"provider={self.provider}")
        if self.attributes:
            parts.append(str(dict(self.attributes)))
        return f"<ServiceTemplate {' '.join(parts)}>"
