"""Spontaneous networking (Jini workalike).

MIDAS detects adaptable nodes through a platform for spontaneous
networking; the paper uses Jini.  This package reproduces the parts of
Jini the platform needs:

- :class:`~repro.discovery.registrar.LookupService` — the registrar:
  leased service registrations, template lookup, remote-event
  notifications on registration changes, periodic announcements;
- :class:`~repro.discovery.client.DiscoveryClient` — the per-node join
  protocol: listens for announcements, probes actively, registers the
  node's services and keeps the registrations alive;
- :class:`~repro.discovery.service.ServiceItem` /
  :class:`~repro.discovery.service.ServiceTemplate` — service descriptions
  and attribute matching.
"""

from repro.discovery.client import DiscoveryClient, ServiceRegistration
from repro.discovery.events import EventKind, RemoteEvent
from repro.discovery.registrar import LookupService
from repro.discovery.service import ServiceItem, ServiceTemplate

__all__ = [
    "DiscoveryClient",
    "EventKind",
    "LookupService",
    "RemoteEvent",
    "ServiceItem",
    "ServiceRegistration",
    "ServiceTemplate",
]
