"""The per-node discovery (join) protocol.

A :class:`DiscoveryClient` keeps a node joined to the spontaneous network:

- it listens for registrar announcements and probes actively on start, so
  entering radio range of a base station is noticed within one announce
  interval;
- registrars not heard from for several intervals are considered lost —
  the physical analogue is walking out of a hall;
- services registered through the client are automatically (re)registered
  with every *known* registrar, their leases renewed until cancelled.

The adaptation service of every MIDAS node advertises itself through one
of these ("the adaptation service advertises itself as a Jini service,
thereby announcing its presence to the environment", §3.3).
"""

from __future__ import annotations

import logging
from typing import Any, Callable

from repro.discovery.events import RemoteEvent
from repro.discovery.registrar import (
    ANNOUNCE,
    CANCEL,
    DEFAULT_ANNOUNCE_INTERVAL,
    LISTEN,
    PROBE,
    QUERY,
    REGISTER,
    RENEW,
)
from repro.discovery.service import ServiceItem, ServiceTemplate
from repro.leasing.renewer import RenewalAgent, TrackedLease
from repro.net.transport import RemoteError, Transport
from repro.resilience.client import ResilientClient
from repro.resilience.policy import RetryPolicy
from repro.sim.kernel import Simulator
from repro.sim.timers import PeriodicTimer
from repro.util.signal import Signal

logger = logging.getLogger(__name__)

#: Announce intervals of silence after which a registrar is declared lost.
STALENESS_FACTOR = 3.0
#: Lease duration requested for service registrations.
DEFAULT_REGISTRATION_LEASE = 15.0


class ServiceRegistration:
    """Client-side handle for one item registered via the client."""

    def __init__(self, item: ServiceItem, duration: float):
        self.item = item
        self.duration = duration
        #: registrar node id -> lease id held there.
        self.leases: dict[str, str] = {}
        self.cancelled = False

    def registered_at(self) -> list[str]:
        """Registrars currently holding a lease for this item."""
        return list(self.leases)

    def __repr__(self) -> str:
        return (
            f"<ServiceRegistration {self.item.describe()} "
            f"registrars={sorted(self.leases)}>"
        )


class EventSubscription:
    """Client-side handle for one remote-event subscription."""

    def __init__(
        self,
        template: ServiceTemplate,
        listener: Callable[[RemoteEvent], None],
        operation: str,
        duration: float,
    ):
        self.template = template
        self.listener = listener
        self.operation = operation
        self.duration = duration
        #: registrar node id -> listener lease id held there.
        self.leases: dict[str, str] = {}
        self.cancelled = False

    def __repr__(self) -> str:
        return f"<EventSubscription {self.template!r} registrars={sorted(self.leases)}>"


class DiscoveryClient:
    """Joins a node to all registrars in radio range."""

    def __init__(
        self,
        transport: Transport,
        simulator: Simulator,
        announce_interval: float = DEFAULT_ANNOUNCE_INTERVAL,
        retry_policy: RetryPolicy | None = None,
    ):
        self.transport = transport
        self.simulator = simulator
        self.node_id = transport.node.node_id
        self.announce_interval = announce_interval
        #: When a policy is given, register/listen requests retry with
        #: backoff + circuit breaking and renewals back off on failure;
        #: None keeps the classic fire-and-reconcile behavior.
        self.retry_policy = retry_policy
        self._client = (
            ResilientClient(
                transport,
                simulator,
                policy=retry_policy,
                name=f"{self.node_id}.discovery",
            )
            if retry_policy is not None
            else None
        )
        #: Public read access for inspection (breaker states, retry stats).
        self.resilient_client = self._client
        #: Fires with (registrar_id,) when a new registrar is heard.
        self.on_registrar_found = Signal(f"{self.node_id}.on_registrar_found")
        #: Fires with (registrar_id,) when a registrar goes silent.
        self.on_registrar_lost = Signal(f"{self.node_id}.on_registrar_lost")

        self._registrars: dict[str, float] = {}  # id -> last heard (sim time)
        self._registrations: list[ServiceRegistration] = []
        self._subscriptions: list[EventSubscription] = []
        self._subscription_counter = 0
        self._renewer = RenewalAgent(
            simulator,
            self._renew_lease,
            name=f"{self.node_id}.discovery",
            backoff=retry_policy,
        )
        self._renewer.on_abandoned.connect(self._lease_abandoned)
        self._reaper = PeriodicTimer(
            simulator,
            announce_interval,
            self._reap_stale,
            name=f"{self.node_id}.reaper",
        )
        transport.register(ANNOUNCE, self._heard_announce)

    # -- lifecycle ------------------------------------------------------------------

    def start(self) -> "DiscoveryClient":
        """Probe for registrars and begin staleness tracking."""
        self.probe()
        self._reaper.start()
        return self

    def stop(self) -> None:
        """Stop all periodic activity (registrations will lapse remotely)."""
        self._reaper.stop()
        self._renewer.stop()

    def probe(self) -> None:
        """Actively solicit announcements from registrars in range."""
        self.transport.broadcast(PROBE, {})

    def reset_volatile(self) -> None:
        """Crash model: forget everything learned from the network.

        Known registrars, held leases and in-flight renewals vanish; the
        *declared* registrations and subscriptions survive (they are the
        application's configuration) and will be re-taken at every
        registrar heard after restart.
        """
        for tracked in self._renewer.tracked():
            self._renewer.forget(tracked.lease_id)
        for registration in self._registrations:
            registration.leases.clear()
        for subscription in self._subscriptions:
            subscription.leases.clear()
        self._registrars.clear()

    def _request(
        self,
        destination: str,
        operation: str,
        body: Any,
        on_reply: Callable[[Any], None],
        on_error: Callable[[Exception], None],
    ) -> None:
        if self._client is not None:
            self._client.call(
                destination, operation, body, on_reply=on_reply, on_error=on_error
            )
        else:
            self.transport.request(
                destination, operation, body, on_reply=on_reply, on_error=on_error
            )

    # -- registrar set -----------------------------------------------------------------

    @property
    def registrars(self) -> list[str]:
        """Node ids of registrars currently believed reachable."""
        return list(self._registrars)

    def _heard_announce(self, sender: str, body: dict[str, Any]) -> None:
        registrar = body["registrar"]
        is_new = registrar not in self._registrars
        self._registrars[registrar] = self.simulator.now
        if is_new:
            logger.debug("%s: found registrar %s", self.node_id, registrar)
            self.on_registrar_found.fire(registrar)
            for registration in self._registrations:
                if not registration.cancelled:
                    self._register_with(registration, registrar)
            for subscription in self._subscriptions:
                if not subscription.cancelled:
                    self._listen_with(subscription, registrar)

    def _reap_stale(self) -> None:
        horizon = self.simulator.now - STALENESS_FACTOR * self.announce_interval
        for registrar, heard in list(self._registrars.items()):
            if heard < horizon:
                del self._registrars[registrar]
                self._forget_registrar(registrar)
                logger.debug("%s: lost registrar %s", self.node_id, registrar)
                self.on_registrar_lost.fire(registrar)
        self._reconcile_registrations()

    def _reconcile_registrations(self) -> None:
        """Ensure every live registration holds a lease at every known
        registrar.  Heals one-shot losses: a dropped register request, a
        registration that expired at the registrar during a lossy spell,
        a registrar that restarted."""
        for registration in self._registrations:
            if registration.cancelled:
                continue
            for registrar in self._registrars:
                self._register_with(registration, registrar)
        for subscription in self._subscriptions:
            if subscription.cancelled:
                continue
            for registrar in self._registrars:
                self._listen_with(subscription, registrar)

    def _forget_registrar(self, registrar: str) -> None:
        for registration in self._registrations:
            lease_id = registration.leases.pop(registrar, None)
            if lease_id is not None:
                self._renewer.forget(lease_id)
        for subscription in self._subscriptions:
            lease_id = subscription.leases.pop(registrar, None)
            if lease_id is not None:
                self._renewer.forget(lease_id)

    # -- service registration --------------------------------------------------------------

    def register(
        self, item: ServiceItem, duration: float = DEFAULT_REGISTRATION_LEASE
    ) -> ServiceRegistration:
        """Register ``item`` with every known registrar, now and later."""
        registration = ServiceRegistration(item, duration)
        self._registrations.append(registration)
        for registrar in self._registrars:
            self._register_with(registration, registrar)
        return registration

    def cancel(self, registration: ServiceRegistration) -> None:
        """Cancel ``registration`` everywhere."""
        registration.cancelled = True
        if registration in self._registrations:
            self._registrations.remove(registration)
        for registrar, lease_id in list(registration.leases.items()):
            self._renewer.forget(lease_id)
            self.transport.request(
                registrar,
                CANCEL,
                {"lease_id": lease_id},
                on_error=lambda exc, registrar=registrar: logger.debug(
                    "%s: cancel with %s failed (lease will expire): %s",
                    self.node_id,
                    registrar,
                    exc,
                ),
            )
        registration.leases.clear()

    def _register_with(self, registration: ServiceRegistration, registrar: str) -> None:
        if registrar in registration.leases:
            return

        def on_reply(body: dict[str, Any]) -> None:
            if registration.cancelled or registrar not in self._registrars:
                return
            lease_id = body["lease_id"]
            registration.leases[registrar] = lease_id
            self._renewer.track(
                lease_id,
                registrar,
                body["duration"],
                resource=registration.item,
                context=registration,
            )

        self._request(
            registrar,
            REGISTER,
            {"item": registration.item, "duration": registration.duration},
            on_reply=on_reply,
            on_error=lambda exc: logger.debug(
                "%s: registration with %s failed: %s", self.node_id, registrar, exc
            ),
        )

    # -- remote events ----------------------------------------------------------------------

    def listen(
        self,
        template: ServiceTemplate,
        listener: Callable[[RemoteEvent], None],
        duration: float = DEFAULT_REGISTRATION_LEASE,
    ) -> EventSubscription:
        """Subscribe to registration events matching ``template``.

        The subscription is taken with every known registrar (and with
        registrars discovered later); listener leases are renewed until
        :meth:`cancel_subscription`.  With several registrars in range,
        the same physical service may produce one event per registrar —
        consumers should be idempotent.
        """
        self._subscription_counter += 1
        operation = f"discovery.event.{self.node_id}.{self._subscription_counter}"
        subscription = EventSubscription(template, listener, operation, duration)
        self.transport.register(
            operation, lambda sender, body: subscription.listener(body)
        )
        self._subscriptions.append(subscription)
        for registrar in self._registrars:
            self._listen_with(subscription, registrar)
        return subscription

    def cancel_subscription(self, subscription: EventSubscription) -> None:
        """Stop receiving events for ``subscription``."""
        subscription.cancelled = True
        if subscription in self._subscriptions:
            self._subscriptions.remove(subscription)
        self.transport.unregister(subscription.operation)
        for registrar, lease_id in list(subscription.leases.items()):
            self._renewer.forget(lease_id)
            self.transport.request(
                registrar,
                CANCEL,
                {"lease_id": lease_id},
                on_error=lambda exc, registrar=registrar: logger.debug(
                    "%s: listener cancel with %s failed (lease will expire): %s",
                    self.node_id,
                    registrar,
                    exc,
                ),
            )
        subscription.leases.clear()

    def _listen_with(self, subscription: EventSubscription, registrar: str) -> None:
        if registrar in subscription.leases:
            return

        def on_reply(body: dict[str, Any]) -> None:
            if subscription.cancelled or registrar not in self._registrars:
                return
            lease_id = body["lease_id"]
            subscription.leases[registrar] = lease_id
            self._renewer.track(
                lease_id,
                registrar,
                body["duration"],
                resource=subscription.template,
                context=subscription,
            )

        self._request(
            registrar,
            LISTEN,
            {
                "template": subscription.template,
                "operation": subscription.operation,
                "duration": subscription.duration,
            },
            on_reply=on_reply,
            on_error=lambda exc: logger.debug(
                "%s: listen at %s failed: %s", self.node_id, registrar, exc
            ),
        )

    # -- lookup -----------------------------------------------------------------------------

    def lookup(
        self,
        template: ServiceTemplate,
        on_result: Callable[[list[ServiceItem]], None],
        registrar: str | None = None,
        on_error: Callable[[Exception], None] | None = None,
    ) -> None:
        """Query a registrar (the first known one by default)."""
        target = registrar or next(iter(self._registrars), None)
        if target is None:
            on_result([])
            return
        self.transport.request(
            target,
            QUERY,
            {"template": template},
            on_reply=lambda body: on_result(body["items"]),
            on_error=on_error
            or (lambda exc: logger.debug("%s: lookup failed: %s", self.node_id, exc)),
        )

    # -- renewal plumbing ----------------------------------------------------------------------

    def _renew_lease(
        self,
        tracked: TrackedLease,
        on_success: Callable[[], None],
        on_failure: Callable[[Exception], None],
    ) -> None:
        def on_error(exc: Exception) -> None:
            if isinstance(exc, RemoteError):
                # The registrar answered but no longer knows the lease —
                # it expired there, or the registrar crashed and lost its
                # table.  Retrying cannot revive it; abandon immediately
                # so ``_lease_abandoned`` takes a fresh registration now.
                self._renewer.abandon(tracked.lease_id)
                return
            on_failure(exc)

        self.transport.request(
            tracked.peer,
            RENEW,
            {"lease_id": tracked.lease_id},
            on_reply=lambda body: on_success(),
            on_error=on_error,
        )

    def _lease_abandoned(self, tracked: TrackedLease) -> None:
        holder = tracked.context
        if holder is None:
            return
        for registrar, lease_id in list(holder.leases.items()):
            if lease_id != tracked.lease_id:
                continue
            del holder.leases[registrar]
            # The lease died (e.g. it expired at the registrar during a
            # lossy spell) but the registrar is still around: take a
            # fresh one instead of silently disappearing.
            if not holder.cancelled and registrar in self._registrars:
                if isinstance(holder, EventSubscription):
                    self._listen_with(holder, registrar)
                else:
                    self._register_with(holder, registrar)

    def __repr__(self) -> str:
        return (
            f"<DiscoveryClient {self.node_id} registrars={len(self._registrars)} "
            f"registrations={len(self._registrations)}>"
        )
