"""Windowed statistics for closed-loop load runs.

Raw per-operation completions are bucketed into fixed-length windows of
virtual time.  Analysis then *trims* (warmup happens before the
collector starts) and *selects*: :func:`stable_span` finds the longest
consecutive run of windows whose throughput stays within a tolerance of
the run's median — the "stable window" discipline from the closed-system
middleware studies, which keeps ramp-up and tail-off out of the numbers
that feed the queueing models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median
from typing import Any

from repro.util.clock import Clock


def percentile(values: list[float], q: float) -> float | None:
    """Nearest-rank ``q``-percentile of ``values`` (None if empty)."""
    if not values:
        return None
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"percentile must be in [0, 1], got {q}")
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
    return ordered[rank]


@dataclass
class Window:
    """One statistics window: completions, latencies, and point samples."""

    index: int
    start: float
    end: float
    completions: int = 0
    errors: int = 0
    per_op: dict[str, int] = field(default_factory=dict)
    #: Latencies of *successful* operations completed in this window.
    latencies: list[float] = field(default_factory=list)
    #: Point-in-time samples taken at the window boundary (queue depth,
    #: in-service count, ...).
    samples: dict[str, float] = field(default_factory=dict)
    #: Cumulative station counters snapped at the window boundary —
    #: consecutive snapshots difference into exact per-window station
    #: stats.
    snapshot: dict[str, float] = field(default_factory=dict)

    @property
    def length(self) -> float:
        return self.end - self.start

    @property
    def throughput(self) -> float:
        """Successful completions per virtual second."""
        return self.completions / self.length if self.length > 0 else 0.0

    @property
    def mean_latency(self) -> float | None:
        if not self.latencies:
            return None
        return sum(self.latencies) / len(self.latencies)

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "completions": self.completions,
            "errors": self.errors,
            "per_op": dict(sorted(self.per_op.items())),
            "throughput": self.throughput,
            "latency_mean": self.mean_latency,
            "latency_p95": percentile(self.latencies, 0.95),
            "samples": dict(sorted(self.samples.items())),
        }


class WindowedCollector:
    """Buckets operation completions into fixed windows of virtual time.

    The collector is *armed* at the end of warmup (:meth:`begin`);
    completions recorded before that are dropped, so warmup trim is
    structural rather than a post-processing step.
    """

    def __init__(self, clock: Clock, window: float):
        if window <= 0:
            raise ValueError(f"window length must be > 0, got {window}")
        self.clock = clock
        self.window = window
        self.started_at: float | None = None
        self._windows: dict[int, Window] = {}

    def begin(self) -> None:
        """Arm the collector; windows are measured from this instant."""
        self.started_at = self.clock.now()

    @property
    def armed(self) -> bool:
        return self.started_at is not None

    def _window_at(self, now: float) -> Window | None:
        if self.started_at is None or now < self.started_at:
            return None
        index = int((now - self.started_at) / self.window)
        existing = self._windows.get(index)
        if existing is None:
            start = self.started_at + index * self.window
            existing = self._windows[index] = Window(index, start, start + self.window)
        return existing

    def record(self, op: str, latency: float, ok: bool = True) -> None:
        """Record one completed operation at the current instant."""
        window = self._window_at(self.clock.now())
        if window is None:
            return
        if ok:
            window.completions += 1
            window.per_op[op] = window.per_op.get(op, 0) + 1
            window.latencies.append(latency)
        else:
            window.errors += 1

    def sample(self, values: dict[str, float]) -> None:
        """Attach point-in-time samples to the current window."""
        window = self._window_at(self.clock.now())
        if window is not None:
            window.samples.update(values)

    def snapshot(self, counters: dict[str, float]) -> None:
        """Attach a cumulative-counter snapshot to the current window."""
        window = self._window_at(self.clock.now())
        if window is not None:
            window.snapshot = dict(counters)

    def finalize(self) -> list[Window]:
        """All complete-or-started windows in order (gaps filled empty)."""
        if self.started_at is None or not self._windows:
            return []
        last = max(self._windows)
        return [
            self._windows.get(
                index,
                Window(
                    index,
                    self.started_at + index * self.window,
                    self.started_at + (index + 1) * self.window,
                ),
            )
            for index in range(last + 1)
        ]


def stable_span(
    throughputs: list[float], tolerance: float = 0.15, min_windows: int = 4
) -> tuple[int, int]:
    """The longest run of windows with throughput near the run median.

    Returns ``(first, last_exclusive)`` indices of the longest
    consecutive span in which every value lies within ``tolerance`` of
    the span's median (for an all-zero span, every value must be zero).
    Returns ``(0, 0)`` when no span of at least ``min_windows`` windows
    qualifies — the run never stabilized and its aggregate numbers
    should not feed a model.
    """
    if min_windows < 1:
        raise ValueError(f"min_windows must be >= 1, got {min_windows}")
    n = len(throughputs)
    best = (0, 0)
    for start in range(n):
        for end in range(start + min_windows, n + 1):
            span = throughputs[start:end]
            mid = median(span)
            if mid == 0:
                ok = all(value == 0 for value in span)
            else:
                ok = all(abs(value - mid) <= tolerance * mid for value in span)
            if ok and end - start > best[1] - best[0]:
                best = (start, end)
    return best


def aggregate(windows: list[Window], span: tuple[int, int]) -> dict[str, Any]:
    """Aggregate statistics over ``windows[span[0]:span[1]]``."""
    chosen = windows[span[0]:span[1]]
    if not chosen:
        return {
            "windows": 0,
            "completions": 0,
            "errors": 0,
            "throughput": 0.0,
            "per_op": {},
            "latency": None,
        }
    latencies = [value for window in chosen for value in window.latencies]
    completions = sum(window.completions for window in chosen)
    length = sum(window.length for window in chosen)
    per_op: dict[str, int] = {}
    for window in chosen:
        for op, count in window.per_op.items():
            per_op[op] = per_op.get(op, 0) + count
    throughputs = [window.throughput for window in chosen]
    return {
        "windows": len(chosen),
        "completions": completions,
        "errors": sum(window.errors for window in chosen),
        "throughput": completions / length if length > 0 else 0.0,
        "throughput_min": min(throughputs),
        "throughput_max": max(throughputs),
        "per_op": dict(sorted(per_op.items())),
        "latency": {
            "mean": sum(latencies) / len(latencies) if latencies else None,
            "p50": percentile(latencies, 0.50),
            "p95": percentile(latencies, 0.95),
            "p99": percentile(latencies, 0.99),
            "max": max(latencies) if latencies else None,
        },
    }
