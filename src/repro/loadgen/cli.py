"""The ``python -m repro loadgen`` subcommand.

Run a closed-loop load scenario against a pipelined base station and
print a windowed report::

    python -m repro loadgen                      # list presets
    python -m repro loadgen smoke                # run a preset
    python -m repro loadgen mmn --json           # machine-readable report
    python -m repro loadgen --spec scenario.json # run a spec from disk
    python -m repro loadgen smoke --clients 16 --workers 4 --seed 3

Overrides (``--clients``, ``--workers``, ``--think``, ``--service``,
``--duration``, ``--seed``, ...) apply on top of the preset or spec, so
sweeps are shell loops.  ``--windows`` adds the per-window table to the
text report.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.loadgen.harness import run_scenario
from repro.loadgen.scenario import PRESETS, Scenario


def _build_scenario(args: argparse.Namespace) -> Scenario:
    if args.spec is not None:
        scenario = Scenario.from_file(args.spec)
    elif args.preset is not None:
        scenario = PRESETS[args.preset]
    else:
        scenario = Scenario(name="custom")
    overrides = {
        "clients": args.clients,
        "workers": args.workers,
        "dispatch": args.dispatch,
        "think_time": args.think,
        "service_time": args.service,
        "duration": args.duration,
        "warmup": args.warmup,
        "window": args.window,
        "queue_capacity": args.queue_capacity,
        "seed": args.seed,
    }
    changes = {key: value for key, value in overrides.items() if value is not None}
    if changes:
        scenario = scenario.replace(**changes)
    return scenario.validate()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro loadgen",
        description=(
            "Closed-loop load generation against a pipelined extension "
            "base, with windowed statistics and M/M/n validation."
        ),
    )
    parser.add_argument(
        "preset",
        nargs="?",
        choices=sorted(PRESETS),
        help="preset scenario to run (omit with no --spec to list them)",
    )
    parser.add_argument("--spec", help="JSON scenario spec file (overrides preset)")
    parser.add_argument("--clients", type=int, help="closed population size")
    parser.add_argument("--workers", type=int, help="pipeline worker count")
    parser.add_argument(
        "--dispatch", choices=("shared", "rr", "shard"), help="dispatch mode"
    )
    parser.add_argument("--think", type=float, help="mean think time (s)")
    parser.add_argument("--service", type=float, help="mean service demand (s)")
    parser.add_argument("--duration", type=float, help="measured duration (s)")
    parser.add_argument("--warmup", type=float, help="warmup before measuring (s)")
    parser.add_argument("--window", type=float, help="statistics window (s)")
    parser.add_argument(
        "--queue-capacity", type=int, help="accept-queue bound (sheds beyond it)"
    )
    parser.add_argument("--seed", type=int, help="random seed")
    parser.add_argument(
        "--json", action="store_true", help="emit the full report as JSON"
    )
    parser.add_argument(
        "--windows", action="store_true", help="include the per-window table"
    )
    args = parser.parse_args(argv)

    if args.preset is None and args.spec is None:
        print("Available presets (python -m repro loadgen <name>):\n")
        for name, preset in sorted(PRESETS.items()):
            mix = {op: round(w, 3) for op, w in preset.normalized_mix().items()}
            print(
                f"  {name:10s} N={preset.clients} Z={preset.think_time}s "
                f"S={preset.service_time}s workers={preset.workers} mix={mix}"
            )
        return 0

    report = run_scenario(_build_scenario(args))
    if args.json:
        json.dump(report.to_dict(), sys.stdout, indent=2, sort_keys=True)
        print()
        return 0
    for line in report.summary_lines():
        print(line)
    if args.windows:
        print(f"\n{'win':>4} {'X op/s':>8} {'R mean':>9} {'depth':>6}  in span")
        first, last = report.span
        for window in report.windows:
            mean = window.mean_latency
            print(
                f"{window.index:>4} {window.throughput:>8.2f} "
                f"{'-' if mean is None else format(mean * 1000, '.2f') + 'ms':>9} "
                f"{window.samples.get('queue_depth', 0):>6.0f}  "
                f"{'*' if first <= window.index < last else ''}"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
