"""Closed-loop load generation and queueing-theoretic analysis.

The paper evaluates adaptation costs one node at a time; validating a
"heavy traffic" claim needs the measurement discipline of the closed-
system middleware studies (memtier clients → net thread → worker pool):

- :mod:`repro.loadgen.scenario` — a declarative experiment spec: N
  virtual clients, think time, an operation mix
  (install/renew/revoke/discovery), the base station's pipeline shape,
  warmup/measurement windows, one seed;
- :mod:`repro.loadgen.client` — closed-loop virtual clients on the
  deterministic sim kernel, each with at most one outstanding operation
  against the base station;
- :mod:`repro.loadgen.windows` — windowed statistics: warmup trim,
  stable-window detection, per-window throughput / latency /
  queue-depth;
- :mod:`repro.loadgen.analysis` — operational laws (utilization,
  Little, interactive response time) and M/M/1 / M/M/n / closed M/M/n
  models, validated against the measured response times;
- :mod:`repro.loadgen.harness` — wires it all together:
  ``run_scenario(spec) -> LoadReport``.

Run from the command line with ``python -m repro loadgen``.
"""

from repro.loadgen.analysis import closed_mmn, mm1_metrics, mmn_metrics
from repro.loadgen.harness import LoadReport, run_scenario
from repro.loadgen.scenario import OPERATIONS, Scenario
from repro.loadgen.windows import Window, WindowedCollector, stable_span

__all__ = [
    "OPERATIONS",
    "LoadReport",
    "Scenario",
    "Window",
    "WindowedCollector",
    "closed_mmn",
    "mm1_metrics",
    "mmn_metrics",
    "run_scenario",
    "stable_span",
]
