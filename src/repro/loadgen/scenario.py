"""Declarative load-experiment specifications.

A :class:`Scenario` is everything one closed-loop experiment needs —
population, think time, operation mix, the base station's pipeline
shape, measurement windows, and a seed — in one JSON-serializable
record, so a run is reproducible from its spec alone and sweeps are
plain loops over ``replace()``.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import SimulationError
from repro.midas.pipeline import PipelineConfig

#: The operations a virtual client can draw from its mix.
#:
#: ``install``    force-offer one catalog extension (offer → verify →
#:                install/refresh → lease grant, one pipeline job);
#: ``renew``      batch-renew every lease the base holds on the client
#:                (one pipeline job, one keepalive round);
#: ``revoke``     revoke one installed extension (one pipeline job;
#:                falls back to ``install`` when nothing is installed);
#: ``discovery``  re-register the client's adaptation service with the
#:                base's registrar (served by the registrar inline —
#:                no pipeline job unless the client is missing
#:                extensions, which re-offers them).
OPERATIONS = ("install", "renew", "revoke", "discovery")


@dataclass(frozen=True)
class Scenario:
    """One closed-loop load experiment, fully determined by its fields."""

    name: str = "scenario"
    #: Closed population: each client has at most one outstanding
    #: operation and thinks between completions.
    clients: int = 8
    #: Mean think time (virtual seconds) between operations.
    think_time: float = 0.5
    think_distribution: str = "exponential"  # or "fixed"
    #: Measured phase length (virtual seconds), after ``warmup``.
    duration: float = 60.0
    warmup: float = 5.0
    #: Statistics window length (virtual seconds).
    window: float = 1.0
    #: Operation mix weights (normalized; keys from :data:`OPERATIONS`).
    mix: dict[str, float] = field(
        default_factory=lambda: {"install": 0.6, "renew": 0.25, "revoke": 0.15}
    )
    #: Extensions published in the base's catalog.
    catalog_size: int = 4
    # -- base-station pipeline shape ------------------------------------------
    workers: int = 1
    dispatch: str = "shared"
    queue_capacity: int | None = None
    #: Mean simulated service demand per pipeline job at the base.
    service_time: float = 0.02
    service_distribution: str = "exponential"
    # -- world ----------------------------------------------------------------
    seed: int = 0
    #: Long by default so background lease renewals do not pollute the
    #: measured mix (clients drive renewals explicitly instead).
    lease_duration: float = 3600.0
    #: Register each client's adaptation service with the base's lookup
    #: (the initial adaptation wave then happens during warmup).
    register_clients: bool = True
    #: Radio latency; near-zero keeps network time out of the station
    #: model so M/M/n predictions are clean.  Raise it to study the
    #: effect of wire time on closed-loop throughput.
    net_latency: float = 0.0001
    net_jitter: float = 0.0
    loss_probability: float = 0.0
    #: Client-side deadline per operation; an overrun counts as an error
    #: and the client moves on (keeps the loop alive under shedding).
    op_timeout: float = 30.0

    # -- derived ---------------------------------------------------------------

    def pipeline_config(self) -> PipelineConfig:
        """The base station's :class:`PipelineConfig` for this scenario."""
        return PipelineConfig(
            workers=self.workers,
            dispatch=self.dispatch,
            queue_capacity=self.queue_capacity,
            service_time=self.service_time,
            service_distribution=self.service_distribution,
            seed=self.seed,
        )

    def normalized_mix(self) -> dict[str, float]:
        """The mix with weights scaled to sum to 1.0."""
        total = sum(self.mix.values())
        return {op: weight / total for op, weight in self.mix.items() if weight > 0}

    def validate(self) -> "Scenario":
        """Raise :class:`SimulationError` on an unrunnable spec."""
        if self.clients < 1:
            raise SimulationError(f"need >= 1 client, got {self.clients}")
        if self.think_time < 0:
            raise SimulationError(f"think time must be >= 0, got {self.think_time}")
        if self.think_distribution not in ("fixed", "exponential"):
            raise SimulationError(
                f"unknown think distribution {self.think_distribution!r}"
            )
        if self.duration <= 0 or self.warmup < 0:
            raise SimulationError(
                f"need duration > 0 and warmup >= 0, got "
                f"{self.duration}/{self.warmup}"
            )
        if not 0 < self.window <= self.duration:
            raise SimulationError(
                f"window must be in (0, duration], got {self.window}"
            )
        if self.catalog_size < 1:
            raise SimulationError(f"need >= 1 extension, got {self.catalog_size}")
        unknown = sorted(set(self.mix) - set(OPERATIONS))
        if unknown:
            raise SimulationError(
                f"unknown operations in mix: {unknown}; expected {OPERATIONS}"
            )
        if any(weight < 0 for weight in self.mix.values()):
            raise SimulationError("mix weights must be >= 0")
        if sum(self.mix.values()) <= 0:
            raise SimulationError("mix weights must sum to > 0")
        if self.op_timeout <= 0:
            raise SimulationError(f"op timeout must be > 0, got {self.op_timeout}")
        self.pipeline_config().validate()
        return self

    def replace(self, **changes: Any) -> "Scenario":
        """A copy with ``changes`` applied (sweep helper)."""
        return dataclasses.replace(self, **changes)

    # -- (de)serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form of this scenario."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Scenario":
        """Build (and validate) a scenario from :meth:`to_dict` output."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SimulationError(f"unknown scenario fields: {unknown}")
        return cls(**data).validate()

    @classmethod
    def from_file(cls, path: "str | Path") -> "Scenario":
        """Load a scenario spec from a JSON file."""
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


#: Ready-made scenarios for the CLI and CI smoke runs.
PRESETS: dict[str, Scenario] = {
    # Small and fast: a deterministic end-to-end exercise of every op.
    "smoke": Scenario(
        name="smoke",
        clients=4,
        think_time=0.2,
        duration=10.0,
        warmup=2.0,
        window=1.0,
        mix={"install": 0.5, "renew": 0.2, "revoke": 0.2, "discovery": 0.1},
        catalog_size=2,
        workers=2,
        service_time=0.01,
        seed=42,
    ),
    # Moderately loaded M/M/2 validation point (rho ~ 0.55).
    "mmn": Scenario(
        name="mmn",
        clients=12,
        think_time=0.4,
        duration=80.0,
        warmup=8.0,
        window=2.0,
        mix={"install": 0.6, "renew": 0.25, "revoke": 0.15},
        catalog_size=4,
        workers=2,
        service_time=0.04,
        seed=7,
    ),
    # Saturated single worker: the queue is the story.
    "saturate": Scenario(
        name="saturate",
        clients=32,
        think_time=0.2,
        duration=60.0,
        warmup=10.0,
        window=2.0,
        mix={"install": 0.7, "renew": 0.2, "revoke": 0.1},
        catalog_size=4,
        workers=1,
        service_time=0.04,
        seed=7,
    ),
}
