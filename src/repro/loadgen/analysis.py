"""Queueing models and operational laws for load-run validation.

Three model families, in increasing fidelity to the harness:

- **operational laws** — distribution-free identities (utilization law,
  Little's law, interactive response-time law).  They must hold for any
  measured run up to sampling error; a violation means the measurement
  is wrong, not the system.
- **open M/M/1 / M/M/n** (:func:`mm1_metrics`, :func:`mmn_metrics`,
  Erlang C) — classic fixed-arrival-rate predictions.  Useful below
  saturation where the closed loop approximates a Poisson source.
- **closed M/M/n** (:func:`closed_mmn`) — the exact birth–death chain
  for ``N`` clients with exponential think time ``Z`` sharing ``n``
  exponential servers of demand ``S`` (the machine-repairman model with
  ``n`` repairmen).  This is the model the harness actually implements,
  so its predictions are the ones the validation tests assert against.

All times are in the same unit (virtual seconds); rates are per that
unit.
"""

from __future__ import annotations

import math
from typing import Any

# ---------------------------------------------------------------------------
# Operational laws (distribution-free)
# ---------------------------------------------------------------------------


def utilization_law(throughput: float, service_time: float, servers: int = 1) -> float:
    """Per-server utilization ``U = X * S / n``."""
    if servers < 1:
        raise ValueError(f"need >= 1 server, got {servers}")
    return throughput * service_time / servers


def littles_law(throughput: float, response_time: float) -> float:
    """Mean population ``L = X * R``."""
    return throughput * response_time


def interactive_response_time(
    clients: int, throughput: float, think_time: float
) -> float:
    """Closed-system response-time law ``R = N / X - Z``."""
    if throughput <= 0:
        return math.inf
    return clients / throughput - think_time


def operational_checks(
    *,
    clients: int,
    think_time: float,
    throughput: float,
    response_time: float,
    service_time: float,
    servers: int,
) -> dict[str, Any]:
    """Cross-check a measured run against the operational laws.

    Returns the law-derived quantities plus the relative gap between the
    measured response time and the interactive response-time law — the
    single best smoke test of a closed-loop measurement.
    """
    law_r = interactive_response_time(clients, throughput, think_time)
    gap = (
        abs(response_time - law_r) / law_r
        if law_r not in (0.0, math.inf)
        else math.inf
    )
    return {
        "utilization": utilization_law(throughput, service_time, servers),
        "population_in_system": littles_law(throughput, response_time),
        "response_time_law": law_r,
        "response_time_measured": response_time,
        "response_time_gap": gap,
    }


# ---------------------------------------------------------------------------
# Open models
# ---------------------------------------------------------------------------


def mm1_metrics(arrival_rate: float, service_time: float) -> dict[str, float]:
    """Open M/M/1 predictions for Poisson arrivals at ``arrival_rate``."""
    if arrival_rate < 0 or service_time <= 0:
        raise ValueError(
            f"need arrival_rate >= 0 and service_time > 0, "
            f"got {arrival_rate}/{service_time}"
        )
    rho = arrival_rate * service_time
    if rho >= 1.0:
        return {
            "rho": rho,
            "response_time": math.inf,
            "wait_time": math.inf,
            "number_in_system": math.inf,
            "queue_length": math.inf,
        }
    response = service_time / (1.0 - rho)
    return {
        "rho": rho,
        "response_time": response,
        "wait_time": response - service_time,
        "number_in_system": rho / (1.0 - rho),
        "queue_length": rho * rho / (1.0 - rho),
    }


def erlang_c(arrival_rate: float, service_time: float, servers: int) -> float:
    """Erlang-C probability that an open-M/M/n arrival must queue."""
    if servers < 1:
        raise ValueError(f"need >= 1 server, got {servers}")
    offered = arrival_rate * service_time  # offered load in Erlangs
    rho = offered / servers
    if rho >= 1.0:
        return 1.0
    # Iterative Erlang-B, then the B->C conversion: numerically stable
    # for large server counts (no big factorials).
    blocking = 1.0
    for k in range(1, servers + 1):
        blocking = offered * blocking / (k + offered * blocking)
    return blocking / (1.0 - rho * (1.0 - blocking))


def mmn_metrics(
    arrival_rate: float, service_time: float, servers: int
) -> dict[str, float]:
    """Open M/M/n predictions for Poisson arrivals at ``arrival_rate``."""
    if arrival_rate < 0 or service_time <= 0:
        raise ValueError(
            f"need arrival_rate >= 0 and service_time > 0, "
            f"got {arrival_rate}/{service_time}"
        )
    if servers == 1:
        metrics = mm1_metrics(arrival_rate, service_time)
        metrics["queue_probability"] = metrics["rho"]
        return metrics
    rho = arrival_rate * service_time / servers
    if rho >= 1.0:
        return {
            "rho": rho,
            "queue_probability": 1.0,
            "response_time": math.inf,
            "wait_time": math.inf,
            "number_in_system": math.inf,
            "queue_length": math.inf,
        }
    queue_probability = erlang_c(arrival_rate, service_time, servers)
    wait = queue_probability * service_time / (servers * (1.0 - rho))
    return {
        "rho": rho,
        "queue_probability": queue_probability,
        "response_time": service_time + wait,
        "wait_time": wait,
        "number_in_system": arrival_rate * (service_time + wait),
        "queue_length": arrival_rate * wait,
    }


# ---------------------------------------------------------------------------
# Closed model (what the harness actually is)
# ---------------------------------------------------------------------------


def closed_mmn(
    clients: int, think_time: float, service_time: float, servers: int
) -> dict[str, float]:
    """Exact closed M/M/n predictions via the birth–death chain.

    ``k`` counts clients at the station (queued or in service); the
    remaining ``N - k`` are thinking.  Transition rates: arrivals
    ``(N - k) / Z``, completions ``min(k, n) / S``.  Both think and
    service are exponential, matching the harness defaults; with fixed
    think/service times the chain is approximate (and the validation
    tolerance absorbs the difference).
    """
    if clients < 1 or servers < 1:
        raise ValueError(f"need >= 1 client and server, got {clients}/{servers}")
    if service_time <= 0 or think_time < 0:
        raise ValueError(
            f"need service_time > 0 and think_time >= 0, "
            f"got {service_time}/{think_time}"
        )
    if think_time == 0:
        # Zero think: all clients permanently at the station.
        throughput = min(clients, servers) / service_time
        return {
            "throughput": throughput,
            "response_time": clients / throughput,
            "utilization": min(1.0, clients / servers),
            "number_at_station": float(clients),
            "queue_length": float(max(0, clients - servers)),
        }
    # Unnormalized stationary probabilities via detailed balance:
    # p[k+1] = p[k] * arrival(k) / completion(k+1).
    weights = [1.0]
    for k in range(clients):
        arrival = (clients - k) / think_time
        completion = min(k + 1, servers) / service_time
        weights.append(weights[-1] * arrival / completion)
    total = sum(weights)
    probabilities = [weight / total for weight in weights]
    throughput = sum(
        p * min(k, servers) / service_time for k, p in enumerate(probabilities)
    )
    at_station = sum(k * p for k, p in enumerate(probabilities))
    in_service = sum(min(k, servers) * p for k, p in enumerate(probabilities))
    return {
        "throughput": throughput,
        # Little's law at the station; equals N / X - Z identically.
        "response_time": at_station / throughput,
        "utilization": in_service / servers,
        "number_at_station": at_station,
        "queue_length": at_station - in_service,
    }


def saturation_point(think_time: float, service_time: float, servers: int) -> float:
    """Asymptotic-bound knee ``N* = (Z + S) * n / S`` of a closed system.

    Below ``N*`` clients the bottleneck is the population (throughput
    grows ~linearly); above it the station saturates at ``n / S``.
    """
    if service_time <= 0:
        raise ValueError(f"need service_time > 0, got {service_time}")
    return (think_time + service_time) * servers / service_time
