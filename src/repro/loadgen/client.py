"""Closed-loop virtual clients.

Each :class:`LoadClient` is one member of a closed population: it thinks
for a while, issues exactly one operation against the base station,
waits for that operation to resolve (success, rejection, or a client-
side deadline), records the latency, and thinks again.  The population
size therefore bounds the number of in-flight operations — the defining
property of a closed system, and what makes the interactive response-
time law ``R = N / X - Z`` applicable to the measurements.

A client is *not* a full :class:`~repro.midas.receiver.AdaptationService`
— it is a protocol stub that speaks just enough MIDAS to complete the
base's side of each operation (grant/refresh/renew/drop leases) without
verification or weaving cost, so the base station's pipeline is the only
station in the measured system.  Operations travel to the base as a
one-way ``loadgen.drive`` notify (the memtier → net-thread hop); the
harness's drive handler turns them into real
:class:`~repro.midas.base.ExtensionBase` calls.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.discovery.registrar import REGISTER, RENEW
from repro.discovery.service import ServiceItem
from repro.loadgen.scenario import Scenario
from repro.loadgen.windows import WindowedCollector
from repro.midas.receiver import KEEPALIVE, OFFER, REVOKE
from repro.net.transport import Transport
from repro.sim.kernel import Event, Simulator
from repro.sim.timers import PeriodicTimer
from repro.util.ids import fresh_id

#: The one-way operation carrying a client's next op to the base.
DRIVE = "loadgen.drive"


class LoadClient:
    """One virtual client of the closed population."""

    def __init__(
        self,
        index: int,
        transport: Transport,
        simulator: Simulator,
        scenario: Scenario,
        base_id: str,
        collector: WindowedCollector,
    ):
        self.index = index
        self.transport = transport
        self.simulator = simulator
        self.scenario = scenario
        self.base_id = base_id
        self.collector = collector
        self.node_id = transport.node.node_id
        self.rng = random.Random(f"loadgen:{scenario.seed}:client:{index}")
        self._catalog = [ext_name(i) for i in range(scenario.catalog_size)]
        self._mix = sorted(scenario.normalized_mix().items())
        #: The advertised adaptation service, set by the harness when it
        #: registers this client; ``discovery`` ops re-register it.
        self.service_item: ServiceItem | None = None
        #: Extension name -> lease id this stub currently holds.
        self.leases: dict[str, str] = {}
        #: The registrar lease on :attr:`service_item`.  Registrars cap
        #: lease terms (30s by default), so like a real DiscoveryClient
        #: this stub must renew or the base sees the node deregister
        #: mid-run and drops every adaptation it holds for it.
        self.registration_lease: str | None = None
        self._registration_timer: PeriodicTimer | None = None
        self.stopped = False
        #: Monotonic op number; completions carry it so a late or
        #: duplicate resolution of a timed-out op cannot complete the
        #: next one.
        self.seq = 0
        self._pending: tuple[int, str, str, float] | None = None  # seq, op, name, t0
        self._deadline: Event | None = None
        # Loop accounting (includes warmup; the collector trims).
        self.issued = 0
        self.completed = 0
        self.errors = 0

        transport.register(OFFER, self._serve_offer)
        transport.register(KEEPALIVE, self._serve_keepalive)
        transport.register(REVOKE, self._serve_revoke)

    # -- MIDAS protocol stub (receiver side) --------------------------------------

    def _serve_offer(self, sender: str, body: dict) -> dict:
        envelope = body["envelope"]
        name = envelope.name
        lease_id = self.leases.get(name)
        if lease_id is None:
            # Fresh install; a re-offer of a held extension refreshes the
            # lease under the *same* id, like a real receiver.
            lease_id = self.leases[name] = fresh_id(f"{self.node_id}.lease")
        return {"lease_id": lease_id, "duration": body["duration"]}

    def _serve_keepalive(self, sender: str, body: dict) -> dict:
        held = set(self.leases.values())
        renewed = [lid for lid in body["lease_ids"] if lid in held]
        unknown = [lid for lid in body["lease_ids"] if lid not in held]
        return {"renewed": renewed, "unknown": unknown}

    def _serve_revoke(self, sender: str, body: dict) -> dict:
        lease_id = body["lease_id"]
        for name, held in list(self.leases.items()):
            if held == lease_id:
                del self.leases[name]
                return {"revoked": True}
        return {"revoked": False}

    # -- closed loop ---------------------------------------------------------------

    def start(self, register: Callable[["LoadClient"], None] | None) -> None:
        """Enter the loop: optionally register with the base, then think.

        ``register`` performs the initial service registration (the
        harness owns the discovery wiring); the loop itself starts after
        one think period, so client start-ups are naturally staggered by
        their seeded think draws.
        """
        if register is not None:
            register(self)
        self.simulator.schedule(self._think_delay(), self._issue)

    def stop(self) -> None:
        """Leave the loop; a pending op resolves silently."""
        self.stopped = True
        if self._deadline is not None:
            self._deadline.cancel()
            self._deadline = None
        if self._registration_timer is not None:
            self._registration_timer.stop()
            self._registration_timer = None

    # -- registration lease upkeep -------------------------------------------------

    def keep_registered(self, lease_id: str, granted: float) -> None:
        """Track the registrar lease and renew it before it expires.

        Renewals are served inline by the registrar (no pipeline job),
        so this background upkeep does not load the measured station.
        """
        self.registration_lease = lease_id
        if self._registration_timer is None:
            self._registration_timer = PeriodicTimer(
                self.simulator,
                max(granted / 3.0, 0.1),
                self._renew_registration,
                name=f"{self.node_id}.registration",
            ).start()

    def _renew_registration(self) -> None:
        if self.registration_lease is None or self.stopped:
            return
        self.transport.request(
            self.base_id,
            RENEW,
            {
                "lease_id": self.registration_lease,
                "duration": self.scenario.lease_duration,
            },
            on_error=lambda error: None,  # next tick retries with the live lease
        )

    def _think_delay(self) -> float:
        think = self.scenario.think_time
        if think <= 0:
            return 0.0
        if self.scenario.think_distribution == "exponential":
            return self.rng.expovariate(1.0 / think)
        return think

    def _choose_op(self) -> tuple[str, str]:
        """Next (op, extension name) from the mix.

        Ops that need a held lease (renew, revoke) degrade to install
        when the stub holds none — the loop must never block on state.
        """
        draw = self.rng.random()
        op = self._mix[-1][0]
        cumulative = 0.0
        for candidate, weight in self._mix:
            cumulative += weight
            if draw < cumulative:
                op = candidate
                break
        held = sorted(self.leases)
        if op in ("renew", "revoke") and not held:
            op = "install"
        if op == "discovery" and self.service_item is None:
            op = "install"
        if op == "revoke":
            return op, held[self.rng.randrange(len(held))]
        return op, self._catalog[self.rng.randrange(len(self._catalog))]

    def _issue(self) -> None:
        if self.stopped:
            return
        op, name = self._choose_op()
        self.seq += 1
        self.issued += 1
        self._pending = (self.seq, op, name, self.simulator.now)
        self._deadline = self.simulator.schedule(
            self.scenario.op_timeout, self._timed_out, self.seq
        )
        if op == "discovery":
            # Re-register the adaptation service: a real lookup.register
            # round.  Completion is the registrar's reply; the base may
            # additionally re-offer extensions this stub is missing.
            seq = self.seq

            def on_reply(body: dict) -> None:
                # Re-registration replaced the old lease; renew the new one.
                self.keep_registered(body["lease_id"], body["duration"])
                self.resolve(seq, True)

            self.transport.request(
                self.base_id,
                REGISTER,
                {"item": self.service_item, "duration": self.scenario.lease_duration},
                on_reply=on_reply,
                on_error=lambda error: self.resolve(seq, False),
                timeout=self.scenario.op_timeout,
            )
            return
        self.transport.notify(
            self.base_id,
            DRIVE,
            {"client": self.node_id, "seq": self.seq, "op": op, "name": name},
        )

    def resolve(self, seq: int, ok: bool) -> None:
        """Complete the pending op ``seq`` (called by the harness router)."""
        if self.stopped or self._pending is None or self._pending[0] != seq:
            return  # late, duplicate, or post-stop resolution
        _, op, _, started = self._pending
        self._pending = None
        if self._deadline is not None:
            self._deadline.cancel()
            self._deadline = None
        if ok:
            self.completed += 1
        else:
            self.errors += 1
        self.collector.record(op, self.simulator.now - started, ok=ok)
        self.simulator.schedule(self._think_delay(), self._issue)

    def _timed_out(self, seq: int) -> None:
        self._deadline = None
        self.resolve(seq, ok=False)


def ext_name(index: int) -> str:
    """Catalog entry name for extension ``index`` (shared with the harness)."""
    return f"load-ext-{index:02d}"
