"""Scenario runner: build a world, drive it, measure it, model it.

:func:`run_scenario` stands up one base station with a pipelined
:class:`~repro.midas.base.ExtensionBase`, attaches N protocol-stub
clients (:mod:`repro.loadgen.client`), runs the closed loop for warmup
plus the measured duration, and returns a :class:`LoadReport` holding
the windowed measurements, the station's exact cumulative accounting,
and the closed-M/M/n prediction for the same parameters.

Measurement discipline:

- warmup is structural — the collector is armed only after it;
- per-window throughput feeds :func:`~repro.loadgen.windows.stable_span`,
  and only the stable span's numbers are compared against the models;
- station wait/service come from the pipeline's exact cumulative sums
  (differences of boundary snapshots), not from sampled histograms.

Caveat on completion matching: ``install``/``revoke`` completions are
routed by the base's ``on_adapted``/``on_rejected``/``on_revoked``
signals, keyed ``(node, extension)``.  A background offer for the same
pair (the initial adaptation wave, or a re-adaptation triggered by a
``discovery`` op) can therefore resolve a client's op a little early.
Background offers are dormant during measurement (long leases park the
reconciler and renewer), so this only matters in mixes that include
``discovery`` — and shows up as slightly optimistic install latency,
never as a hang.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.platform import ProactivePlatform
from repro.discovery.registrar import REGISTER
from repro.discovery.service import ServiceItem
from repro.extensions.call_logging import CallLogging
from repro.loadgen.analysis import closed_mmn, operational_checks, saturation_point
from repro.loadgen.client import DRIVE, LoadClient, ext_name
from repro.loadgen.scenario import Scenario
from repro.loadgen.windows import Window, WindowedCollector, aggregate, stable_span
from repro.midas.receiver import ADAPTATION_INTERFACE
from repro.net.network import NetworkConfig
from repro.net.node import NetworkNode
from repro.net.transport import Transport
from repro.sim.timers import PeriodicTimer
from repro.telemetry import MetricsRegistry
from repro.telemetry.health import (
    CounterRatioSLI,
    HealthPlane,
    LatencySLI,
    RollupRule,
    SLO,
    scaled_pairs,
)

#: Station counters differenced across the measured phase.
_CUMULATIVE = ("submitted", "completed", "shed", "failed", "wait_seconds", "service_seconds")

#: Sojourn times past this multiple of the nominal service time count
#: against the latency SLO (queueing is expected; a 10x sojourn means
#: the station is drowning, not serving).
SLOW_SOJOURN_MULTIPLE = 10.0


def load_health_plane(scenario: Scenario) -> HealthPlane:
    """The load harness's health plane: pipeline availability + latency.

    Windows are the SRE pairs compressed to the scenario's measured
    duration, floored at two collection windows so burn math never runs
    on sub-sample noise.
    """
    pairs = scaled_pairs(
        max(scenario.duration, 4 * scenario.window), floor=2 * scenario.window
    )
    slow = SLOW_SOJOURN_MULTIPLE * scenario.service_time
    return HealthPlane(
        slos=[
            SLO(
                "pipeline-availability",
                "pipeline",
                target=0.99,
                sli=CounterRatioSLI(
                    good=("midas.pipeline.completed",),
                    bad=("midas.pipeline.shed", "midas.pipeline.failed"),
                ),
                pairs=pairs,
            ),
            SLO(
                "pipeline-latency",
                "pipeline",
                target=0.95,
                sli=LatencySLI("midas.pipeline.sojourn", slow),
                pairs=pairs,
            ),
        ],
        rules=[
            RollupRule(
                "pipeline-errors",
                "midas.pipeline.*",
                "ratio",
                window=5 * scenario.window,
                bad_when=lambda metric, labels: metric.endswith(
                    (".shed", ".failed")
                ),
                group_by=("station",),
            ),
            RollupRule(
                "sojourn-p99",
                "midas.pipeline.sojourn",
                "quantile",
                window=5 * scenario.window,
                q=0.99,
            ),
        ],
        name=f"load:{scenario.name}",
    )


@dataclass
class LoadReport:
    """Everything one scenario run produced."""

    scenario: Scenario
    windows: list[Window]
    #: ``(first, last_exclusive)`` indices of the stable span.
    span: tuple[int, int]
    #: Aggregate over the stable span (what models are compared against).
    stable: dict[str, Any]
    #: Aggregate over the whole measured phase.
    overall: dict[str, Any]
    #: Station accounting over the measured phase (exact deltas).
    station: dict[str, Any]
    #: Closed-M/M/n prediction for the scenario's parameters.
    predicted: dict[str, float]
    #: Operational-law cross-checks of the stable-span measurements.
    checks: dict[str, Any]
    #: Per-client loop accounting (includes warmup).
    clients: dict[str, Any] = field(default_factory=dict)
    #: Health-plane verdict at the end of the measured phase.
    health: dict[str, Any] | None = None

    @property
    def model_gap(self) -> float | None:
        """Relative error of the closed-M/M/n response-time prediction."""
        measured = (self.stable.get("latency") or {}).get("mean")
        predicted = self.predicted.get("response_time")
        if not measured or not predicted:
            return None
        return abs(measured - predicted) / predicted

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario.to_dict(),
            "span": list(self.span),
            "stable": self.stable,
            "overall": self.overall,
            "station": self.station,
            "predicted": self.predicted,
            "checks": self.checks,
            "model_gap": self.model_gap,
            "clients": self.clients,
            "windows": [window.to_dict() for window in self.windows],
            "health": self.health,
        }

    def summary_lines(self) -> list[str]:
        """Human-readable digest (used by the CLI)."""
        spec = self.scenario
        lat = self.stable.get("latency") or {}
        fmt = lambda v: "-" if v is None else f"{v * 1000:.2f}ms"  # noqa: E731
        lines = [
            f"scenario {spec.name!r}: N={spec.clients} Z={spec.think_time}s "
            f"S={spec.service_time}s workers={spec.workers} ({spec.dispatch}) "
            f"seed={spec.seed}",
            f"measured  : X={self.stable.get('throughput', 0.0):.2f} op/s over "
            f"{self.stable.get('windows', 0)} stable windows "
            f"(of {len(self.windows)}), R mean={fmt(lat.get('mean'))} "
            f"p95={fmt(lat.get('p95'))} p99={fmt(lat.get('p99'))}",
            f"station   : util={self.station.get('utilization', 0.0):.2f} "
            f"wait={fmt(self.station.get('mean_wait'))} "
            f"service={fmt(self.station.get('mean_service'))} "
            f"shed={self.station.get('shed', 0)}",
            f"closed mmn: X={self.predicted.get('throughput', 0.0):.2f} op/s "
            f"R={fmt(self.predicted.get('response_time'))} "
            f"util={self.predicted.get('utilization', 0.0):.2f} "
            f"(knee at N*={self.checks.get('saturation_clients', 0.0):.1f})",
        ]
        gap = self.model_gap
        if gap is not None:
            lines.append(f"model gap : {gap * 100:.1f}% on mean response time")
        return lines


class _CompletionRouter:
    """Matches base-side completion signals back to waiting clients.

    One expectation per ``(node, extension)`` key; the drive handler
    registers it before invoking the base, the signal resolves it.
    """

    def __init__(self, clients: dict[str, LoadClient]):
        self.clients = clients
        self._expected: dict[tuple[str, str], int] = {}

    def expect(self, node_id: str, name: str, seq: int) -> None:
        self._expected[(node_id, name)] = seq

    def resolve(self, node_id: str, name: str, ok: bool) -> None:
        seq = self._expected.pop((node_id, name), None)
        client = self.clients.get(node_id)
        if seq is not None and client is not None:
            client.resolve(seq, ok)


def run_scenario(
    scenario: Scenario,
    registry: MetricsRegistry | None = None,
    health: "bool | HealthPlane" = True,
) -> LoadReport:
    """Run one closed-loop load scenario; deterministic given its seed.

    ``health`` may be a pre-built :class:`HealthPlane` (the control
    tower passes one so it can inspect rollups and the alert log after
    the run); ``True`` builds the standard plane, ``False`` disables it.
    """
    scenario.validate()
    platform = ProactivePlatform(
        seed=scenario.seed,
        network_config=NetworkConfig(
            base_latency=scenario.net_latency,
            latency_per_meter=0.0,
            jitter=scenario.net_jitter,
            loss_probability=scenario.loss_probability,
        ),
        lease_duration=scenario.lease_duration,
        pipeline=scenario.pipeline_config(),
    )
    registry = platform.enable_telemetry(registry, flight=False)
    simulator = platform.simulator
    station = platform.create_base_station("base")
    for index in range(scenario.catalog_size):
        station.add_extension(
            ext_name(index),
            lambda index=index: CallLogging(type_pattern=f"LoadTarget{index}"),
        )

    collector = WindowedCollector(simulator.clock, scenario.window)
    clients: dict[str, LoadClient] = {}
    for index in range(scenario.clients):
        node = platform.network.attach(NetworkNode(f"client-{index:03d}"))
        transport = Transport(node, simulator)
        client = LoadClient(
            index, transport, simulator, scenario, station.node_id, collector
        )
        clients[client.node_id] = client
    router = _CompletionRouter(clients)
    base = station.extension_base
    base.on_adapted.connect(lambda node, name: router.resolve(node, name, True))
    base.on_rejected.connect(lambda node, name, detail: router.resolve(node, name, False))
    base.on_revoked.connect(router.resolve)

    def drive(sender: str, body: dict) -> None:
        client = clients[body["client"]]
        seq, op, name = body["seq"], body["op"], body["name"]
        if op == "install":
            router.expect(client.node_id, name, seq)
            base.offer(client.node_id, name, force=True)
        elif op == "renew":
            base.renew_node(
                client.node_id,
                on_done=lambda count: client.resolve(seq, True),
                on_error=lambda error: client.resolve(seq, False),
            )
        elif op == "revoke":
            router.expect(client.node_id, name, seq)
            if not base.revoke(client.node_id, name):
                # Base and stub disagree (e.g. the base shed an earlier
                # revoke after dropping its record): fail fast.
                router.resolve(client.node_id, name, False)

    station.transport.register(DRIVE, drive)

    def register(client: LoadClient) -> None:
        item = ServiceItem(
            ADAPTATION_INTERFACE, client.node_id, {"class": "loadgen"}
        )
        client.service_item = item
        client.transport.request(
            station.node_id,
            REGISTER,
            {"item": item, "duration": scenario.lease_duration},
            on_reply=lambda body, client=client: client.keep_registered(
                body["lease_id"], body["duration"]
            ),
            # Registration is load-bearing (keep_registered arms lease
            # renewal): a lost request is simply re-sent, paced by the op
            # timeout, until the station answers.
            on_error=lambda exc, client=client: register(client),
            timeout=scenario.op_timeout,
        )

    for client in clients.values():
        client.start(register if scenario.register_clients else None)

    pipeline = base.pipeline
    assert pipeline is not None  # scenarios always configure one

    # Warmup (initial adaptation wave + loop ramp-up), then arm.
    platform.run_for(scenario.warmup)
    collector.begin()
    begin_stats = pipeline.stats()
    # Health plane armed only for the measured phase, like the collector.
    plane: HealthPlane | None = None
    if health:
        plane = health if isinstance(health, HealthPlane) else load_health_plane(scenario)
        plane.attach(registry)
        plane.watch_platform(platform)
        plane.start(simulator, interval=scenario.window)

    def boundary() -> None:
        collector.snapshot(pipeline.stats())
        depth, busy = pipeline.depth(), pipeline.in_service()
        collector.sample({"queue_depth": depth, "in_service": busy})
        registry.observe("loadgen.queue_depth", depth, scenario=scenario.name)

    sampler = PeriodicTimer(
        simulator, scenario.window, boundary, name="loadgen.windows"
    ).start()
    platform.run_for(scenario.duration)
    sampler.stop()
    end_stats = pipeline.stats()
    health_dict: dict[str, Any] | None = None
    if plane is not None:
        plane.tick()  # final burn reading at the measurement boundary
        plane.stop()
        health_dict = plane.report().to_dict()
        if plane.peak is not None:
            health_dict["peak"] = plane.peak.to_dict()
        plane.detach()
    for client in clients.values():
        client.stop()

    # The boundary tick at exactly t = end opens an empty window past the
    # measured phase; keep only windows that start inside it.
    cutoff = (collector.started_at or 0.0) + scenario.duration - 1e-9
    windows = [window for window in collector.finalize() if window.start < cutoff]
    span = stable_span(
        [window.throughput for window in windows],
        min_windows=min(4, max(1, len(windows))),
    )
    stable = aggregate(windows, span)
    overall = aggregate(windows, (0, len(windows)))
    for window in windows:
        registry.observe(
            "loadgen.window.throughput", window.throughput, scenario=scenario.name
        )
        mean = window.mean_latency
        if mean is not None:
            registry.observe(
                "loadgen.window.latency", mean, scenario=scenario.name
            )
    platform.disable_telemetry()

    delta = {key: end_stats[key] - begin_stats[key] for key in _CUMULATIVE}
    completed = delta["completed"]
    station_stats: dict[str, Any] = {
        **delta,
        "workers": scenario.workers,
        "dispatch": scenario.dispatch,
        "throughput": completed / scenario.duration,
        "utilization": delta["service_seconds"]
        / (scenario.duration * scenario.workers),
        "mean_wait": delta["wait_seconds"] / completed if completed else None,
        "mean_service": delta["service_seconds"] / completed if completed else None,
        "mean_sojourn": (delta["wait_seconds"] + delta["service_seconds"]) / completed
        if completed
        else None,
        "final_depth": end_stats["depth"],
    }

    predicted = closed_mmn(
        scenario.clients, scenario.think_time, scenario.service_time, scenario.workers
    )
    latency = (stable.get("latency") or {}).get("mean") or 0.0
    checks = operational_checks(
        clients=scenario.clients,
        think_time=scenario.think_time,
        throughput=stable.get("throughput", 0.0),
        response_time=latency,
        service_time=station_stats["mean_service"] or scenario.service_time,
        servers=scenario.workers,
    )
    checks["saturation_clients"] = saturation_point(
        scenario.think_time, scenario.service_time, scenario.workers
    )

    return LoadReport(
        scenario=scenario,
        windows=windows,
        span=span,
        stable=stable,
        overall=overall,
        station=station_stats,
        predicted=predicted,
        checks=checks,
        clients={
            "issued": sum(client.issued for client in clients.values()),
            "completed": sum(client.completed for client in clients.values()),
            "errors": sum(client.errors for client in clients.values()),
        },
        health=health_dict,
    )
