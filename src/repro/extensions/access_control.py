"""Access control — transparent authorization (Fig. 2 step 3, §4.6).

"The security aspect intercepts all service calls and decides, before the
execution of the application logic, whether the remote caller has the
right to execute the intercepted method.  If the access is denied, the
execution is ended with an exception."

The extension is configured on the base station with the hall's policy
(the set of authorized principals and the methods it guards).  It
*requires* session information, so MIDAS auto-inserts
:class:`~repro.extensions.session.SessionManagement` alongside it — the
paper's implicit-extension mechanism.
"""

from __future__ import annotations

from typing import Iterable

from repro.aop.advice import AdviceKind
from repro.aop.aspect import Aspect
from repro.aop.context import ExecutionContext
from repro.aop.crosscut import MethodCut
from repro.errors import AccessDeniedError
from repro.extensions.orders import ACCESS_ORDER
from repro.extensions.session import CALLER_KEY, SessionManagement


class AccessControl(Aspect):
    """Ends unauthorized calls with :class:`AccessDeniedError`.

    ``allowed`` is the set of caller node ids the policy authorizes.
    Calls that never crossed the network have no caller identity; they
    are allowed when ``allow_local`` is True (the default — the robot's
    own program may always run itself).
    """

    REQUIRES = (SessionManagement,)

    def __init__(
        self,
        allowed: Iterable[str] = (),
        type_pattern: str = "*",
        method_pattern: str = "*",
        allow_local: bool = True,
    ):
        super().__init__()
        self.allowed = frozenset(allowed)
        self.allow_local = allow_local
        self.granted = 0
        self.denied = 0
        self.add_advice(
            kind=AdviceKind.BEFORE,
            crosscut=MethodCut(type=type_pattern, method=method_pattern),
            callback=self.authorize,
            order=ACCESS_ORDER,
        )

    def authorize(self, ctx: ExecutionContext) -> None:
        """Grant or deny the intercepted call based on the session caller."""
        caller = ctx.session.get(CALLER_KEY)
        if caller is None:
            if self.allow_local:
                self.granted += 1
                return
            self.denied += 1
            raise AccessDeniedError(
                f"anonymous local call to {ctx.method_name} denied by policy"
            )
        if caller in self.allowed:
            self.granted += 1
            return
        self.denied += 1
        raise AccessDeniedError(
            f"caller {caller!r} is not authorized for {ctx.method_name}"
        )
