"""Ad-hoc transactions — transparently added transactional behaviour.

The authors built "Ad-Hoc Transactions for Mobile Services" [PA02] on this
platform, and §4.6 measures a transactions extension.  The reproduction
makes matched method executions atomic with respect to the fields of
matched objects:

- an *around* advice opens a transaction frame before the method body and
  commits on normal return;
- a *field-write* advice records undo information (previous value or
  "field was absent") into the innermost open frame;
- if the method body escapes with an exception, the frame is rolled back
  — every recorded field write is undone, newest first — and the
  exception propagates.

Nested matched calls nest transactions (inner commits fold into the
enclosing frame, so an outer rollback undoes inner work too).
"""

from __future__ import annotations

from typing import Any

from repro.aop.advice import AdviceKind
from repro.aop.aspect import Aspect
from repro.aop.context import ExecutionContext, FieldWriteContext
from repro.aop.crosscut import FieldWriteCut, MethodCut

_ABSENT = object()


class _Frame:
    """Undo log of one open transaction."""

    __slots__ = ("undo",)

    def __init__(self):
        # (target, field, previous value or _ABSENT), newest last
        self.undo: list[tuple[Any, str, Any]] = []


class AdHocTransactions(Aspect):
    """Atomic execution of matched methods over matched objects' fields."""

    def __init__(
        self,
        method_type_pattern: str = "*",
        method_pattern: str = "*",
        state_type_pattern: str = "*",
        field_pattern: str = "*",
    ):
        super().__init__()
        self.commits = 0
        self.rollbacks = 0
        self.fields_undone = 0
        self._frames: list[_Frame] = []
        self._restoring = False
        self.add_advice(
            kind=AdviceKind.AROUND,
            crosscut=MethodCut(type=method_type_pattern, method=method_pattern),
            callback=self.transactional,
        )
        self.add_advice(
            kind=AdviceKind.BEFORE,
            crosscut=FieldWriteCut(type=state_type_pattern, field=field_pattern),
            callback=self.record_undo,
        )

    # -- around advice --------------------------------------------------------

    def transactional(self, ctx: ExecutionContext) -> Any:
        """Run the method body inside a transaction frame."""
        frame = _Frame()
        self._frames.append(frame)
        try:
            result = ctx.proceed()
        except BaseException:
            self._frames.pop()
            self._rollback(frame)
            raise
        self._frames.pop()
        self._commit(frame)
        return result

    # -- field advice -------------------------------------------------------------

    def record_undo(self, ctx: FieldWriteContext) -> None:
        """Capture the pre-image of a field about to be overwritten."""
        if self._restoring or not self._frames:
            return
        previous = _ABSENT if ctx.is_initialization else ctx.old_value
        self._frames[-1].undo.append((ctx.target, ctx.field, previous))

    # -- outcomes --------------------------------------------------------------------

    def _commit(self, frame: _Frame) -> None:
        if self._frames:
            # Nested commit: fold into the enclosing frame.
            self._frames[-1].undo.extend(frame.undo)
        else:
            self.commits += 1

    def _rollback(self, frame: _Frame) -> None:
        self._restoring = True
        try:
            for target, field, previous in reversed(frame.undo):
                if previous is _ABSENT:
                    try:
                        delattr(target, field)
                    except AttributeError:
                        pass
                else:
                    setattr(target, field, previous)
                self.fields_undone += 1
        finally:
            self._restoring = False
        self.rollbacks += 1

    @property
    def in_transaction(self) -> bool:
        """True while a matched method body is executing."""
        return bool(self._frames)
