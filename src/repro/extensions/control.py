"""Movement control — "one may forbid movements beyond certain
coordinates so that certain parts of the paper remain untouched" (§4.5).

A :class:`MovementControl` extension is configured (on the base station)
with forbidden rectangles.  Its before-advice intercepts the plotter's
published drawing interface — no source-code knowledge needed, only the
interface — and ends offending movements with
:class:`~repro.errors.MovementDeniedError` *before* the hardware moves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.aop.advice import AdviceKind
from repro.aop.aspect import Aspect
from repro.aop.context import ExecutionContext
from repro.aop.crosscut import MethodCut
from repro.errors import MovementDeniedError


@dataclass(frozen=True)
class ForbiddenRegion:
    """An axis-aligned rectangle of paper that must remain untouched."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float
    label: str = ""

    def contains(self, x: float, y: float) -> bool:
        """True if ``(x, y)`` lies inside this region."""
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y


class MovementControl(Aspect):
    """Blocks plotter movements into forbidden regions."""

    def __init__(
        self,
        forbidden: Iterable[ForbiddenRegion],
        type_pattern: str = "Plotter",
        method_pattern: str = "move_to",
    ):
        super().__init__()
        self.forbidden = tuple(forbidden)
        self.movements_checked = 0
        self.movements_denied = 0
        self.add_advice(
            kind=AdviceKind.BEFORE,
            crosscut=MethodCut(type=type_pattern, method=method_pattern),
            callback=self.check_movement,
        )

    def check_movement(self, ctx: ExecutionContext) -> None:
        """Deny the movement if its target lies in a forbidden region."""
        self.movements_checked += 1
        if len(ctx.args) < 2:
            return
        x, y = float(ctx.args[0]), float(ctx.args[1])
        for region in self.forbidden:
            if region.contains(x, y):
                self.movements_denied += 1
                label = f" ({region.label})" if region.label else ""
                raise MovementDeniedError(
                    f"movement to ({x}, {y}) enters forbidden region{label}"
                )
