"""Orthogonal persistence — one of the three extensions whose cost the
paper measures (§4.6, [PAG02]).

"Orthogonal" because the application is unaware of it: a field-write
crosscut journals every state change of matched objects; after a crash
(or extension re-insertion) :meth:`OrthogonalPersistence.restore`
reapplies the latest journaled values to a fresh object.

Objects are keyed by ``device_id`` when they have one (robot devices do),
falling back to class name + instance number.
"""

from __future__ import annotations

from typing import Any

from repro.aop.advice import AdviceKind
from repro.aop.aspect import Aspect
from repro.aop.context import FieldWriteContext
from repro.aop.crosscut import FieldWriteCut


class OrthogonalPersistence(Aspect):
    """Journals matched field writes and can restore object state."""

    def __init__(
        self,
        type_pattern: str = "*",
        field_pattern: str = "*",
        identity_attr: str = "device_id",
    ):
        super().__init__()
        self.type_pattern = type_pattern
        self.field_pattern = field_pattern
        #: Attribute giving objects a stable identity across restarts.
        self.identity_attr = identity_attr
        self.writes_journaled = 0
        # object key -> {field: latest value}
        self._journal: dict[str, dict[str, Any]] = {}
        self.add_advice(
            kind=AdviceKind.AFTER,
            crosscut=FieldWriteCut(type=type_pattern, field=field_pattern),
            callback=self.journal_write,
        )

    def journal_write(self, ctx: FieldWriteContext) -> None:
        """Record the new value of the written field."""
        key = self.key_of(ctx.target)
        self._journal.setdefault(key, {})[ctx.field] = ctx.new_value
        self.writes_journaled += 1

    def key_of(self, target: Any) -> str:
        """Stable identity of a persisted object.

        Uses ``identity_attr`` when the object carries it (robot devices
        carry ``device_id``); otherwise falls back to per-instance
        identity, which does not survive object replacement.
        """
        identity = getattr(target, self.identity_attr, None)
        if identity is not None:
            return f"{type(target).__name__}:{identity}"
        return f"{type(target).__name__}@{id(target):x}"

    # -- recovery ------------------------------------------------------------------

    def snapshot(self, target: Any) -> dict[str, Any]:
        """The journaled state of ``target`` (empty if never written)."""
        return dict(self._journal.get(self.key_of(target), {}))

    def restore(self, target: Any) -> int:
        """Reapply the journaled state onto ``target``; returns field count.

        Restoration writes through plain ``setattr`` — which re-enters the
        weaver and re-journals the same values, a harmless fixed point.
        """
        state = self._journal.get(self.key_of(target), {})
        for field, value in state.items():
            setattr(target, field, value)
        return len(state)

    def forget(self, target: Any) -> None:
        """Drop the journal of one object."""
        self._journal.pop(self.key_of(target), None)

    @property
    def journal_size(self) -> int:
        """Number of objects with journaled state."""
        return len(self._journal)
