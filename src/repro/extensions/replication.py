"""Remote replication — mirror robots (§4.5).

"If the robot is being controlled by a human, it is possible to use the
extension to monitor all the moves and feed them to an identical robot in
a remote location (or to a collection of identical robots in other
locations). ... It is also possible that the replication of the work
takes place at a scale different from what is being done by the original
robot."

Two halves:

- :class:`ReplicationExtension` — woven into the source robot; an
  *after*-advice on the plotter's drawing interface posts each completed
  drawing operation to a feed :class:`~repro.midas.remote.ServiceRef`
  (after, so denied/failed movements are never replicated);
- :class:`MirrorHub` — runs at the base station; fans each operation out
  to registered mirror plotters' drawing services, applying a per-mirror
  scale factor.
"""

from __future__ import annotations

import logging
from typing import Any

from repro.aop.advice import AdviceKind
from repro.aop.aspect import Aspect
from repro.aop.context import ExecutionContext
from repro.aop.crosscut import MethodCut
from repro.aop.sandbox import Capability
from repro.midas.remote import ServiceRef
from repro.net.transport import Transport

logger = logging.getLogger(__name__)

#: The operation the hub listens on.
FEED_OPERATION = "mirror.feed"


class ReplicationExtension(Aspect):
    """Feeds every completed drawing operation to a mirror hub."""

    REQUIRED_CAPABILITIES = frozenset({Capability.NETWORK})

    def __init__(
        self,
        feed: ServiceRef,
        type_pattern: str = "Plotter",
        robot_id: str | None = None,
    ):
        super().__init__()
        self.feed = feed
        #: When set, only the named robot's movements are replicated.
        #: Prevents feedback when source and mirror plotters share a VM.
        self.robot_id = robot_id
        self.operations_fed = 0
        self.add_advice(
            kind=AdviceKind.AFTER,
            crosscut=MethodCut(type=type_pattern, method="move_to"),
            callback=self.feed_move,
        )
        for method in ("pen_down", "pen_up"):
            self.add_advice(
                kind=AdviceKind.AFTER,
                crosscut=MethodCut(type=type_pattern, method=method),
                callback=self.feed_pen,
            )

    def feed_move(self, ctx: ExecutionContext) -> None:
        """Replicate a completed carriage movement."""
        if not self._is_source(ctx):
            return
        self._post({"op": "move_to", "x": float(ctx.args[0]), "y": float(ctx.args[1])})

    def feed_pen(self, ctx: ExecutionContext) -> None:
        """Replicate a completed pen state change."""
        if not self._is_source(ctx):
            return
        self._post({"op": "pen", "down": ctx.method_name == "pen_down"})

    def _is_source(self, ctx: ExecutionContext) -> bool:
        if self.robot_id is None:
            return True
        return getattr(ctx.target, "robot_id", None) == self.robot_id

    def _post(self, body: dict[str, Any]) -> None:
        caller = self.gateway.acquire(Capability.NETWORK)
        caller.post(self.feed, body)
        self.operations_fed += 1


class MirrorHub:
    """Base-station fan-out of drawing operations to mirror robots."""

    def __init__(self, transport: Transport):
        self.transport = transport
        # node id of the mirror's drawing service -> scale factor
        self._mirrors: dict[str, float] = {}
        self.operations_routed = 0
        transport.register(FEED_OPERATION, self._serve_feed)

    @property
    def feed_ref(self) -> ServiceRef:
        """The ServiceRef source extensions should be configured with."""
        return ServiceRef(self.transport.node.node_id, FEED_OPERATION)

    def add_mirror(self, drawing_node_id: str, scale: float = 1.0) -> None:
        """Mirror future operations onto ``drawing_node_id`` at ``scale``."""
        if scale <= 0:
            raise ValueError(f"mirror scale must be positive, got {scale}")
        self._mirrors[drawing_node_id] = scale

    def remove_mirror(self, drawing_node_id: str) -> None:
        """Stop mirroring to ``drawing_node_id``."""
        self._mirrors.pop(drawing_node_id, None)

    def mirrors(self) -> dict[str, float]:
        """Current mirrors and their scales."""
        return dict(self._mirrors)

    def _serve_feed(self, sender: str, body: dict[str, Any]) -> None:
        for node_id, scale in self._mirrors.items():
            if body["op"] == "move_to":
                operation = "draw.move_to"
                forwarded = {"x": body["x"] * scale, "y": body["y"] * scale}
            else:
                operation = "draw.pen"
                forwarded = {"down": body["down"]}
            self.transport.request(
                node_id,
                operation,
                forwarded,
                on_error=lambda exc, target=node_id: logger.debug(
                    "mirror %s failed: %s", target, exc
                ),
            )
            self.operations_routed += 1

    def __repr__(self) -> str:
        return f"<MirrorHub mirrors={sorted(self._mirrors)}>"
