"""Age-based trust (§4.6).

"Another example are applications where the 'age' of the device
corresponds to the trust associated to that device.  A proactive context
can add an extension that records the 'birth date' of a device.  The very
same extension may intercept all service invocations of all possible
devices and decide how to proceed depending on the device's age."

This single extension does both jobs: the first time it sees a device it
stamps a birth date; on every subsequent matched invocation it computes
the device's age and denies service while the device is younger than the
configured minimum (a newborn device has not yet earned trust).
"""

from __future__ import annotations

from typing import Any

from repro.aop.advice import AdviceKind
from repro.aop.aspect import Aspect
from repro.aop.context import ExecutionContext
from repro.aop.crosscut import MethodCut
from repro.aop.sandbox import Capability
from repro.errors import AccessDeniedError


class AgeTrust(Aspect):
    """Records device birth dates and gates calls on device age."""

    REQUIRED_CAPABILITIES = frozenset({Capability.CLOCK})

    def __init__(
        self,
        min_age: float,
        type_pattern: str = "Device",
        method_pattern: str = "*",
    ):
        super().__init__()
        if min_age < 0:
            raise ValueError(f"min_age must be non-negative, got {min_age}")
        self.min_age = min_age
        self.denied = 0
        self._birth_dates: dict[str, float] = {}
        self.add_advice(
            kind=AdviceKind.BEFORE,
            crosscut=MethodCut(type=type_pattern, method=method_pattern),
            callback=self.gate_by_age,
        )

    def gate_by_age(self, ctx: ExecutionContext) -> None:
        """Stamp unseen devices; deny calls on too-young devices."""
        device = self._identify(ctx.target)
        now = self.gateway.acquire(Capability.CLOCK).now()
        birth = self._birth_dates.setdefault(device, now)
        age = now - birth
        if age < self.min_age:
            self.denied += 1
            raise AccessDeniedError(
                f"device {device} is {age:.2f}s old; needs {self.min_age}s of trust"
            )

    # -- queries ----------------------------------------------------------------

    def birth_date(self, target: Any) -> float | None:
        """The recorded birth date of ``target``'s device, if seen."""
        return self._birth_dates.get(self._identify(target))

    def age_of(self, target: Any) -> float | None:
        """Current age of ``target``'s device, if seen."""
        birth = self.birth_date(target)
        if birth is None:
            return None
        return self.gateway.acquire(Capability.CLOCK).now() - birth

    @staticmethod
    def _identify(target: Any) -> str:
        device_id = getattr(target, "device_id", None)
        if device_id is not None:
            return str(device_id)
        return f"{type(target).__name__}@{id(target):x}"
