"""Call logging — "a variant of the logging extensions that records every
call to an application" (§3.3).

Unlike :class:`~repro.extensions.monitoring.HwMonitoring`, this extension
knows nothing about the application — not even its interface: the default
crosscut matches every method of every loaded class.  Records go to a
bounded local ring buffer, queryable through the aspect object.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass
from typing import Any

from repro.aop.advice import AdviceKind
from repro.aop.aspect import Aspect
from repro.aop.context import ExecutionContext
from repro.aop.crosscut import MethodCut
from repro.extensions.session import CALLER_KEY

#: Default ring-buffer capacity.
DEFAULT_CAPACITY = 1000


@dataclass(frozen=True)
class CallRecord:
    """One logged call."""

    cls: str
    method: str
    args: tuple[Any, ...]
    caller: str | None

    def __repr__(self) -> str:
        return f"<CallRecord {self.cls}.{self.method} from {self.caller}>"


class CallLogging(Aspect):
    """Records every matched call into a bounded ring buffer."""

    def __init__(
        self,
        type_pattern: str = "*",
        method_pattern: str = "*",
        capacity: int = DEFAULT_CAPACITY,
    ):
        super().__init__()
        self.type_pattern = type_pattern
        self.method_pattern = method_pattern
        self.capacity = capacity
        self.total_calls = 0
        self._ring: collections.deque[CallRecord] = collections.deque(maxlen=capacity)
        self.add_advice(
            kind=AdviceKind.BEFORE,
            crosscut=MethodCut(type=type_pattern, method=method_pattern),
            callback=self.record_call,
        )

    def record_call(self, ctx: ExecutionContext) -> None:
        """Append the intercepted call to the ring buffer."""
        self._ring.append(
            CallRecord(
                ctx.joinpoint.class_name,
                ctx.method_name,
                ctx.args,
                ctx.session.get(CALLER_KEY),
            )
        )
        self.total_calls += 1

    # -- queries --------------------------------------------------------------

    def entries(self) -> list[CallRecord]:
        """The retained records, oldest first."""
        return list(self._ring)

    def calls_to(self, method: str) -> int:
        """Retained calls to ``method``."""
        return sum(1 for record in self._ring if record.method == method)

    def clear(self) -> None:
        """Empty the ring buffer (``total_calls`` keeps counting)."""
        self._ring.clear()

    def __len__(self) -> int:
        return len(self._ring)
