"""Hardware monitoring and logging — the paper's flagship extension.

Fig. 5's ``HwMonitoring`` intercepts "entries and exits of *any* methods
belonging to a Motor class" and posts ``(motor id, time, ...)`` to a
remote owner.  Fig. 3b refines the data path: "this data is first locally
stored and then asynchronously sent to a base station", where it lands in
the hall database.

This implementation is exactly that: a before-advice on ``Motor`` methods
builds a :class:`~repro.store.database.MovementRecord`, buffers it
locally, and a periodic flush posts the batch to the configured
:class:`~repro.midas.remote.ServiceRef` (normally the hall's
``store.append`` operation).  ``shutdown`` — invoked by MIDAS before
revocation — performs a final flush, so no observed movement is lost when
the robot leaves the hall.
"""

from __future__ import annotations

from repro.aop.advice import AdviceKind
from repro.aop.aspect import Aspect
from repro.aop.context import ExecutionContext
from repro.aop.crosscut import REST, MethodCut
from repro.aop.sandbox import Capability
from repro.midas.remote import ServiceRef
from repro.store.database import MovementRecord
from repro.util.patterns import wildcard_match

#: How often buffered records are shipped to the base, in seconds.
DEFAULT_FLUSH_INTERVAL = 0.5


class HwMonitoring(Aspect):
    """Records every motor action and ships it to the base station."""

    REQUIRED_CAPABILITIES = frozenset(
        {Capability.NETWORK, Capability.CLOCK, Capability.SCHEDULER}
    )

    def __init__(
        self,
        robot_id: str,
        owner: ServiceRef,
        flush_interval: float = DEFAULT_FLUSH_INTERVAL,
        type_pattern: str = "Motor",
        device_pattern: str | None = None,
    ):
        super().__init__()
        self.robot_id = robot_id
        #: The remote owner proxy of Fig. 5 (``RemoteOwner ownerProxy``).
        self.owner = owner
        self.flush_interval = flush_interval
        self.type_pattern = type_pattern
        #: Optional wildcard on device ids, for hosts where devices of
        #: several robots share one VM (only ``<robot_id>.*`` is typical).
        self.device_pattern = device_pattern
        self.records_captured = 0
        self.records_shipped = 0
        self._buffer: list[MovementRecord] = []
        self._timer = None
        self._in_advice = False
        self.add_advice(
            kind=AdviceKind.BEFORE,
            crosscut=MethodCut(type=type_pattern, method="*", params=(REST,)),
            callback=self.ANYMETHOD,
        )

    # Named as in Fig. 5.
    def ANYMETHOD(self, ctx: ExecutionContext) -> None:  # noqa: N802 - paper name
        """Log the intercepted motor command (1 in Fig. 3b)."""
        if self._in_advice or ctx.method_name.startswith("__"):
            return  # re-entrant or constructor join points: not robot activity
        self._in_advice = True
        try:
            device_id = getattr(ctx.target, "device_id", None)
            if device_id is None:
                device_id = type(ctx.target).__name__
            if self.device_pattern is not None and not wildcard_match(
                self.device_pattern, device_id
            ):
                return
            clock = self.gateway.acquire(Capability.CLOCK)
            record = MovementRecord(
                robot_id=self.robot_id,
                device_id=device_id,
                command=ctx.method_name,
                args=ctx.args,
                time=clock.now(),
            )
            self._buffer.append(record)
            self.records_captured += 1
        finally:
            self._in_advice = False

    # -- lifecycle ------------------------------------------------------------

    def on_insert(self, vm) -> None:
        """Start the asynchronous shipping timer (2 in Fig. 3b)."""
        scheduler = self.gateway.acquire(Capability.SCHEDULER)
        self._timer = scheduler.periodic(
            self.flush_interval, self.flush, name=f"{self.name}.flush"
        )

    def shutdown(self) -> None:
        """Final flush before revocation: complete current operations."""
        if self._timer is not None:
            self._timer.stop()
            self._timer = None
        self.flush()

    def flush(self) -> int:
        """Ship the local buffer to the owner; returns records shipped."""
        if not self._buffer:
            return 0
        batch, self._buffer = self._buffer, []
        caller = self.gateway.acquire(Capability.NETWORK)
        caller.post(self.owner, {"records": batch})
        self.records_shipped += len(batch)
        return len(batch)

    @property
    def pending(self) -> int:
        """Records captured but not yet shipped."""
        return len(self._buffer)
