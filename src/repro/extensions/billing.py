"""Billing — "accounting modules being added to mobile devices (e.g.,
lap-tops) to bill them for the use of services in a given location" (§1).

A tariff maps method names (wildcard patterns) to a price per call; every
matched call is charged to the calling principal (from session data, or
``"local"`` for in-node calls).  The hall operator queries the invoice
through the aspect or lets the extension post totals to a billing service
ref on shutdown.
"""

from __future__ import annotations

from typing import Mapping

from repro.aop.advice import AdviceKind
from repro.aop.aspect import Aspect
from repro.aop.context import ExecutionContext
from repro.aop.crosscut import MethodCut
from repro.aop.sandbox import Capability
from repro.extensions.session import CALLER_KEY, SessionManagement
from repro.midas.remote import ServiceRef
from repro.util.patterns import wildcard_match

#: Account name used for calls that never crossed the network.
LOCAL_PRINCIPAL = "local"


class Billing(Aspect):
    """Charges matched calls to per-caller accounts.

    With a ``settlement`` ref configured, the running totals are posted
    to the hall's billing desk every ``settlement_interval`` seconds
    (cumulative, so the desk just keeps the latest) — the device may
    walk out of radio range at any moment, and a departure-time-only
    settlement would be lost with it.  ``shutdown`` posts one final
    best-effort settlement.
    """

    REQUIRES = (SessionManagement,)
    REQUIRED_CAPABILITIES = frozenset({Capability.NETWORK, Capability.SCHEDULER})

    def __init__(
        self,
        tariff: Mapping[str, float],
        type_pattern: str = "*",
        settlement: ServiceRef | None = None,
        settlement_interval: float = 5.0,
    ):
        super().__init__()
        self.tariff = dict(tariff)
        #: Where totals are posted (the hall's billing desk).
        self.settlement = settlement
        self.settlement_interval = settlement_interval
        self.calls_billed = 0
        self.settlements_posted = 0
        self._accounts: dict[str, float] = {}
        self._timer = None
        self._last_posted: dict[str, float] | None = None
        self.add_advice(
            kind=AdviceKind.BEFORE,
            crosscut=MethodCut(type=type_pattern, method="*"),
            callback=self.charge,
        )

    def charge(self, ctx: ExecutionContext) -> None:
        """Charge the caller for the intercepted call, if tariffed."""
        price = self.price_of(ctx.method_name)
        if price is None:
            return
        principal = ctx.session.get(CALLER_KEY) or LOCAL_PRINCIPAL
        self._accounts[principal] = self._accounts.get(principal, 0.0) + price
        self.calls_billed += 1

    def price_of(self, method: str) -> float | None:
        """The tariff entry matching ``method`` (first match wins)."""
        for pattern, price in self.tariff.items():
            if wildcard_match(pattern, method):
                return price
        return None

    # -- settlement -------------------------------------------------------------

    def invoice(self) -> dict[str, float]:
        """Per-principal totals accumulated so far."""
        return dict(self._accounts)

    def balance(self, principal: str) -> float:
        """Current charge of one principal."""
        return self._accounts.get(principal, 0.0)

    def on_insert(self, vm) -> None:
        """Start the periodic settlement loop, if a desk is configured."""
        if self.settlement is not None and self.gateway is not None:
            scheduler = self.gateway.acquire(Capability.SCHEDULER)
            self._timer = scheduler.periodic(
                self.settlement_interval, self.post_settlement, name=f"{self.name}.settle"
            )

    def post_settlement(self, final: bool = False) -> bool:
        """Post cumulative totals to the desk; True if something was sent."""
        if self.settlement is None or self.gateway is None:
            return False
        totals = self.invoice()
        if not totals or totals == self._last_posted:
            return False
        caller = self.gateway.acquire(Capability.NETWORK)
        caller.post(self.settlement, {"invoice": totals, "final": final})
        self._last_posted = totals
        self.settlements_posted += 1
        return True

    def shutdown(self) -> None:
        """Stop settling and post one final (best-effort) invoice."""
        if self._timer is not None:
            self._timer.stop()
            self._timer = None
        self._last_posted = None  # force the final post even if unchanged
        self.post_settlement(final=True)
