"""Transparent encryption — the paper's motivating aspect example (§3.1):

    before methods-with-signature 'void *.send*(byte[] x, ..)' do encrypt(x)

and §3.3: "it is very easy to design an extension that will encrypt every
outgoing call from an application and decrypt every incoming call".

The extension rewrites the first ``bytes`` argument of matched ``send*``
methods with its ciphertext, and symmetrically decrypts on ``receive*``
methods.  The cipher is a keyed XOR keystream — an *illustrative* cipher
(it round-trips and visibly scrambles data) standing in for a real one;
the reproduction's subject is the weaving, not the cryptography.
"""

from __future__ import annotations

import hashlib
import itertools

from repro.aop.advice import AdviceKind
from repro.aop.aspect import Aspect
from repro.aop.context import ExecutionContext
from repro.aop.crosscut import MethodCut, REST


class XorCipher:
    """A keyed XOR keystream cipher (demonstration only, not secure)."""

    __slots__ = ("_key",)

    def __init__(self, key: bytes):
        if not key:
            raise ValueError("cipher key must be non-empty")
        self._key = hashlib.sha256(key).digest()

    def encrypt(self, data: bytes) -> bytes:
        """XOR ``data`` with the keystream."""
        return bytes(b ^ k for b, k in zip(data, itertools.cycle(self._key)))

    # XOR is an involution.
    decrypt = encrypt


class EncryptionExtension(Aspect):
    """Encrypts outgoing and decrypts incoming byte payloads."""

    def __init__(
        self,
        key: bytes,
        send_pattern: str = "send*",
        receive_pattern: str = "receive*",
        type_pattern: str = "*",
    ):
        super().__init__()
        self.cipher = XorCipher(key)
        self.encrypted = 0
        self.decrypted = 0
        self.add_advice(
            kind=AdviceKind.BEFORE,
            crosscut=MethodCut(
                type=type_pattern, method=send_pattern, params=("bytes", REST)
            ),
            callback=self.encrypt_outgoing,
        )
        self.add_advice(
            kind=AdviceKind.BEFORE,
            crosscut=MethodCut(
                type=type_pattern, method=receive_pattern, params=("bytes", REST)
            ),
            callback=self.decrypt_incoming,
        )

    def encrypt_outgoing(self, ctx: ExecutionContext) -> None:
        """Replace the first bytes argument with its ciphertext."""
        ctx.args = self._transform(ctx.args, self.cipher.encrypt)
        self.encrypted += 1

    def decrypt_incoming(self, ctx: ExecutionContext) -> None:
        """Replace the first bytes argument with its plaintext."""
        ctx.args = self._transform(ctx.args, self.cipher.decrypt)
        self.decrypted += 1

    @staticmethod
    def _transform(args: tuple, fn) -> tuple:
        for index, value in enumerate(args):
            if isinstance(value, (bytes, bytearray)):
                return (*args[:index], fn(bytes(value)), *args[index + 1:])
        return args
