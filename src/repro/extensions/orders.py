"""Advice-order constants shared by the standard extensions.

Lower orders run earlier at a join point.  The values encode Fig. 2's
interception sequence: the session-information interception (step 2)
precedes access control (step 3), which precedes ordinary extensions.
"""

#: Session information extraction (implicit extension).
SESSION_ORDER = 10
#: Authorization decisions.
ACCESS_ORDER = 20
#: Everything else (the PROSE default).
DEFAULT_ORDER = 100
