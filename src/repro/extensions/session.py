"""Session management — the paper's canonical *implicit* extension.

"Of the extensions used as examples, the session management extension is
an implicit extension needed to implement other extensions (like the
access control).  When an extension that requires session information is
added to a node, the session management extension is automatically also
added to that node." (§3.3)

Its advice runs first at every matched join point (order
:data:`~repro.extensions.orders.SESSION_ORDER`) and populates the
execution context's ``session`` dictionary with the caller's identity —
taken from the transport layer when the call entered the node remotely —
so later advice (access control, billing) can read it.
"""

from __future__ import annotations

from repro.aop.advice import AdviceKind
from repro.aop.aspect import Aspect
from repro.aop.context import ExecutionContext
from repro.aop.crosscut import MethodCut
from repro.extensions.orders import SESSION_ORDER
from repro.net.transport import current_caller

#: Session key holding the calling node's id (None for local calls).
CALLER_KEY = "caller"


class SessionManagement(Aspect):
    """Extracts session information at method entry.

    ``type_pattern``/``method_pattern`` bound which join points receive
    session data; the no-argument form (used when MIDAS auto-resolves the
    dependency) covers everything.
    """

    def __init__(self, type_pattern: str = "*", method_pattern: str = "*"):
        super().__init__()
        self.type_pattern = type_pattern
        self.method_pattern = method_pattern
        self.sessions_started = 0
        self.add_advice(
            kind=AdviceKind.BEFORE,
            crosscut=MethodCut(type=type_pattern, method=method_pattern),
            callback=self.extract_session,
            order=SESSION_ORDER,
        )

    def extract_session(self, ctx: ExecutionContext) -> None:
        """Record who is calling into the shared session dictionary."""
        ctx.session[CALLER_KEY] = current_caller()
        self.sessions_started += 1
