"""The standard extension library.

Every extension the paper describes or sketches, implemented as a
first-class PROSE aspect ready to be cataloged, signed and distributed by
MIDAS:

================================  ============================================
:class:`SessionManagement`         implicit extension extracting caller identity
                                   (Fig. 2 step 2)
:class:`AccessControl`             per-caller authorization, ends denied calls
                                   with an exception (Fig. 2 step 3, §4.6)
:class:`HwMonitoring`              motor monitoring + async logging to the
                                   base-station database (Fig. 3b, Fig. 5)
:class:`CallLogging`               "records every call to an application"
:class:`EncryptionExtension`       "encrypt every outgoing call ... decrypt
                                   every incoming call" (§3.3)
:class:`OrthogonalPersistence`     journals field writes; restores state
:class:`AdHocTransactions`         atomic method executions with rollback
:class:`Billing`                   "accounting modules ... to bill them for
                                   the use of services" (§1)
:class:`AgeTrust`                  records device "birth dates" and decides by
                                   age (§4.6)
:class:`ReplicationExtension`      mirrors plotter movements to remote robots,
                                   optionally at a different scale (§4.5)
:class:`MovementControl`           forbids movements beyond certain
                                   coordinates (§4.5)
================================  ============================================
"""

from repro.extensions.access_control import AccessControl
from repro.extensions.age_trust import AgeTrust
from repro.extensions.billing import Billing
from repro.extensions.call_logging import CallLogging, CallRecord
from repro.extensions.control import ForbiddenRegion, MovementControl
from repro.extensions.encryption import EncryptionExtension, XorCipher
from repro.extensions.monitoring import HwMonitoring
from repro.extensions.persistence import OrthogonalPersistence
from repro.extensions.replication import MirrorHub, ReplicationExtension
from repro.extensions.session import SessionManagement
from repro.extensions.transactions import AdHocTransactions

__all__ = [
    "AccessControl",
    "AdHocTransactions",
    "AgeTrust",
    "Billing",
    "CallLogging",
    "CallRecord",
    "EncryptionExtension",
    "ForbiddenRegion",
    "HwMonitoring",
    "MirrorHub",
    "MovementControl",
    "OrthogonalPersistence",
    "ReplicationExtension",
    "SessionManagement",
    "XorCipher",
]

#: Advice orders giving the Fig. 2 interception sequence: session
#: information is extracted before authorization, which runs before
#: ordinary (default-order) extensions.
SESSION_ORDER = 10
ACCESS_ORDER = 20
