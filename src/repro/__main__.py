"""Command-line entry point: run the reproduction's demo scenarios.

Usage::

    python -m repro                 # list scenarios
    python -m repro quickstart      # run one
    python -m repro --all           # run every scenario
    python -m repro telemetry       # traced MIDAS lifecycle demo
    python -m repro inspect         # node health: extensions, leases, breakers
    python -m repro vet <target>    # statically vet extension modules
    python -m repro lint [paths]    # platform lints: determinism, shards, protocol
    python -m repro loadgen         # closed-loop load runs + M/M/n checks
    python -m repro ops             # control tower: SLO burn + health statuses
"""

from __future__ import annotations

import argparse
import importlib
import sys

#: scenario name -> (module under examples/, description)
SCENARIOS = {
    "quickstart": "the two-layer model end to end (PROSE then MIDAS)",
    "plotter_monitoring": "§4 plotter + Fig. 5 HwMonitoring + Fig. 6 queries",
    "production_halls": "the intro scenario: one robot, three hall policies",
    "adhoc_peers": "§3.2 symmetric peer-to-peer extension exchange",
    "replication_and_replay": "Fig. 6 mirroring at scale + time-aligned replay",
    "tuplespace_policy": "§4.6 future work: policies as leased tuples",
}


def run_scenario(name: str) -> None:
    """Import and run one example scenario by name."""
    try:
        module = importlib.import_module(f"examples.{name}")
    except ModuleNotFoundError as exc:
        raise SystemExit(
            f"could not import examples.{name} ({exc}); "
            "run from the repository root, where examples/ lives"
        ) from exc
    module.main()


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "telemetry":
        from repro.telemetry.cli import main as telemetry_main

        return telemetry_main(argv[1:])
    if argv and argv[0] == "inspect":
        from repro.telemetry.inspect import main as inspect_main

        return inspect_main(argv[1:])
    if argv and argv[0] == "vet":
        from repro.vetting.cli import main as vet_main

        return vet_main(argv[1:])
    if argv and argv[0] == "lint":
        from repro.analysis.cli import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "loadgen":
        from repro.loadgen.cli import main as loadgen_main

        return loadgen_main(argv[1:])
    if argv and argv[0] == "ops":
        from repro.telemetry.health.tower import main as ops_main

        return ops_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduction of 'A Proactive Middleware Platform for Mobile "
            "Computing' (Middleware 2003) — demo scenarios."
        ),
    )
    parser.add_argument(
        "scenario",
        nargs="?",
        choices=sorted(SCENARIOS),
        help="scenario to run (omit to list them)",
    )
    parser.add_argument(
        "--all", action="store_true", help="run every scenario in sequence"
    )
    args = parser.parse_args(argv)

    if args.all:
        for name in SCENARIOS:
            print(f"\n{'=' * 70}\n== {name}\n{'=' * 70}")
            run_scenario(name)
        return 0
    if args.scenario is None:
        print("Available scenarios (python -m repro <name>):\n")
        for name, description in SCENARIOS.items():
            print(f"  {name:24s} {description}")
        return 0
    run_scenario(args.scenario)
    return 0


if __name__ == "__main__":
    sys.exit(main())
