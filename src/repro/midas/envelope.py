"""The extension envelope — what actually travels over the air.

An envelope carries a *serialized, configured aspect instance* plus the
metadata MIDAS needs before it is willing to deserialize it: the signing
entity, the signature over the payload bytes, and the capabilities the
extension will request from its sandbox.

The paper's extensions are Java objects instantiated and configured on the
base station and shipped to the node; we use :mod:`pickle` as the
serialization substrate (extension classes must be importable on both
sides — the analogue of the class path).  Crucially, the signature is
verified **before** unpickling, mirroring "the verification of the
originator of an extension is done before insertion" and keeping the
deserializer off the attack surface for untrusted senders.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Mapping

from repro.aop.aspect import Aspect
from repro.errors import VerificationError
from repro.midas.trust import Signer, TrustStore
from repro.util.ids import fresh_id


@dataclass(frozen=True)
class ExtensionEnvelope:
    """A signed, serialized extension instance."""

    #: Logical extension name (stable across re-instantiations), e.g.
    #: ``"hw-monitoring"``.  A node holds at most one live extension per
    #: (base, name) pair; replacement swaps same-named extensions.
    name: str
    #: Pickled aspect instance.
    payload: bytes
    #: Entity that instantiated and configured the extension.
    signer: str
    #: HMAC of ``payload`` by ``signer``.
    signature: bytes
    #: Capabilities the extension's sandbox must allow.
    capabilities: frozenset[str] = frozenset()
    #: Unique id of this envelope instance.
    envelope_id: str = field(default_factory=lambda: fresh_id("ext"))
    #: Version counter used by extension replacement.
    version: int = 1
    #: Serialized :class:`~repro.vetting.report.VetReport` produced at
    #: publish time, or None for the legacy unvetted path.
    vet_report: Mapping | None = None
    #: Signature by ``signer`` over the report's canonical digest, so a
    #: receiver can trust the publish-time verdict without re-analyzing.
    vet_signature: bytes | None = None

    @classmethod
    def seal(
        cls,
        name: str,
        aspect: Aspect,
        signer: Signer,
        version: int = 1,
        vet_report: Mapping | None = None,
        vet_signature: bytes | None = None,
    ) -> "ExtensionEnvelope":
        """Serialize and sign a configured aspect instance."""
        try:
            payload = pickle.dumps(aspect)
        except Exception as exc:
            raise VerificationError(
                f"extension {name!r} is not serializable: {exc}"
            ) from exc
        return cls(
            name=name,
            payload=payload,
            signer=signer.entity,
            signature=signer.sign(payload),
            capabilities=frozenset(aspect.REQUIRED_CAPABILITIES),
            version=version,
            vet_report=vet_report,
            vet_signature=vet_signature,
        )

    def open(self, trust_store: TrustStore) -> Aspect:
        """Verify the signature, then deserialize the aspect instance.

        Raises before touching the payload if the signer is untrusted or
        the signature does not verify.
        """
        trust_store.verify(self.signer, self.payload, self.signature)
        aspect = pickle.loads(self.payload)
        if not isinstance(aspect, Aspect):
            raise VerificationError(
                f"extension {self.name!r} payload is not an Aspect "
                f"(got {type(aspect).__name__})"
            )
        return aspect

    def verify_vet_report(self, trust_store: TrustStore):
        """Authenticate and parse the shipped vet report.

        Returns the parsed :class:`~repro.vetting.report.VetReport`
        (truthy) when a signed report travels with the envelope, or None
        when the envelope carries no report (legacy, unvetted path).
        Raises :class:`~repro.errors.VerificationError` when a report is
        present but its digest signature does not check out — a tampered
        verdict is worse than no verdict.
        """
        if self.vet_report is None:
            return None
        from repro.vetting.report import VetReport

        if self.vet_signature is None:
            raise VerificationError(
                f"extension {self.name!r} ships a vet report without a signature"
            )
        report = VetReport.from_dict(self.vet_report)
        trust_store.verify(self.signer, report.digest(), self.vet_signature)
        return report

    @property
    def size(self) -> int:
        """Payload size in bytes (what the radio actually carries)."""
        return len(self.payload)

    def __repr__(self) -> str:
        return (
            f"<ExtensionEnvelope {self.name} v{self.version} "
            f"signer={self.signer} {self.size}B>"
        )
