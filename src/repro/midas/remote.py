"""Serializable remote service references.

An extension configured on the base station often needs to talk back to a
base-side service once installed on a node — the paper's ``HwMonitoring``
holds a ``RemoteOwner ownerProxy`` it posts log records to.  A live
transport object cannot be serialized, so envelopes carry a
:class:`ServiceRef` (plain data: node id + operation name) and the
receiving node's gateway provides a :class:`RemoteCaller` under the
``network`` capability to exercise it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.net.transport import Transport


@dataclass(frozen=True)
class ServiceRef:
    """A serializable pointer to an operation on a remote node."""

    node_id: str
    operation: str

    def __repr__(self) -> str:
        return f"<ServiceRef {self.operation}@{self.node_id}>"


class RemoteCaller:
    """The node-side object that makes :class:`ServiceRef`\\ s callable.

    Handed to extensions through their gateway (``network`` capability),
    so sandbox policy controls whether an extension may reach the radio.
    """

    __slots__ = ("_transport",)

    def __init__(self, transport: Transport):
        self._transport = transport

    def post(self, ref: ServiceRef, body: Any = None) -> None:
        """One-way message to ``ref`` (asynchronous, fire-and-forget)."""
        self._transport.notify(ref.node_id, ref.operation, body)

    def call(
        self,
        ref: ServiceRef,
        body: Any = None,
        on_reply: Callable[[Any], None] | None = None,
        on_error: Callable[[Exception], None] | None = None,
        timeout: float | None = None,
    ) -> None:
        """Request/reply to ``ref``; callbacks fire later."""
        self._transport.request(
            ref.node_id,
            ref.operation,
            body,
            on_reply=on_reply,
            on_error=on_error,
            timeout=timeout,
        )

    @property
    def local_node_id(self) -> str:
        """The id of the node this caller sends from."""
        return self._transport.node.node_id

    def __repr__(self) -> str:
        return f"<RemoteCaller from {self.local_node_id}>"
