"""The scheduler service offered to extensions.

Extensions sometimes need time-driven behaviour — the monitoring extension
buffers locally and "then asynchronously sent to a base station" (Fig.
3b), which takes a flush timer.  Extensions cannot touch the simulator
directly (sandbox!), so nodes expose this thin service under the
``scheduler`` capability.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.kernel import Event, Simulator
from repro.sim.timers import PeriodicTimer


class SchedulerService:
    """Mediated access to timers for sandboxed extensions."""

    __slots__ = ("_simulator",)

    def __init__(self, simulator: Simulator):
        self._simulator = simulator

    def periodic(
        self, interval: float, callback: Callable[[], Any], name: str = "ext-timer"
    ) -> PeriodicTimer:
        """A started periodic timer firing every ``interval`` seconds."""
        return PeriodicTimer(self._simulator, interval, callback, name=name).start()

    def after(self, delay: float, callback: Callable[[], Any]) -> Event:
        """Run ``callback`` once, ``delay`` seconds from now."""
        return self._simulator.schedule(delay, callback)

    def __repr__(self) -> str:
        return "<SchedulerService>"
