"""The base station's accept-queue → worker-pool pipeline.

The classic :class:`~repro.midas.base.ExtensionBase` handles every event
inline: a discovery registration, a health report or a keepalive round
runs to completion inside the callback that delivered it.  That is the
right default for a hall with a handful of devices, but it makes the
base an infinitely fast server — useless for studying how it behaves
under sustained load.

This module gives the base an explicit service station, modeled on the
memtier → net-thread → worker-pool middleware design the queueing
literature studies: arriving work is appended to an accept queue,
dispatched to one of ``workers`` simulated workers, held for a service
time, then executed.  Dispatch is either a single shared queue (idle
workers pull — an M/M/n station), round-robin, or sharded by a stable
hash of the work item's key (node id), so all work for one node lands on
one worker.  A bounded queue sheds arrivals beyond capacity, and every
stage is surfaced in telemetry: queue-depth gauges, wait/service/sojourn
histograms, and submitted/completed/shed counters.

Everything runs on the deterministic simulation kernel — a worker is a
chain of scheduled events, not a thread — so load experiments are
exactly reproducible per seed.
"""

from __future__ import annotations

import logging
import random
import zlib
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import PipelineOverloadError, SimulationError
from repro.sim.kernel import Simulator
from repro.telemetry import runtime as _telemetry

logger = logging.getLogger(__name__)

#: Dispatch disciplines: one shared queue (M/M/n), round-robin
#: assignment at arrival, or sharding by key so per-node work is
#: serialized on one worker.
DISPATCH_MODES = ("shared", "rr", "shard")

#: Service-time draws: every job costs exactly ``service_time``, or an
#: exponential with that mean (the M in M/M/n).
SERVICE_DISTRIBUTIONS = ("fixed", "exponential")


@dataclass(frozen=True)
class PipelineConfig:
    """Tunable shape of a base station's service pipeline.

    ``workers`` simulated workers each take one job at a time;
    ``service_time`` is the (mean) virtual seconds a job occupies its
    worker.  ``queue_capacity`` bounds the number of *waiting* jobs
    across all queues (None = unbounded); arrivals beyond it are shed.
    """

    workers: int = 1
    dispatch: str = "shared"
    queue_capacity: int | None = None
    service_time: float = 0.0
    service_distribution: str = "fixed"
    seed: int = 0

    def validate(self) -> "PipelineConfig":
        """Raise :class:`SimulationError` on a nonsensical configuration."""
        if self.workers < 1:
            raise SimulationError(f"pipeline needs >= 1 worker, got {self.workers}")
        if self.dispatch not in DISPATCH_MODES:
            raise SimulationError(
                f"unknown dispatch {self.dispatch!r}; expected one of {DISPATCH_MODES}"
            )
        if self.queue_capacity is not None and self.queue_capacity < 0:
            raise SimulationError(
                f"queue capacity must be >= 0, got {self.queue_capacity}"
            )
        if self.service_time < 0:
            raise SimulationError(
                f"service time must be >= 0, got {self.service_time}"
            )
        if self.service_distribution not in SERVICE_DISTRIBUTIONS:
            raise SimulationError(
                f"unknown service distribution {self.service_distribution!r}; "
                f"expected one of {SERVICE_DISTRIBUTIONS}"
            )
        return self


class _Job:
    """One unit of base-station work waiting for (or holding) a worker."""

    __slots__ = ("key", "kind", "fn", "enqueued_at")

    def __init__(self, key: str, kind: str, fn: Callable[[], Any], enqueued_at: float):
        self.key = key
        self.kind = kind
        self.fn = fn
        self.enqueued_at = enqueued_at


class _Worker:
    """State of one simulated worker: its queue (rr/shard) and busy flag."""

    __slots__ = ("index", "queue", "busy", "event")

    def __init__(self, index: int):
        self.index = index
        self.queue: deque[_Job] = deque()
        self.busy = False
        #: The pending completion event while busy (for crash resets).
        self.event = None


class AcceptQueuePipeline:
    """An n-server queueing station for base-station work items.

    :meth:`submit` either queues the job (True) or sheds it (False) when
    the configured capacity is exhausted — the caller's ``on_shed``
    receives a :class:`PipelineOverloadError` so protocol-level error
    paths (rejection signals, renewal backoff) still fire.

    Cumulative statistics (:meth:`stats`) are exact sums, independent of
    histogram bucket resolution, so load analysis can compute mean wait,
    service and sojourn times without quantization error.
    """

    def __init__(
        self,
        simulator: Simulator,
        config: PipelineConfig | None = None,
        name: str = "pipeline",
    ):
        self.simulator = simulator
        self.config = (config or PipelineConfig()).validate()
        self.name = name
        self._workers = [_Worker(i) for i in range(self.config.workers)]
        #: Shared accept queue (``dispatch="shared"``); idle workers pull.
        self._shared: deque[_Job] = deque()
        self._rr_next = 0
        self._rng = random.Random(f"pipeline:{self.config.seed}")
        # Exact cumulative accounting (see stats()).
        self.submitted = 0
        self.completed = 0
        self.shed = 0
        self.failed = 0
        self.wait_seconds = 0.0
        self.service_seconds = 0.0
        #: Virtual instant the station first accepted work — utilization
        #: denominators start here rather than at construction.
        self.first_arrival: float | None = None

    # -- intake -----------------------------------------------------------------

    def submit(
        self,
        key: str,
        kind: str,
        fn: Callable[[], Any],
        on_shed: Callable[[PipelineOverloadError], None] | None = None,
    ) -> bool:
        """Queue ``fn`` for execution by a worker; False if shed.

        ``key`` routes sharded dispatch (and labels nothing — telemetry
        is per ``kind`` to keep cardinality bounded).
        """
        capacity = self.config.queue_capacity
        if capacity is not None and self.depth() >= capacity:
            self.shed += 1
            _telemetry.get_recorder().count(
                "midas.pipeline.shed", station=self.name, kind=kind
            )
            logger.debug("%s: shed %s job for %s (queue full)", self.name, kind, key)
            if on_shed is not None:
                on_shed(
                    PipelineOverloadError(
                        f"{self.name}: {kind} job for {key} shed "
                        f"(queue at capacity {capacity})"
                    )
                )
            return False
        job = _Job(key, kind, fn, self.simulator.now)
        if self.first_arrival is None:
            self.first_arrival = self.simulator.now
        self.submitted += 1
        _telemetry.get_recorder().count(
            "midas.pipeline.submitted", station=self.name, kind=kind
        )
        worker = self._assign(job)
        if worker is None:
            self._shared.append(job)
            self._gauge_depth()
            self._kick_idle()
        else:
            worker.queue.append(job)
            self._gauge_depth()
            if not worker.busy:
                self._begin(worker)
        return True

    def _assign(self, job: _Job) -> _Worker | None:
        """Pick the worker for ``job`` (None = shared queue)."""
        if self.config.dispatch == "shared":
            return None
        if self.config.dispatch == "rr":
            worker = self._workers[self._rr_next]
            self._rr_next = (self._rr_next + 1) % len(self._workers)
            return worker
        # Stable across processes and runs (hash() is randomized).
        shard = zlib.crc32(job.key.encode("utf-8")) % len(self._workers)
        return self._workers[shard]

    def _kick_idle(self) -> None:
        for worker in self._workers:
            if not worker.busy and self._shared:
                self._begin(worker)

    # -- service ----------------------------------------------------------------

    def _begin(self, worker: _Worker) -> None:
        job = worker.queue.popleft() if worker.queue else self._shared.popleft()
        worker.busy = True
        wait = self.simulator.now - job.enqueued_at
        self.wait_seconds += wait
        service = self._draw_service()
        recorder = _telemetry.get_recorder()
        recorder.observe(
            "midas.pipeline.wait", wait, station=self.name, kind=job.kind
        )
        self._gauge_depth()
        worker.event = self.simulator.schedule(
            service, self._complete, worker, job, service
        )

    def _draw_service(self) -> float:
        mean = self.config.service_time
        if mean <= 0.0:
            return 0.0
        if self.config.service_distribution == "exponential":
            return self._rng.expovariate(1.0 / mean)
        return mean

    def _complete(self, worker: _Worker, job: _Job, service: float) -> None:
        worker.event = None
        self.service_seconds += service
        self.completed += 1
        recorder = _telemetry.get_recorder()
        recorder.observe(
            "midas.pipeline.service", service, station=self.name, kind=job.kind
        )
        recorder.observe(
            "midas.pipeline.sojourn",
            self.simulator.now - job.enqueued_at,
            station=self.name,
            kind=job.kind,
        )
        recorder.count(
            "midas.pipeline.completed", station=self.name, kind=job.kind
        )
        try:
            job.fn()
        except Exception as exc:  # noqa: BLE001 - one bad job must not stall the pool
            self.failed += 1
            recorder.count(
                "midas.pipeline.failed", station=self.name, kind=job.kind
            )
            logger.warning("%s: %s job for %s failed: %s",
                           self.name, job.kind, job.key, exc)
        worker.busy = False
        if worker.queue or self._shared:
            self._begin(worker)

    # -- crash support ----------------------------------------------------------

    def reset_volatile(self) -> None:
        """Crash model: queued and in-service work evaporates.

        Counters (durable accounting) survive; a restarted base's
        reconciler re-generates whatever work mattered.
        """
        self._shared.clear()
        for worker in self._workers:
            worker.queue.clear()
            worker.busy = False
            if worker.event is not None:
                worker.event.cancel()
                worker.event = None
        self._gauge_depth()

    # -- introspection ----------------------------------------------------------

    def depth(self) -> int:
        """Jobs currently waiting (excluding the ones in service)."""
        return len(self._shared) + sum(len(w.queue) for w in self._workers)

    def in_service(self) -> int:
        """Jobs currently holding a worker."""
        return sum(1 for worker in self._workers if worker.busy)

    @property
    def idle(self) -> bool:
        """True when no job is queued or in service."""
        return self.depth() == 0 and self.in_service() == 0

    def stats(self) -> dict[str, Any]:
        """An exact cumulative snapshot (cheap; safe to sample per window)."""
        return {
            "workers": self.config.workers,
            "dispatch": self.config.dispatch,
            "submitted": self.submitted,
            "completed": self.completed,
            "shed": self.shed,
            "failed": self.failed,
            "depth": self.depth(),
            "in_service": self.in_service(),
            "wait_seconds": self.wait_seconds,
            "service_seconds": self.service_seconds,
        }

    def _gauge_depth(self) -> None:
        recorder = _telemetry.get_recorder()
        recorder.gauge("midas.pipeline.depth", self.depth(), station=self.name)
        recorder.gauge(
            "midas.pipeline.in_service", self.in_service(), station=self.name
        )

    def __repr__(self) -> str:
        return (
            f"<AcceptQueuePipeline {self.name} workers={self.config.workers} "
            f"dispatch={self.config.dispatch} depth={self.depth()}>"
        )
