"""The adaptation service — the MIDAS extension receiver.

Every adaptable node carries one :class:`AdaptationService`.  It:

- advertises itself through the discovery layer ("the adaptation service
  advertises itself as a Jini service", §3.3) so bases know the node can
  be adapted;
- serves ``midas.offer`` — verifies the envelope's signature against the
  node's trust store, checks the requested capabilities against the
  node's sandbox policy, resolves implicit extensions (``REQUIRES``),
  binds the node's resource gateway, and inserts the aspect through the
  PROSE API under a fresh local lease;
- serves ``midas.keepalive`` / ``midas.revoke`` from bases;
- autonomously withdraws any extension whose lease lapses — calling the
  extension's ``shutdown()`` first, then ``ProseVM.withdraw`` — which is
  how locality in time and space is enforced when a node leaves a
  proactive space.
"""

from __future__ import annotations

import logging
from typing import Any, Mapping

from repro.aop.aspect import Aspect
from repro.aop.hooks import AdviceContainment
from repro.aop.sandbox import AspectSandbox, SandboxPolicy, SystemGateway
from repro.aop.vm import ProseVM
from repro.discovery.client import DiscoveryClient
from repro.discovery.service import ServiceItem
from repro.errors import (
    DependencyError,
    DistributionError,
    MidasError,
    VettingError,
)
from repro.leasing.lease import Lease
from repro.leasing.table import LeaseTable
from repro.midas.envelope import ExtensionEnvelope
from repro.midas.trust import TrustStore
from repro.net.transport import Transport
from repro.sim.kernel import Simulator
from repro.supervision import ExtensionHealth, ExtensionSupervisor, SupervisionPolicy
from repro.telemetry import runtime as _telemetry
from repro.util.signal import Signal

logger = logging.getLogger(__name__)

OFFER = "midas.offer"
KEEPALIVE = "midas.keepalive"
REVOKE = "midas.revoke"
#: One-way report a receiver sends its base when it quarantines an extension.
HEALTH = "midas.health"

#: The Jini interface name the adaptation service advertises under.
ADAPTATION_INTERFACE = "midas.AdaptationService"

#: Reasons passed to ``on_withdrawn``.
REASON_LEASE_EXPIRED = "lease-expired"
REASON_REVOKED = "revoked"
REASON_REPLACED = "replaced"
REASON_LOCAL = "local-request"
REASON_CRASH = "crash"
REASON_QUARANTINED = "quarantined"


class InstalledExtension:
    """One live extension on this node."""

    __slots__ = (
        "envelope",
        "aspect",
        "lease_id",
        "base_id",
        "sandbox",
        "implicit",
        "trace",
    )

    def __init__(
        self,
        envelope: ExtensionEnvelope,
        aspect: Aspect,
        lease_id: str,
        base_id: str,
        sandbox: AspectSandbox,
        implicit: list[Aspect],
        trace: Any = None,
    ):
        self.envelope = envelope
        self.aspect = aspect
        self.lease_id = lease_id
        self.base_id = base_id
        self.sandbox = sandbox
        #: Implicit (dependency) aspects inserted on behalf of this one.
        self.implicit = implicit
        #: Span context of the install, so later lifecycle spans (renewal,
        #: quarantine, withdrawal) join the same trace.
        self.trace = trace

    @property
    def name(self) -> str:
        """The extension's logical name."""
        return self.envelope.name

    def __repr__(self) -> str:
        return (
            f"<InstalledExtension {self.name} v{self.envelope.version} "
            f"from {self.base_id}>"
        )


class _InstallTransaction:
    """Undo log for one :meth:`AdaptationService._accept`.

    Every state mutation made during an install registers its inverse;
    on failure :meth:`rollback` runs the inverses in reverse order, each
    one individually guarded so a broken undo step cannot strand the
    ones behind it.  A committed transaction drops its log — the install
    is then permanent and withdrawal is the normal lifecycle's job.
    """

    __slots__ = ("_undo", "rolled_back")

    def __init__(self) -> None:
        self._undo: list[Any] = []
        self.rolled_back = False

    def add_undo(self, step: Any) -> None:
        self._undo.append(step)

    def commit(self) -> None:
        self._undo.clear()

    def rollback(self) -> None:
        self.rolled_back = bool(self._undo)
        for step in reversed(self._undo):
            try:
                step()
            except Exception as exc:  # noqa: BLE001 - keep unwinding
                logger.warning("install rollback step failed: %s", exc)
        self._undo.clear()


class AdaptationService:
    """The per-node extension receiver."""

    def __init__(
        self,
        vm: ProseVM,
        transport: Transport,
        simulator: Simulator,
        trust_store: TrustStore,
        policy: SandboxPolicy | None = None,
        services: Mapping[str, Any] | None = None,
        discovery: DiscoveryClient | None = None,
        attributes: Mapping[str, Any] | None = None,
        supervision: SupervisionPolicy | None = None,
        vetting: str = "verify",
    ):
        self.vm = vm
        self.transport = transport
        self.simulator = simulator
        self.trust_store = trust_store
        #: What this node is willing to grant extensions (preferences).
        self.policy = policy or SandboxPolicy.permissive()
        #: How the node treats publish-time vet verdicts:
        #: ``"trust"`` skips the check; ``"verify"`` (default)
        #: authenticates a shipped report's digest signature and refuses
        #: reports that carry errors (unvetted legacy envelopes are
        #: admitted but counted); ``"revet"`` re-runs the static analyzer
        #: on the deserialized aspect before insertion.
        if vetting not in ("trust", "verify", "revet"):
            raise ValueError(f"unknown vetting mode {vetting!r}")
        self.vetting = vetting
        self.discovery = discovery
        self.node_id = transport.node.node_id
        self._services = dict(services or {})
        self._attributes = dict(attributes or {})

        #: Fires with (installed,) after an extension is inserted.
        self.on_installed = Signal(f"{self.node_id}.on_installed")
        #: Fires with (installed, reason) after an extension is withdrawn.
        self.on_withdrawn = Signal(f"{self.node_id}.on_withdrawn")
        #: Fires with (envelope, error) when an offer is rejected.
        self.on_rejected = Signal(f"{self.node_id}.on_rejected")

        self._leases = LeaseTable(simulator, name=f"{self.node_id}.extensions")
        self._leases.on_expired.connect(self._lease_expired)
        self._installed: dict[str, InstalledExtension] = {}  # lease_id -> ext
        # Implicit aspects shared between extensions, refcounted by class.
        self._implicit: dict[type, tuple[Aspect, int]] = {}
        self._registration = None

        #: Optional advice supervisor; None keeps the classic zero-overhead
        #: dispatch (no containment wrapper is woven at all).
        self.supervisor: ExtensionSupervisor | None = None
        if supervision is not None:
            self.supervisor = ExtensionSupervisor(
                simulator, supervision, node_id=self.node_id
            )
            self.supervisor.on_quarantine.connect(self._quarantined)

        transport.register(OFFER, self._serve_offer)
        transport.register(KEEPALIVE, self._serve_keepalive)
        transport.register(REVOKE, self._serve_revoke)

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "AdaptationService":
        """Advertise the adaptation service through discovery."""
        if self.discovery is not None and self._registration is None:
            item = ServiceItem(
                ADAPTATION_INTERFACE,
                self.node_id,
                {"midas": "receiver", **self._attributes},
            )
            self._registration = self.discovery.register(item)
        return self

    def stop(self) -> None:
        """Withdraw everything and stop advertising."""
        for installed in list(self._installed.values()):
            self._withdraw(installed, REASON_LOCAL)
        if self.discovery is not None and self._registration is not None:
            self.discovery.cancel(self._registration)
            self._registration = None

    def reset_volatile(self) -> None:
        """Crash model: every installed extension vanishes with memory.

        Extensions are volatile by design — "the extension is immediately
        withdrawn" when not kept alive (§3.2) — so a crash simply loses
        them all, leases included.  Calling :meth:`start` after restart
        re-advertises the (empty) adaptation service; bases re-offer on
        their next reconcile.
        """
        for installed in list(self._installed.values()):
            self._withdraw(installed, REASON_CRASH)
        self._leases.reset_volatile()
        self._registration = None

    # -- node-local services exposed to extensions ---------------------------------

    def provide_service(self, capability: str, service: Any) -> None:
        """Expose a node resource to extensions under ``capability``."""
        self._services[capability] = service

    # -- queries ----------------------------------------------------------------------

    def installed(self) -> list[InstalledExtension]:
        """All live extensions, in installation order."""
        return list(self._installed.values())

    @property
    def leases(self) -> LeaseTable:
        """The node's extension lease table (read it, don't mutate it)."""
        return self._leases

    def is_installed(self, name: str) -> bool:
        """True if an extension with logical name ``name`` is live."""
        return any(ext.name == name for ext in self._installed.values())

    def find(self, name: str) -> InstalledExtension | None:
        """The live extension named ``name``, if any."""
        for ext in self._installed.values():
            if ext.name == name:
                return ext
        return None

    # -- pull-style installation (tuple-space distribution) -----------------------------

    def install_envelope(
        self,
        envelope: ExtensionEnvelope,
        provider: str = "tuple-space",
        duration: float = 10.0,
    ) -> str:
        """Install an envelope acquired by pulling (rather than offered).

        Runs the exact offer pipeline — signature verification before
        deserialization, capability check, implicit extensions, sandbox,
        local lease — and returns the local lease id the caller must keep
        alive with :meth:`renew_installation`.
        """
        return self._accept(provider, envelope, duration)["lease_id"]

    def renew_installation(self, lease_id: str, duration: float | None = None) -> bool:
        """Keep a pulled installation alive; False if it already lapsed."""
        if lease_id not in self._leases:
            return False
        self._leases.renew(lease_id, duration)
        return True

    # -- offer handling ------------------------------------------------------------------

    def _serve_offer(self, sender: str, body: dict[str, Any]) -> dict[str, Any]:
        envelope: ExtensionEnvelope = body["envelope"]
        duration: float = body.get("duration", 10.0)
        try:
            return self._accept(sender, envelope, duration)
        except MidasError as exc:
            logger.info(
                "%s: rejected extension %s from %s: %s",
                self.node_id,
                envelope.name,
                sender,
                exc,
            )
            self.on_rejected.fire(envelope, exc)
            raise

    def _telemetry_event(self, name: str, **fields: Any) -> None:
        _telemetry.get_recorder().event(name, node=self.node_id, **fields)

    def _accept(
        self, base_id: str, envelope: ExtensionEnvelope, duration: float
    ) -> dict[str, Any]:
        existing = self._find_from_base(base_id, envelope.name)
        if existing is not None:
            if envelope.version <= existing.envelope.version:
                # Same (or stale) extension re-offered: refresh the lease.
                lease = self._leases.renew(existing.lease_id, duration)
                return {"lease_id": lease.lease_id, "duration": lease.duration}
            # Newer version: replacement of an obsolete extension (§3.2).
            self._withdraw(existing, REASON_REPLACED)

        recorder = _telemetry.get_recorder()
        txn = _InstallTransaction()
        trace = None
        try:
            with recorder.span(
                "midas.install",
                node=self.node_id,
                extension=envelope.name,
                base=base_id,
            ) as span:
                trace = getattr(span, "context", None)

                # 1. Security: verify *before* deserialization.
                aspect = envelope.open(self.trust_store)

                # 2. Static vetting verdict (publish-time report or re-run).
                self._vet_gate(envelope, aspect, base_id)

                # 3. Capabilities: the node's preferences must cover the request.
                denied = [
                    capability
                    for capability in sorted(envelope.capabilities)
                    if not self.policy.allows(capability)
                ]
                if denied:
                    raise DistributionError(
                        f"extension {envelope.name!r} requires denied "
                        f"capabilities {denied}"
                    )

                # 4. Implicit extensions (e.g. session management for access
                # control), transitively, dependencies first.
                implicit = self._resolve_implicit(aspect, txn)

                # 5. Sandbox + gateway, then insertion through the PROSE API.
                sandbox = AspectSandbox(
                    self.policy.restricted_to(envelope.capabilities), aspect.name
                )
                aspect.bind(SystemGateway(self._services, sandbox))
                txn.add_undo(lambda: self._retract(aspect))
                self.vm.insert(
                    aspect, sandbox=sandbox, containment=self._guard_for(aspect)
                )

                lease = self._leases.grant(base_id, envelope.name, duration)
                txn.add_undo(lambda: self._undo_lease(lease.lease_id))
        except Exception:
            # Atomicity: any failure mid-install restores the exact
            # pre-offer state — no dependency stays woven, no lease stays
            # granted, no refcount stays bumped.
            txn.rollback()
            recorder.count(
                "midas.rejections", node=self.node_id, extension=envelope.name
            )
            if txn.rolled_back:
                recorder.count(
                    "midas.rollbacks", node=self.node_id, extension=envelope.name
                )
                self._telemetry_event(
                    "midas.rolled_back", extension=envelope.name, base=base_id
                )
            raise
        txn.commit()
        installed = InstalledExtension(
            envelope, aspect, lease.lease_id, base_id, sandbox, implicit, trace
        )
        self._installed[lease.lease_id] = installed
        logger.debug("%s: installed %s from %s", self.node_id, envelope.name, base_id)
        recorder.count("midas.installs", node=self.node_id, extension=envelope.name)
        self._telemetry_event(
            "midas.installed", extension=envelope.name, base=base_id,
            lease_id=lease.lease_id,
        )
        self.on_installed.fire(installed)
        return {"lease_id": lease.lease_id, "duration": lease.duration}

    def _guard_for(self, aspect: Aspect) -> AdviceContainment | None:
        return None if self.supervisor is None else self.supervisor.guard(aspect)

    def _vet_gate(
        self, envelope: ExtensionEnvelope, aspect: Aspect, base_id: str
    ) -> None:
        """Refuse extensions whose static vetting verdict blocks install.

        In ``"verify"`` mode the publish-time report travels in the
        envelope; its digest signature is authenticated against the
        trust store (a forged or tampered report is a verification
        failure) and any error-severity finding refuses the install.
        ``"revet"`` ignores the shipped verdict and re-runs the analyzer
        locally against the capabilities the sandbox will actually grant.
        """
        if self.vetting == "trust":
            return
        if self.vetting == "verify":
            report = envelope.verify_vet_report(self.trust_store)
            if report is None:
                # Legacy unvetted envelope: admit, but leave a trace so
                # operators can find bases that skip the vetted path.
                _telemetry.get_recorder().count(
                    "midas.unvetted", node=self.node_id, extension=envelope.name
                )
                return
        else:  # revet: re-derive the verdict from the deserialized aspect
            from repro.vetting.vetter import Vetter

            report = Vetter().vet_instance(
                aspect,
                extension=envelope.name,
                declared=envelope.capabilities,
            )
        if report.has_errors:
            recorder = _telemetry.get_recorder()
            recorder.count(
                "midas.vet_rejections", node=self.node_id, extension=envelope.name
            )
            self._telemetry_event(
                "midas.vet_rejected",
                extension=envelope.name,
                stage="install",
                base=base_id,
                rules=sorted({f.rule for f in report.errors()}),
            )
            raise VettingError(
                f"extension {envelope.name!r} refused by vetting: "
                + "; ".join(f.message for f in report.errors()),
                report=report,
            )

    def _implicit_chain(self, root: type) -> list[type]:
        """Transitive ``REQUIRES`` closure of ``root``, dependencies first.

        Post-order, so an implicit extension is always inserted before
        anything that requires it.  A cycle is a packaging error and
        raises :class:`~repro.errors.DependencyError` before any state
        changes.
        """
        order: list[type] = []
        seen: set[type] = set()

        def visit(cls: type, path: list[type]) -> None:
            for dependency_class in cls.REQUIRES:
                if dependency_class in path:
                    # Name the whole cycle (A -> B -> A), not just one
                    # participant — with transitive chains the offender
                    # is rarely the class the offer was for.
                    cycle = path[path.index(dependency_class):] + [dependency_class]
                    raise DependencyError(
                        "cyclic REQUIRES chain: "
                        + " -> ".join(entry.__name__ for entry in cycle)
                    )
                if dependency_class in seen:
                    continue
                visit(dependency_class, path + [dependency_class])
                seen.add(dependency_class)
                order.append(dependency_class)

        visit(root, [root])
        return order

    def _resolve_implicit(
        self, aspect: Aspect, txn: _InstallTransaction
    ) -> list[Aspect]:
        resolved: list[Aspect] = []
        for dependency_class in self._implicit_chain(type(aspect)):
            entry = self._implicit.get(dependency_class)
            if entry is None:
                dependency = dependency_class()
                sandbox = AspectSandbox(self.policy, dependency.name)
                dependency.bind(SystemGateway(self._services, sandbox))
                txn.add_undo(
                    lambda cls=dependency_class, dep=dependency: (
                        self._undo_new_implicit(cls, dep)
                    )
                )
                self.vm.insert(
                    dependency,
                    sandbox=sandbox,
                    containment=self._guard_for(dependency),
                )
                self._implicit[dependency_class] = (dependency, 1)
            else:
                dependency, count = entry
                self._implicit[dependency_class] = (dependency, count + 1)
                txn.add_undo(
                    lambda cls=dependency_class: self._undo_shared_implicit(cls)
                )
            resolved.append(dependency)
        return resolved

    def _undo_new_implicit(self, dependency_class: type, dependency: Aspect) -> None:
        self._implicit.pop(dependency_class, None)
        self._retract(dependency)

    def _undo_shared_implicit(self, dependency_class: type) -> None:
        entry = self._implicit.get(dependency_class)
        if entry is not None:
            aspect, count = entry
            self._implicit[dependency_class] = (aspect, max(1, count - 1))

    def _undo_lease(self, lease_id: str) -> None:
        if lease_id in self._leases:
            self._leases.cancel(lease_id)

    def _retract(self, aspect: Aspect) -> None:
        """Shutdown + unweave one aspect, tolerating broken hooks."""
        self._guarded(aspect.shutdown, "shutdown", aspect.name)
        if self.vm.is_inserted(aspect):
            self._guarded(
                lambda: self.vm.withdraw(aspect), "withdraw", aspect.name
            )
        if self.supervisor is not None:
            self.supervisor.release(aspect)

    def _guarded(self, step: Any, stage: str, name: str) -> None:
        try:
            step()
        except Exception as exc:  # noqa: BLE001 - cleanup must not abort
            logger.warning(
                "%s: %s of %s failed during withdrawal: %s",
                self.node_id,
                stage,
                name,
                exc,
            )
            _telemetry.get_recorder().count(
                "midas.withdraw_errors", node=self.node_id, stage=stage
            )

    def _release_implicit(self, implicit: list[Aspect]) -> None:
        for dependency in implicit:
            entry = self._implicit.get(type(dependency))
            if entry is None:
                continue
            aspect, count = entry
            if count <= 1:
                del self._implicit[type(dependency)]
                self._retract(aspect)
            else:
                self._implicit[type(dependency)] = (aspect, count - 1)

    def _find_from_base(self, base_id: str, name: str) -> InstalledExtension | None:
        for installed in self._installed.values():
            if installed.base_id == base_id and installed.name == name:
                return installed
        return None

    # -- keep-alive and revocation -----------------------------------------------------------

    def _serve_keepalive(self, sender: str, body: dict[str, Any]) -> dict[str, Any]:
        recorder = _telemetry.get_recorder()
        with recorder.span("midas.renew", node=self.node_id, base=sender) as span:
            renewed: list[str] = []
            unknown: list[str] = []
            for lease_id in body["lease_ids"]:
                if lease_id in self._leases:
                    self._leases.renew(lease_id, body.get("duration"))
                    renewed.append(lease_id)
                else:
                    unknown.append(lease_id)
            recorder.count("midas.keepalives", len(renewed), node=self.node_id)
            span.attrs["renewed"] = len(renewed)
            span.attrs["unknown"] = len(unknown)
        return {"renewed": renewed, "unknown": unknown}

    def _serve_revoke(self, sender: str, body: dict[str, Any]) -> dict[str, Any]:
        lease_id = body["lease_id"]
        installed = self._installed.get(lease_id)
        if installed is None:
            return {"revoked": False}
        with _telemetry.get_recorder().span(
            "midas.withdraw",
            node=self.node_id,
            extension=installed.name,
            reason=body.get("reason", REASON_REVOKED),
        ):
            self._withdraw(installed, body.get("reason", REASON_REVOKED))
        return {"revoked": True}

    def _lease_expired(self, lease: Lease) -> None:
        installed = self._installed.get(lease.lease_id)
        if installed is not None:
            logger.debug(
                "%s: lease of %s expired; withdrawing", self.node_id, installed.name
            )
            self._withdraw(installed, REASON_LEASE_EXPIRED)

    def withdraw(self, name: str, reason: str = REASON_LOCAL) -> bool:
        """Locally withdraw the extension named ``name``; True if found."""
        installed = self.find(name)
        if installed is None:
            return False
        self._withdraw(installed, reason)
        return True

    def _withdraw(self, installed: InstalledExtension, reason: str) -> None:
        """Remove one extension, guaranteed to run to completion.

        The bookkeeping (installed map, lease) is cleared *first* and
        every step that executes extension code — ``shutdown()``, the
        unweave, implicit-dependency release — is individually guarded,
        so a throwing shutdown hook can neither abort lease cleanup nor
        leave the extension listed as installed.
        """
        _telemetry.get_recorder().count(
            "midas.withdrawals", node=self.node_id, reason=reason
        )
        self._telemetry_event(
            "midas.withdrawn",
            extension=installed.name,
            reason=reason,
            base=installed.base_id,
        )
        self._installed.pop(installed.lease_id, None)
        if installed.lease_id in self._leases:
            self._leases.cancel(installed.lease_id)
        self._retract(installed.aspect)
        self._release_implicit(installed.implicit)
        self.on_withdrawn.fire(installed, reason)

    # -- quarantine ---------------------------------------------------------------------------

    def _quarantined(self, aspect: Aspect, health: ExtensionHealth) -> None:
        """Supervisor verdict: withdraw the offender and tell its base.

        ``aspect`` may be an explicitly installed extension or an
        implicit dependency; in the latter case every installed
        extension that pulled it in is withdrawn (the dependency itself
        goes away with the last reference).  Dispatch safety: advice
        chains capture immutable tuples, so withdrawing synchronously
        from inside an interception is safe — the quarantined advice is
        also short-circuited by its guard from this moment on.
        """
        victims = [
            installed
            for installed in self._installed.values()
            if installed.aspect is aspect
        ]
        if not victims:
            victims = [
                installed
                for installed in self._installed.values()
                if any(dep is aspect for dep in installed.implicit)
            ]
        recorder = _telemetry.get_recorder()
        for victim in victims:
            # The logical (catalog) name when the offender is the victim
            # itself; the aspect's own name for implicit dependencies.
            offender = victim.name if victim.aspect is aspect else health.aspect_name
            span = recorder.start_span(
                "midas.quarantine",
                parent=victim.trace,
                node=self.node_id,
                extension=victim.name,
                offender=offender,
            )
            try:
                with span.activate():
                    self._report_health(victim, health, offender)
                    self._withdraw(victim, REASON_QUARANTINED)
            finally:
                span.end()

    def _report_health(
        self, victim: InstalledExtension, health: ExtensionHealth, offender: str
    ) -> None:
        """One-way ``midas.health`` report to the victim's base.

        Best-effort: pull-installed extensions have no live base (their
        ``base_id`` names a tuple space), so delivery failures are
        logged, never raised — the local withdrawal must proceed
        regardless.
        """
        body = {
            "extension": victim.name,
            "version": victim.envelope.version,
            "lease_id": victim.lease_id,
            "node_class": str(self._attributes.get("class", self.node_id)),
            "reason": REASON_QUARANTINED,
            "offender": offender,
            "contained": health.contained,
            "strikes": [strike.as_dict() for strike in health.strikes],
        }
        _telemetry.get_recorder().count(
            "midas.health_reports", node=self.node_id, extension=victim.name
        )
        try:
            self.transport.notify(victim.base_id, HEALTH, body)
        except Exception as exc:  # noqa: BLE001 - report is best-effort
            logger.warning(
                "%s: could not report quarantine of %s to %s: %s",
                self.node_id,
                victim.name,
                victim.base_id,
                exc,
            )

    def __repr__(self) -> str:
        return f"<AdaptationService {self.node_id} installed={len(self._installed)}>"
