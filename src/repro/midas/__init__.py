"""MIDAS — MIddleware for ADaptive Services.

The second layer of the paper's platform: extension management on top of
PROSE.  It provides (§3.2):

- **extension distribution** — :class:`~repro.midas.base.ExtensionBase`
  discovers nodes joining a local environment (via the discovery layer)
  and pushes them the environment's extensions; the
  :class:`~repro.midas.receiver.AdaptationService` on each node verifies,
  instantiates and inserts them through the PROSE API;
- **locality of adaptations** — every installed extension is leased; the
  base keeps leases alive while the node is present, and the receiver
  autonomously withdraws extensions whose lease lapses (after notifying
  the extension so it can shut down cleanly);
- **security** — extensions are signed by the instantiating entity
  (:mod:`repro.midas.trust`); receivers verify the signature against
  their trust store *before* deserialization and insertion, and run
  extension advice inside a capability sandbox.

Roles are symmetric: a node may run a base, a receiver, or both
(peer-to-peer self-configuring mode).
"""

from repro.midas.base import AdaptationRecord, ExtensionBase
from repro.midas.catalog import ExtensionCatalog
from repro.midas.envelope import ExtensionEnvelope
from repro.midas.pipeline import AcceptQueuePipeline, PipelineConfig
from repro.midas.receiver import (
    REASON_QUARANTINED,
    AdaptationService,
    InstalledExtension,
)
from repro.midas.remote import RemoteCaller, ServiceRef
from repro.midas.trust import Signer, TrustStore

__all__ = [
    "AcceptQueuePipeline",
    "AdaptationRecord",
    "AdaptationService",
    "PipelineConfig",
    "ExtensionBase",
    "ExtensionCatalog",
    "ExtensionEnvelope",
    "InstalledExtension",
    "REASON_QUARANTINED",
    "RemoteCaller",
    "ServiceRef",
    "Signer",
    "TrustStore",
]
