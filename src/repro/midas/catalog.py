"""The extension catalog of a base station.

"Extension base nodes contain a list of extensions" (§3.2).  A catalog
entry holds a *factory* — extensions are instantiated and configured per
distribution (the signature covers the configured instance, per the
paper's security model) — plus the version counter that drives extension
replacement when the local policy evolves.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.aop.aspect import Aspect
from repro.errors import UnknownExtensionError
from repro.midas.envelope import ExtensionEnvelope
from repro.midas.trust import Signer

ExtensionFactory = Callable[[], Aspect]


class _Entry:
    __slots__ = ("name", "factory", "version")

    def __init__(self, name: str, factory: ExtensionFactory):
        self.name = name
        self.factory = factory
        self.version = 1


class ExtensionCatalog:
    """Named extension factories with versioning."""

    def __init__(self, signer: Signer):
        self.signer = signer
        self._entries: dict[str, _Entry] = {}

    def add(self, name: str, factory: ExtensionFactory) -> None:
        """Add (or re-add) an extension under ``name``.

        Re-adding bumps the version — used by
        :meth:`~repro.midas.base.ExtensionBase.replace_extension` when a
        hall's policy changes.
        """
        existing = self._entries.get(name)
        if existing is None:
            self._entries[name] = _Entry(name, factory)
        else:
            existing.factory = factory
            existing.version += 1

    def remove(self, name: str) -> None:
        """Remove ``name`` from the catalog."""
        if name not in self._entries:
            raise UnknownExtensionError(f"no extension {name!r} in catalog")
        del self._entries[name]

    def names(self) -> list[str]:
        """All catalog entry names, in insertion order."""
        return list(self._entries)

    def version_of(self, name: str) -> int:
        """Current version of ``name``."""
        return self._require(name).version

    def seal(self, name: str) -> ExtensionEnvelope:
        """Instantiate, configure, serialize and sign extension ``name``."""
        entry = self._require(name)
        aspect = entry.factory()
        if not isinstance(aspect, Aspect):
            raise UnknownExtensionError(
                f"factory for {name!r} returned {type(aspect).__name__}, not an Aspect"
            )
        return ExtensionEnvelope.seal(name, aspect, self.signer, version=entry.version)

    def seal_all(self) -> Iterator[ExtensionEnvelope]:
        """Fresh envelopes for every catalog entry."""
        for name in self._entries:
            yield self.seal(name)

    def _require(self, name: str) -> _Entry:
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownExtensionError(f"no extension {name!r} in catalog") from None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __repr__(self) -> str:
        return f"<ExtensionCatalog {self.names()}>"
