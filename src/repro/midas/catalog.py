"""The extension catalog of a base station.

"Extension base nodes contain a list of extensions" (§3.2).  A catalog
entry holds a *factory* — extensions are instantiated and configured per
distribution (the signature covers the configured instance, per the
paper's security model) — plus the version counter that drives extension
replacement when the local policy evolves.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.aop.aspect import Aspect
from repro.errors import UnknownExtensionError, VettingError
from repro.midas.envelope import ExtensionEnvelope
from repro.midas.trust import Signer
from repro.telemetry.runtime import get_recorder

ExtensionFactory = Callable[[], Aspect]


class _Entry:
    __slots__ = (
        "name",
        "factory",
        "version",
        "unhealthy",
        "vet_report",
        "advice_summary",
        "vet_report_dict",
        "vet_signature",
        "pending_aspect",
    )

    def __init__(self, name: str, factory: ExtensionFactory):
        self.name = name
        self.factory = factory
        self.version = 1
        #: node_class -> version that was reported unhealthy there.  The
        #: extension stays suppressed for that class until a newer
        #: version is published (``add`` bumps past the mark).
        self.unhealthy: dict[str, int] = {}
        #: VetReport from :meth:`ExtensionCatalog.publish`, or None for
        #: entries added through the legacy unvetted :meth:`add` path.
        self.vet_report = None
        #: ExtensionSummary cached so vetting the next publication
        #: against this entry never re-instantiates the factory.
        self.advice_summary = None
        #: Canonical report dict + signature, computed once at publish
        #: so :meth:`ExtensionCatalog.seal` never re-digests or re-signs.
        self.vet_report_dict = None
        self.vet_signature = None
        #: The instance :meth:`ExtensionCatalog.publish` vetted, shipped
        #: by the next :meth:`ExtensionCatalog.seal` — the verdict then
        #: covers exactly the instance that travels.
        self.pending_aspect = None


class ExtensionCatalog:
    """Named extension factories with versioning."""

    def __init__(self, signer: Signer):
        self.signer = signer
        self._entries: dict[str, _Entry] = {}

    def add(self, name: str, factory: ExtensionFactory) -> None:
        """Add (or re-add) an extension under ``name``.

        Re-adding bumps the version — used by
        :meth:`~repro.midas.base.ExtensionBase.replace_extension` when a
        hall's policy changes.
        """
        existing = self._entries.get(name)
        if existing is None:
            self._entries[name] = _Entry(name, factory)
        else:
            existing.factory = factory
            existing.version += 1
            existing.vet_report = None
            existing.advice_summary = None
            existing.vet_report_dict = None
            existing.vet_signature = None
            existing.pending_aspect = None

    def publish(
        self,
        name: str,
        factory: ExtensionFactory,
        strict: bool = False,
        allowlist: Iterable[frozenset[str]] | None = None,
    ):
        """Vet, then add: the gated path into the catalog.

        Instantiates the factory once, runs the static vetter over the
        configured instance — including interference against every other
        vetted entry — and refuses with :class:`VettingError` when the
        report carries install-blocking findings.  On success the entry
        is added (or version-bumped) and the report travels in every
        envelope :meth:`seal` produces for it.

        Returns the :class:`~repro.vetting.report.VetReport` so callers
        can surface warnings even for accepted extensions.
        """
        from repro.vetting.interference import summarize
        from repro.vetting.vetter import Vetter

        aspect = factory()
        if not isinstance(aspect, Aspect):
            raise UnknownExtensionError(
                f"factory for {name!r} returned {type(aspect).__name__}, not an Aspect"
            )
        vetter = Vetter(strict=strict, allowlist=allowlist)
        against = [
            entry.advice_summary
            for entry in self._entries.values()
            if entry.advice_summary is not None and entry.name != name
        ]
        summary = summarize(name, aspect)
        report = vetter.vet_instance(
            aspect, extension=name, against=against, summary=summary
        )
        recorder = get_recorder()
        if report.has_errors:
            recorder.count("midas.vet_rejections")
            recorder.event(
                "midas.vet_rejected",
                extension=name,
                stage="publish",
                rules=sorted({f.rule for f in report.errors()}),
            )
            raise VettingError(
                f"extension {name!r} failed vetting: "
                + "; ".join(f.message for f in report.errors()),
                report=report,
            )
        prior = self._entries.get(name)
        reuse = prior is not None and prior.vet_report is report
        prior_dict = prior.vet_report_dict if reuse else None
        prior_signature = prior.vet_signature if reuse else None
        self.add(name, factory)
        entry = self._entries[name]
        entry.vet_report = report
        entry.advice_summary = summary
        entry.pending_aspect = aspect
        # Sealing reuses the canonical dict and signature; the report is
        # immutable once accepted, so sign it once rather than per
        # envelope.  Re-publication of an unchanged configuration hits
        # the vetter's memo (same report object) and keeps both as-is.
        if reuse:
            entry.vet_report_dict = prior_dict
            entry.vet_signature = prior_signature
        else:
            entry.vet_report_dict = report.as_dict()
            entry.vet_signature = self.signer.sign(report.digest())
        return report

    def vet_report_of(self, name: str):
        """The publish-time report for ``name`` (None if added unvetted)."""
        return self._require(name).vet_report

    def remove(self, name: str) -> None:
        """Remove ``name`` from the catalog."""
        if name not in self._entries:
            raise UnknownExtensionError(f"no extension {name!r} in catalog")
        del self._entries[name]

    def names(self) -> list[str]:
        """All catalog entry names, in insertion order."""
        return list(self._entries)

    # -- health -----------------------------------------------------------------

    def mark_unhealthy(
        self, name: str, node_class: str, version: int | None = None
    ) -> None:
        """Record that ``version`` misbehaved on nodes of ``node_class``.

        Defaults to the current version.  Marks never regress: a stale
        report about an older version cannot re-poison a newer one.
        """
        entry = self._require(name)
        marked = entry.version if version is None else version
        if marked > entry.unhealthy.get(node_class, 0):
            entry.unhealthy[node_class] = marked

    def is_healthy(self, name: str, node_class: str) -> bool:
        """False while the current version is marked bad for ``node_class``.

        Unknown names are vacuously healthy (nothing to suppress).
        Publishing a fixed extension via :meth:`add` bumps the version
        past the mark and heals the pair automatically.
        """
        entry = self._entries.get(name)
        if entry is None:
            return True
        return entry.unhealthy.get(node_class, 0) < entry.version

    def unhealthy_classes(self, name: str) -> dict[str, int]:
        """The node classes where ``name`` is marked, with the bad version."""
        return dict(self._require(name).unhealthy)

    def version_of(self, name: str) -> int:
        """Current version of ``name``."""
        return self._require(name).version

    def seal(self, name: str) -> ExtensionEnvelope:
        """Instantiate, configure, serialize and sign extension ``name``.

        The first seal after :meth:`publish` ships the very instance the
        vetter analyzed; later seals instantiate the factory afresh.
        """
        entry = self._require(name)
        if entry.pending_aspect is not None:
            aspect, entry.pending_aspect = entry.pending_aspect, None
        else:
            aspect = entry.factory()
            if not isinstance(aspect, Aspect):
                raise UnknownExtensionError(
                    f"factory for {name!r} returned {type(aspect).__name__}, not an Aspect"
                )
        return ExtensionEnvelope.seal(
            name,
            aspect,
            self.signer,
            version=entry.version,
            vet_report=entry.vet_report_dict,
            vet_signature=entry.vet_signature,
        )

    def seal_all(self) -> Iterator[ExtensionEnvelope]:
        """Fresh envelopes for every catalog entry."""
        for name in self._entries:
            yield self.seal(name)

    def _require(self, name: str) -> _Entry:
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownExtensionError(f"no extension {name!r} in catalog") from None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __repr__(self) -> str:
        return f"<ExtensionCatalog {self.names()}>"
