"""The extension catalog of a base station.

"Extension base nodes contain a list of extensions" (§3.2).  A catalog
entry holds a *factory* — extensions are instantiated and configured per
distribution (the signature covers the configured instance, per the
paper's security model) — plus the version counter that drives extension
replacement when the local policy evolves.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.aop.aspect import Aspect
from repro.errors import UnknownExtensionError
from repro.midas.envelope import ExtensionEnvelope
from repro.midas.trust import Signer

ExtensionFactory = Callable[[], Aspect]


class _Entry:
    __slots__ = ("name", "factory", "version", "unhealthy")

    def __init__(self, name: str, factory: ExtensionFactory):
        self.name = name
        self.factory = factory
        self.version = 1
        #: node_class -> version that was reported unhealthy there.  The
        #: extension stays suppressed for that class until a newer
        #: version is published (``add`` bumps past the mark).
        self.unhealthy: dict[str, int] = {}


class ExtensionCatalog:
    """Named extension factories with versioning."""

    def __init__(self, signer: Signer):
        self.signer = signer
        self._entries: dict[str, _Entry] = {}

    def add(self, name: str, factory: ExtensionFactory) -> None:
        """Add (or re-add) an extension under ``name``.

        Re-adding bumps the version — used by
        :meth:`~repro.midas.base.ExtensionBase.replace_extension` when a
        hall's policy changes.
        """
        existing = self._entries.get(name)
        if existing is None:
            self._entries[name] = _Entry(name, factory)
        else:
            existing.factory = factory
            existing.version += 1

    def remove(self, name: str) -> None:
        """Remove ``name`` from the catalog."""
        if name not in self._entries:
            raise UnknownExtensionError(f"no extension {name!r} in catalog")
        del self._entries[name]

    def names(self) -> list[str]:
        """All catalog entry names, in insertion order."""
        return list(self._entries)

    # -- health -----------------------------------------------------------------

    def mark_unhealthy(
        self, name: str, node_class: str, version: int | None = None
    ) -> None:
        """Record that ``version`` misbehaved on nodes of ``node_class``.

        Defaults to the current version.  Marks never regress: a stale
        report about an older version cannot re-poison a newer one.
        """
        entry = self._require(name)
        marked = entry.version if version is None else version
        if marked > entry.unhealthy.get(node_class, 0):
            entry.unhealthy[node_class] = marked

    def is_healthy(self, name: str, node_class: str) -> bool:
        """False while the current version is marked bad for ``node_class``.

        Unknown names are vacuously healthy (nothing to suppress).
        Publishing a fixed extension via :meth:`add` bumps the version
        past the mark and heals the pair automatically.
        """
        entry = self._entries.get(name)
        if entry is None:
            return True
        return entry.unhealthy.get(node_class, 0) < entry.version

    def unhealthy_classes(self, name: str) -> dict[str, int]:
        """The node classes where ``name`` is marked, with the bad version."""
        return dict(self._require(name).unhealthy)

    def version_of(self, name: str) -> int:
        """Current version of ``name``."""
        return self._require(name).version

    def seal(self, name: str) -> ExtensionEnvelope:
        """Instantiate, configure, serialize and sign extension ``name``."""
        entry = self._require(name)
        aspect = entry.factory()
        if not isinstance(aspect, Aspect):
            raise UnknownExtensionError(
                f"factory for {name!r} returned {type(aspect).__name__}, not an Aspect"
            )
        return ExtensionEnvelope.seal(name, aspect, self.signer, version=entry.version)

    def seal_all(self) -> Iterator[ExtensionEnvelope]:
        """Fresh envelopes for every catalog entry."""
        for name in self._entries:
            yield self.seal(name)

    def _require(self, name: str) -> _Entry:
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownExtensionError(f"no extension {name!r} in catalog") from None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __repr__(self) -> str:
        return f"<ExtensionCatalog {self.names()}>"
