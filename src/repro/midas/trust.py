"""Signing and trust.

"In MIDAS each extension instance has to be signed.  This ensures that the
received extension has been instantiated and configured by a trusted
entity.  The verification of the originator of an extension is done before
insertion of the extension in PROSE.  Each extension receiver node may
define its preferences and trusted entities." (§3.2)

The original platform would use public-key certificates.  Offline and
dependency-free, we model the same trust relationships with HMAC-SHA256
over a shared secret per signing entity: a :class:`Signer` holds the
entity's key; a receiver's :class:`TrustStore` holds the keys of the
entities it trusts.  The protocol-visible behaviour is identical —
unsigned, tampered, or unknown-signer extensions are rejected before
deserialization — which is what the platform's security layer is
responsible for.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.errors import UntrustedSignerError, VerificationError


class Signer:
    """A trusted entity capable of signing extension payloads."""

    __slots__ = ("entity", "_key")

    def __init__(self, entity: str, key: bytes):
        if not key:
            raise VerificationError("signing key must be non-empty")
        self.entity = entity
        self._key = key

    @classmethod
    def generate(cls, entity: str) -> "Signer":
        """Derive a signer deterministically from the entity name.

        Deterministic keys keep simulation runs reproducible; real
        deployments would generate random keys (or use certificates).
        """
        return cls(entity, hashlib.sha256(f"midas-key:{entity}".encode()).digest())

    def sign(self, payload: bytes) -> bytes:
        """Return the signature of ``payload``."""
        return hmac.new(self._key, payload, hashlib.sha256).digest()

    def export_key(self) -> bytes:
        """The verification key a receiver must be provisioned with."""
        return self._key

    def __repr__(self) -> str:
        return f"<Signer {self.entity!r}>"


class TrustStore:
    """The trusted entities (and their keys) of one receiver node."""

    def __init__(self):
        self._keys: dict[str, bytes] = {}

    def trust(self, entity: str, key: bytes) -> None:
        """Provision the verification key of ``entity``."""
        self._keys[entity] = key

    def trust_signer(self, signer: Signer) -> None:
        """Convenience: trust the entity behind ``signer``."""
        self.trust(signer.entity, signer.export_key())

    def revoke(self, entity: str) -> None:
        """Stop trusting ``entity``."""
        self._keys.pop(entity, None)

    def trusts(self, entity: str) -> bool:
        """True if ``entity`` is in the store."""
        return entity in self._keys

    def trusted_entities(self) -> list[str]:
        """Names of all trusted entities."""
        return sorted(self._keys)

    def verify(self, entity: str, payload: bytes, signature: bytes) -> None:
        """Raise unless ``signature`` is ``entity``'s valid MAC of ``payload``.

        Raises :class:`UntrustedSignerError` for unknown entities and
        :class:`VerificationError` for bad signatures.
        """
        key = self._keys.get(entity)
        if key is None:
            raise UntrustedSignerError(f"signer {entity!r} is not trusted")
        expected = hmac.new(key, payload, hashlib.sha256).digest()
        if not hmac.compare_digest(expected, signature):
            raise VerificationError(
                f"signature of extension from {entity!r} does not verify"
            )

    def __len__(self) -> int:
        return len(self._keys)

    def __repr__(self) -> str:
        return f"<TrustStore entities={self.trusted_entities()}>"
