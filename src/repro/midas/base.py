"""The extension base — the distributing side of MIDAS.

"Extension base nodes contain a list of extensions.  They discover new
nodes joining the network and send extensions to the newcomers." (§3.2)

An :class:`ExtensionBase`:

- watches the discovery layer for adaptation services (either the local
  :class:`~repro.discovery.registrar.LookupService` it co-hosts with, or
  remote events when running as a pure peer) and pushes every catalog
  extension to each newly seen node;
- keeps distributed extensions alive by sending ``midas.keepalive``
  renewals; when a node stops answering, the base abandons its leases
  (the node's own expiry already withdrew the extension there);
- supports revocation on demand and *replacement* — re-adding an
  extension under the same name bumps its version and re-offers it to
  every adapted node, which swaps the old copy for the new one;
- records every action in an activity log ("each MIDAS extension base
  keeps track of its extension activity: what nodes were adapted, at what
  point in time") and implements the paper's simple roaming algorithm:
  peer bases are told when a node arrives here, so they stop renewing
  the leases they hold for it.

The base's event handling has two execution modes.  By default
(``pipeline=None``) every piece of work — an offer, a keepalive round, a
health report — runs inline in the callback that triggered it, exactly
as a small hall wants.  Handing the constructor a
:class:`~repro.midas.pipeline.PipelineConfig` interposes an explicit
accept-queue → worker-pool station (:mod:`repro.midas.pipeline`) in
front of the same work: jobs wait for one of N simulated workers, hold
it for a service time, and can be shed under overload — which is what
load experiments measure.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Callable

from repro.discovery.client import DiscoveryClient
from repro.discovery.events import EventKind, RemoteEvent
from repro.discovery.registrar import LookupService
from repro.discovery.service import ServiceItem, ServiceTemplate
from repro.errors import PipelineOverloadError, UnknownExtensionError
from repro.leasing.renewer import RenewalAgent, TrackedLease
from repro.midas.catalog import ExtensionCatalog, ExtensionFactory
from repro.midas.pipeline import AcceptQueuePipeline, PipelineConfig
from repro.midas.receiver import (
    ADAPTATION_INTERFACE,
    HEALTH,
    KEEPALIVE,
    OFFER,
    REVOKE,
)
from repro.net.transport import Transport
from repro.resilience.client import ResilientClient
from repro.resilience.policy import RetryPolicy
from repro.sim.kernel import Simulator
from repro.sim.timers import PeriodicTimer
from repro.telemetry import runtime as _telemetry
from repro.util.signal import Signal

logger = logging.getLogger(__name__)

ROAMED = "midas.roamed"
ROAM_SYNC = "midas.roam.sync"

#: Term of the lease a base asks receivers to grant its extensions.
DEFAULT_EXTENSION_LEASE = 10.0

#: ``(arrival time, base id)`` of a node's newest known arrival.  Epochs
#: order totally (time first, base id breaking same-instant ties), so
#: every roaming conflict — a reordered ROAMED, a duplicated one, two
#: bases both believing they host a node — resolves the same way
#: everywhere: the newest arrival wins.
RoamEpoch = tuple[float, str]


@dataclass(frozen=True)
class AdaptationRecord:
    """One entry of the base's activity log."""

    time: float
    node_id: str
    extension: str
    action: str  # offered | accepted | rejected | renewed-lost | revoked | replaced | roamed
    detail: str = ""


class _Adapted:
    """Base-side record of one extension live on one node."""

    __slots__ = ("node_id", "name", "version", "lease_id", "trace")

    def __init__(
        self,
        node_id: str,
        name: str,
        version: int,
        lease_id: str,
        trace: "_telemetry.SpanContext | None" = None,
    ):
        self.node_id = node_id
        self.name = name
        self.version = version
        self.lease_id = lease_id
        #: Span context of the offer that installed this extension; later
        #: keepalives and revocations parent under it, so the whole
        #: lifecycle forms one trace.
        self.trace = trace


class ExtensionBase:
    """Distributes and manages extensions for one proactive environment."""

    def __init__(
        self,
        transport: Transport,
        simulator: Simulator,
        catalog: ExtensionCatalog,
        lease_duration: float = DEFAULT_EXTENSION_LEASE,
        node_filter: "ServiceTemplate | None" = None,
        retry_policy: RetryPolicy | None = None,
        pipeline: PipelineConfig | None = None,
        renew_batch_interval: float | None = None,
        roam_sync_interval: float | None = None,
    ):
        self.transport = transport
        self.simulator = simulator
        self.catalog = catalog
        self.lease_duration = lease_duration
        #: The accept-queue → worker-pool station all base work runs
        #: through, or None for the classic inline single-worker mode
        #: (byte-identical to the pre-pipeline behavior).
        self.pipeline: AcceptQueuePipeline | None = (
            AcceptQueuePipeline(
                simulator, pipeline, name=f"{transport.node.node_id}.base"
            )
            if pipeline is not None
            else None
        )
        #: When set, offers and revocations retry with backoff (bounded
        #: by the lease term — an offer older than that is stale anyway)
        #: and keepalive failures back off instead of waiting full
        #: periods.  None keeps the classic reconcile-only behavior.
        self.retry_policy = retry_policy
        #: Optional template restricting which adaptation services this
        #: base adapts (e.g. only nodes advertising ``{"role": "robot"}``)
        #: — a hall can have per-device-kind policies.
        self.node_filter = node_filter
        self.node_id = transport.node.node_id

        #: Fires with (node_id, extension_name) when a node accepts an extension.
        self.on_adapted = Signal(f"{self.node_id}.on_adapted")
        #: Fires with (node_id, extension_name, detail) when an offer is rejected.
        self.on_rejected = Signal(f"{self.node_id}.on_rejected")
        #: Fires with (node_id,) when a node's renewals are abandoned.
        self.on_node_lost = Signal(f"{self.node_id}.on_node_lost")
        #: Fires with (node_id, extension_name, report_body) when a node
        #: reports it quarantined one of our extensions.
        self.on_quarantined = Signal(f"{self.node_id}.on_quarantined")
        #: Fires with (node_id, extension_name, ok) when a revocation
        #: resolves — ok=False for remote errors, timeouts, or shedding.
        self.on_revoked = Signal(f"{self.node_id}.on_revoked")

        self.activity_log: list[AdaptationRecord] = []
        self._adapted: dict[tuple[str, str], _Adapted] = {}  # (node, name) -> record
        #: node_id -> advertised node class ("class" service attribute),
        #: used to scope quarantine marks to a whole class of devices.
        self._node_classes: dict[str, str] = {}
        self._peer_bases: list[str] = []
        #: Newest known arrival per node (here or at a peer).  Fed by
        #: local arrivals, incoming ROAMED announcements, and anti-entropy
        #: exchanges; consulted so a stale ROAMED cannot undo a later
        #: arrival and a reconcile cannot resurrect leases a roam dropped.
        self._roam_epochs: dict[str, RoamEpoch] = {}
        #: When set, peer bases periodically exchange digests of their
        #: adapted-node sets and resolve conflicts by newest roam epoch —
        #: so even a permanently lost ROAMED converges within one
        #: interval.  None keeps the classic announce-only behavior.
        self.roam_sync_interval = roam_sync_interval
        self._roam_sync_timer: PeriodicTimer | None = None
        # ``renew_batch_interval`` puts all keepalives on one sweep timer
        # (one kernel event per interval however many nodes are adapted)
        # instead of one timer per lease — the fleet-scale mode.
        self._renewer = RenewalAgent(
            simulator,
            self._send_keepalive,
            name=f"{self.node_id}.extensions",
            backoff=retry_policy,
            batch_interval=renew_batch_interval,
        )
        self._renewer.on_abandoned.connect(self._renewal_abandoned)
        if retry_policy is not None:
            # Unless the caller budgeted explicitly, stop retrying an
            # offer/revoke after one lease term — it is stale by then and
            # the reconciler owns recovery.
            effective = (
                retry_policy
                if retry_policy.deadline is not None
                else retry_policy.with_deadline(lease_duration)
            )
            self._client: ResilientClient | None = ResilientClient(
                transport, simulator, policy=effective, name=f"{self.node_id}.base"
            )
        else:
            self._client = None
        #: Public read access for inspection (breaker states, retry stats).
        self.resilient_client = self._client
        self._reconciler: PeriodicTimer | None = None
        transport.register(ROAMED, self._serve_roamed)
        transport.register(ROAM_SYNC, self._serve_roam_sync)
        transport.register(HEALTH, self._serve_health)

    # -- work dispatch -----------------------------------------------------------

    def _submit(
        self,
        key: str,
        kind: str,
        fn: Callable[[], None],
        on_shed: "Callable[[PipelineOverloadError], None] | None" = None,
    ) -> bool:
        """Run one unit of base work inline, or queue it on the pipeline.

        Without a pipeline this *is* the classic code path: ``fn`` runs
        synchronously, in the exact place the inline implementation ran,
        so default-configured bases behave byte-identically.  With a
        pipeline the work waits for a worker; False means it was shed
        (``on_shed``, if any, already fired).
        """
        if self.pipeline is None:
            fn()
            return True
        return self.pipeline.submit(key, kind, fn, on_shed=on_shed)

    # -- crash support -----------------------------------------------------------

    def reset_volatile(self) -> None:
        """Crash model: forget who was adapted; keep the catalog.

        The catalog (the hall's policy) and the activity log are durable;
        the map of live extensions and the leases being kept alive are
        memory.  After restart the reconciler re-adapts every node it
        still sees registered — receivers treat the re-offer of a version
        they already run as a plain lease refresh, so recovery is
        idempotent.
        """
        for tracked in self._renewer.tracked():
            self._renewer.forget(tracked.lease_id)
        self._adapted.clear()
        self._roam_epochs.clear()
        if self.pipeline is not None:
            self.pipeline.reset_volatile()

    # -- discovery wiring --------------------------------------------------------

    def watch_lookup(self, lookup: LookupService) -> None:
        """Adapt every adaptation service registering at a co-hosted registrar.

        Besides reacting to registration events, the base periodically
        *reconciles*: every registered adaptation service is re-offered
        anything it is missing.  This heals transient divergence — e.g.
        keep-alives abandoned during a lossy spell while the node never
        actually left.
        """
        lookup.on_registered.connect(
            lambda item: self._service_seen(item, fresh=True)
        )
        lookup.on_deregistered.connect(self._service_gone)
        for item in lookup.items():
            self._service_seen(item)
        if self._reconciler is None:
            self._reconciler = PeriodicTimer(
                self.simulator,
                max(self.lease_duration, 1.0),
                lambda: self._reconcile(lookup),
                name=f"{self.node_id}.reconcile",
            ).start()

    def _reconcile(self, lookup: LookupService) -> None:
        for item in lookup.items():
            self._service_seen(item)

    def watch_remote(self, discovery: "DiscoveryClient") -> None:
        """Adapt nodes discovered through a *remote* registrar.

        For deployments where the extension base does not co-host the
        lookup service: subscribe to adaptation-service registration
        events via the Jini event protocol, and reconcile periodically
        with a template query (healing lost event deliveries).
        """
        template = ServiceTemplate(interface=ADAPTATION_INTERFACE)

        def on_event(event: "RemoteEvent") -> None:
            if event.kind is EventKind.REGISTERED:
                self._service_seen(event.item, fresh=True)
            else:
                self._service_gone(event.item, event.kind)

        discovery.listen(template, on_event)

        def reconcile_query() -> None:
            discovery.lookup(
                template,
                lambda items: [self._service_seen(item) for item in items],
            )

        # Services registered before our subscription landed produce no
        # event; query as soon as (and whenever) a registrar is known.
        discovery.on_registrar_found.connect(lambda registrar: reconcile_query())
        reconcile_query()
        if self._reconciler is None:
            self._reconciler = PeriodicTimer(
                self.simulator,
                max(self.lease_duration, 1.0),
                reconcile_query,
                name=f"{self.node_id}.remote-reconcile",
            ).start()

    def _service_seen(self, item: ServiceItem, fresh: bool = False) -> None:
        if item.interface != ADAPTATION_INTERFACE:
            return
        if item.provider == self.node_id:
            return  # never adapt ourselves
        if self.node_filter is not None and not self.node_filter.matches(item):
            return  # outside this base's policy scope
        self._node_classes[item.provider] = str(
            item.attributes.get("class", item.provider)
        )
        self.adapt_node(item.provider, fresh=fresh)

    def _service_gone(self, item: ServiceItem, kind: object = None) -> None:
        if item.interface != ADAPTATION_INTERFACE:
            return
        # The node left our space: stop keeping its extensions alive.  Its
        # receiver-side leases will lapse and withdraw everything locally.
        self._drop_node(item.provider, action="renewed-lost", detail="deregistered")

    # -- distribution ------------------------------------------------------------------

    def adapt_node(self, node_id: str, fresh: bool = False) -> None:
        """Offer every catalog extension to ``node_id``.

        ``fresh=True`` marks a genuine (re-)arrival — a registration
        event, not a periodic reconcile of stale lookup state.  A
        non-fresh adapt is refused when a ROAMED announcement has told
        this base the node now lives at a peer: re-offering then would
        resurrect exactly the leases the roam dropped.
        """
        newly_seen = not any(node == node_id for (node, _) in self._adapted)
        if not fresh and newly_seen:
            known = self._roam_epochs.get(node_id)
            if known is not None and known[1] != self.node_id:
                _telemetry.get_recorder().count(
                    "midas.roam.stale_refused", node=self.node_id
                )
                logger.debug(
                    "%s: refusing stale adapt of %s (roamed to %s at t=%.3f)",
                    self.node_id,
                    node_id,
                    known[1],
                    known[0],
                )
                return
        if fresh or newly_seen:
            self._note_arrival(node_id)
        for name in self.catalog.names():
            self.offer(node_id, name)
        if newly_seen:
            # Roaming is announced on arrival, not on periodic reconciles
            # of a node that never left.
            self._announce_roaming(node_id)

    def offer(self, node_id: str, name: str, force: bool = False) -> None:
        """Offer one catalog extension to one node.

        ``force=True`` re-offers even a version the node already holds —
        the receiver treats that as a plain lease refresh, so it is safe
        and is what load generators and recovery tooling use to produce
        a real end-to-end offer round.
        """
        live = self._adapted.get((node_id, name))
        if not force and live is not None and live.version >= self.catalog.version_of(name):
            return  # already adapted with the current version
        node_class = self._node_classes.get(node_id, node_id)
        if not self.catalog.is_healthy(name, node_class):
            # This version was quarantined on this class of node; hold it
            # back until the catalog publishes a newer one.  No activity
            # log entry — the reconciler hits this every period.
            _telemetry.get_recorder().count(
                "midas.offers_suppressed",
                node=self.node_id,
                extension=name,
                node_class=node_class,
            )
            return

        def on_shed(error: PipelineOverloadError) -> None:
            self._log(node_id, name, "rejected", str(error))
            self.on_rejected.fire(node_id, name, str(error))

        self._submit(
            node_id, "offer", lambda: self._do_offer(node_id, name), on_shed=on_shed
        )

    def _do_offer(self, node_id: str, name: str) -> None:
        """The worker half of :meth:`offer`: seal, send, track the reply."""
        envelope = self.catalog.seal(name)
        self._log(node_id, name, "offered", f"v{envelope.version}")
        recorder = _telemetry.get_recorder()
        # The offer roots a fresh trace (parent=None): the receiver-side
        # install and every later keepalive/revoke hang under it.
        span = recorder.start_span(
            "midas.offer",
            parent=None,
            node=self.node_id,
            target=node_id,
            extension=name,
            version=envelope.version,
        )
        recorder.count("midas.offers", node=self.node_id, extension=name)

        def on_reply(body: dict) -> None:
            lease_id = body["lease_id"]
            previous = self._adapted.get((node_id, name))
            if previous is not None and previous.lease_id != lease_id:
                self._renewer.forget(previous.lease_id)
            self._adapted[(node_id, name)] = _Adapted(
                node_id, name, envelope.version, lease_id, trace=span.context
            )
            if not self._renewer.tracking(lease_id):
                self._renewer.track(
                    lease_id,
                    node_id,
                    body["duration"],
                    resource=name,
                    context=node_id,
                )
            self._log(node_id, name, "accepted", f"lease={lease_id}")
            span.end(lease_id=lease_id)
            self.on_adapted.fire(node_id, name)

        def on_error(error: Exception) -> None:
            self._log(node_id, name, "rejected", str(error))
            span.end(status="error", error=str(error))
            self.on_rejected.fire(node_id, name, str(error))

        with span.activate():
            self._request(
                node_id,
                OFFER,
                {"envelope": envelope, "duration": self.lease_duration},
                on_reply=on_reply,
                on_error=on_error,
            )

    # -- revocation & replacement ----------------------------------------------------------

    def revoke(self, node_id: str, name: str, reason: str = "revoked") -> bool:
        """Actively revoke one extension from one node.

        Returns True when a live adaptation existed (so a revocation was
        initiated); :attr:`on_revoked` later reports how it resolved.
        """
        live = self._adapted.pop((node_id, name), None)
        if live is None:
            return False
        self._renewer.forget(live.lease_id)

        def on_shed(error: PipelineOverloadError) -> None:
            self._log(node_id, name, "revoked", f"shed: {error}")
            self.on_revoked.fire(node_id, name, False)

        self._submit(
            node_id,
            "revoke",
            lambda: self._do_revoke(live, node_id, name, reason),
            on_shed=on_shed,
        )
        return True

    def _do_revoke(
        self, live: _Adapted, node_id: str, name: str, reason: str
    ) -> None:
        """The worker half of :meth:`revoke`: send and log."""
        span = _telemetry.get_recorder().start_span(
            "midas.revoke",
            parent=live.trace,
            node=self.node_id,
            target=node_id,
            extension=name,
            reason=reason,
        )

        def on_reply(body: dict) -> None:
            span.end(revoked=bool(body.get("revoked")))
            self.on_revoked.fire(node_id, name, bool(body.get("revoked")))

        def on_error(error: Exception) -> None:
            span.end(status="error", error=str(error))
            self.on_revoked.fire(node_id, name, False)

        with span.activate():
            self._request(
                node_id,
                REVOKE,
                {"lease_id": live.lease_id, "reason": reason},
                on_reply=on_reply,
                on_error=on_error,
            )
        self._log(node_id, name, "revoked", reason)

    def _request(
        self,
        node_id: str,
        operation: str,
        body: dict,
        on_reply: Callable,
        on_error: Callable,
    ) -> None:
        if self._client is not None:
            self._client.call(
                node_id, operation, body, on_reply=on_reply, on_error=on_error
            )
        else:
            self.transport.request(
                node_id, operation, body, on_reply=on_reply, on_error=on_error
            )

    def revoke_node(self, node_id: str, reason: str = "revoked") -> None:
        """Revoke every extension this base holds on ``node_id``."""
        for (node, name) in list(self._adapted):
            if node == node_id:
                self.revoke(node_id, name, reason)

    def renew_node(
        self,
        node_id: str,
        on_done: Callable[[int], None] | None = None,
        on_error: Callable[[Exception], None] | None = None,
    ) -> None:
        """Renew every lease held on ``node_id`` now, in one batch.

        A single ``midas.keepalive`` request carries all of the node's
        lease ids (the receiver renews them in one pass), ahead of the
        per-lease renewal schedule.  Useful after a roaming return or a
        recovery — and the natural "renew" operation for closed-loop
        load generators.  ``on_done`` receives the number of leases the
        peer confirmed.
        """
        lease_ids = sorted(
            live.lease_id
            for (node, _), live in self._adapted.items()
            if node == node_id
        )
        if not lease_ids:
            if on_done is not None:
                on_done(0)
            return

        def on_shed(error: PipelineOverloadError) -> None:
            if on_error is not None:
                on_error(error)

        self._submit(
            node_id,
            "renew",
            lambda: self._do_renew_node(node_id, lease_ids, on_done, on_error),
            on_shed=on_shed,
        )

    def _do_renew_node(
        self,
        node_id: str,
        lease_ids: list[str],
        on_done: Callable[[int], None] | None,
        on_error: Callable[[Exception], None] | None,
    ) -> None:
        span = _telemetry.get_recorder().start_span(
            "midas.keepalive",
            parent=None,
            node=self.node_id,
            target=node_id,
            batch=len(lease_ids),
        )

        def on_reply(body: dict) -> None:
            renewed = body.get("renewed", ())
            span.end(renewed=len(renewed))
            if on_done is not None:
                on_done(len(renewed))

        def on_fail(error: Exception) -> None:
            span.end(status="error", error=str(error))
            if on_error is not None:
                on_error(error)

        with span.activate():
            self.transport.request(
                node_id,
                KEEPALIVE,
                {"lease_ids": lease_ids},
                on_reply=on_reply,
                on_error=on_fail,
            )

    def replace_extension(self, name: str, factory: ExtensionFactory) -> None:
        """Swap the catalog entry for ``name`` and re-adapt all its holders.

        Implements §3.2's "replacement of obsolete extensions with new
        ones in case the local policy evolves or it is changed".
        """
        if name not in self.catalog:
            raise UnknownExtensionError(f"no extension {name!r} to replace")
        self.catalog.add(name, factory)  # bumps version
        for (node_id, ext_name) in list(self._adapted):
            if ext_name == name:
                self._log(node_id, name, "replaced", f"v{self.catalog.version_of(name)}")
                self.offer(node_id, name)

    # -- receiver health reports -----------------------------------------------------------

    def _serve_health(self, sender: str, body: dict) -> None:
        self._submit(sender, "health", lambda: self._handle_health(sender, body))

    def _handle_health(self, sender: str, body: dict) -> None:
        """A receiver quarantined one of our extensions: believe it.

        The catalog entry is marked unhealthy for the reporter's node
        class, so the reconciler stops re-offering the bad version to
        that class of device; publishing a fixed version (catalog
        version bump) heals the mark.  The base-side lease record is
        dropped — the receiver already withdrew locally.
        """
        name = str(body.get("extension", ""))
        node_class = str(body.get("node_class", sender))
        version = body.get("version")
        if name in self.catalog:
            self.catalog.mark_unhealthy(
                name, node_class, int(version) if version is not None else None
            )
        live = self._adapted.pop((sender, name), None)
        if live is not None:
            self._renewer.forget(live.lease_id)
        offender = body.get("offender", name)
        strikes = body.get("strikes") or []
        detail = f"offender={offender} strikes={len(strikes)} class={node_class}"
        self._log(sender, name, "quarantined", detail)
        recorder = _telemetry.get_recorder()
        recorder.count(
            "midas.quarantines",
            node=self.node_id,
            extension=name,
            node_class=node_class,
        )
        recorder.event(
            "midas.quarantine_reported",
            node=self.node_id,
            reporter=sender,
            extension=name,
            offender=offender,
            node_class=node_class,
        )
        logger.info(
            "%s: %s quarantined %s (%s); suppressing offers to class %s",
            self.node_id,
            sender,
            name,
            offender,
            node_class,
        )
        self.on_quarantined.fire(sender, name, body)

    # -- roaming ------------------------------------------------------------------------------

    def link_peer_base(self, base_node_id: str) -> None:
        """Tell this base about a peer base for the roaming algorithm."""
        if base_node_id != self.node_id and base_node_id not in self._peer_bases:
            self._peer_bases.append(base_node_id)
            self._ensure_roam_sync()

    def _ensure_roam_sync(self) -> None:
        if self.roam_sync_interval is None or self._roam_sync_timer is not None:
            return
        if not self._peer_bases:
            return
        self._roam_sync_timer = PeriodicTimer(
            self.simulator,
            self.roam_sync_interval,
            self._roam_sync_tick,
            name=f"{self.node_id}.roam-sync",
        ).start()

    def _note_arrival(self, node_id: str) -> None:
        """Record that ``node_id`` is here, now — if that beats what we know."""
        epoch: RoamEpoch = (self.simulator.now, self.node_id)
        known = self._roam_epochs.get(node_id)
        if known is None or epoch > known:
            self._roam_epochs[node_id] = epoch

    def _announce_roaming(self, node_id: str) -> None:
        """Tell every peer base ``node_id`` arrived here.

        With a retry policy the announcement rides the resilient client
        (retries with backoff within the lease-term deadline) and counts
        ``midas.roam.announce_failed`` when retries exhaust — anti-entropy
        then owns convergence.  Without one it is the paper's classic
        fire-and-forget notify.
        """
        epoch = self._roam_epochs.get(node_id, (self.simulator.now, self.node_id))
        recorder = _telemetry.get_recorder()
        for peer in self._peer_bases:
            body = {"node_id": node_id, "epoch": [epoch[0], epoch[1]]}
            recorder.count("midas.roam.announced", node=self.node_id, peer=peer)
            if self._client is None:
                # lint: allow(proto.mixed-send-modes) — the classic path is the paper's fire-and-forget notify; _serve_roamed is epoch-idempotent, so undeduped duplicates are harmless
                self.transport.notify(peer, ROAMED, body)
                continue
            self._client.call(
                peer,
                ROAMED,
                body,
                on_reply=lambda reply: None,
                on_error=lambda error, peer=peer: self._announce_failed(
                    node_id, peer, error
                ),
            )

    def _announce_failed(self, node_id: str, peer: str, error: Exception) -> None:
        recorder = _telemetry.get_recorder()
        recorder.count("midas.roam.announce_failed", node=self.node_id, peer=peer)
        recorder.event(
            "midas.roam.announce_failed",
            node=self.node_id,
            peer=peer,
            roamed=node_id,
            error=str(error),
        )
        logger.warning(
            "%s: could not announce %s's arrival to %s: %s",
            self.node_id,
            node_id,
            peer,
            error,
        )

    def _serve_roamed(self, sender: str, body: dict) -> dict:
        accepted = self._submit(
            sender, "roamed", lambda: self._handle_roamed(sender, body)
        )
        # The reply doubles as an acknowledgement for retrying announcers.
        return {"accepted": accepted}

    def _handle_roamed(self, sender: str, body: dict) -> None:
        """Apply one ROAMED announcement — idempotently, and in order.

        The announcement carries the arrival's roam epoch; anything at or
        below what we already know (a duplicate delivery, or a stale
        announcement reordered behind a later arrival here) is ignored.
        Unknown nodes are recorded too: a late reconcile must not re-offer
        to a node that provably lives elsewhere now.
        """
        node_id = body["node_id"]
        raw = body.get("epoch")
        if raw is None:
            # Pre-epoch announcer: synthesize "arrived at sender just now",
            # which preserves the classic always-drop behavior.
            epoch: RoamEpoch = (self.simulator.now, sender)
        else:
            epoch = (float(raw[0]), str(raw[1]))
        known = self._roam_epochs.get(node_id)
        recorder = _telemetry.get_recorder()
        if known is not None and epoch <= known:
            recorder.count("midas.roam.stale_ignored", node=self.node_id)
            return
        self._roam_epochs[node_id] = epoch
        if any(node == node_id for (node, _) in self._adapted):
            logger.debug(
                "%s: node %s roamed to %s; dropping leases",
                self.node_id,
                node_id,
                epoch[1],
            )
            recorder.event(
                "midas.roam.dropped",
                node=self.node_id,
                roamed=node_id,
                peer=epoch[1],
            )
            self._drop_node(node_id, action="roamed", detail=f"now at {epoch[1]}")
        else:
            recorder.event(
                "midas.roam.recorded",
                node=self.node_id,
                roamed=node_id,
                peer=epoch[1],
            )

    # -- anti-entropy reconciliation ----------------------------------------------

    def _roam_digest(self) -> dict[str, list]:
        """Our adapted-node set, each with the newest arrival epoch we know.

        A node adapted without any recorded epoch (pre-epoch state, or
        state rebuilt after a crash wiped the epochs) claims ``(0.0,
        self)`` — the weakest possible claim, losing to any real arrival.
        """
        digest: dict[str, list] = {}
        for (node, _name) in self._adapted:
            if node not in digest:
                epoch = self._roam_epochs.get(node, (0.0, self.node_id))
                digest[node] = [epoch[0], epoch[1]]
        return digest

    def _roam_sync_tick(self) -> None:
        digest = self._roam_digest()
        for peer in self._peer_bases:
            self._send_roam_sync(peer, digest)

    def _send_roam_sync(self, peer: str, digest: dict[str, list]) -> None:
        recorder = _telemetry.get_recorder()
        recorder.count("midas.roam.sync_sent", node=self.node_id, peer=peer)

        def on_reply(body: dict) -> None:
            conflicts = (body or {}).get("conflicts") or {}
            for node_id, raw in conflicts.items():
                self._learn_roam(node_id, (float(raw[0]), str(raw[1])))

        def on_error(error: Exception) -> None:
            recorder.count("midas.roam.sync_failed", node=self.node_id, peer=peer)

        self._request(peer, ROAM_SYNC, {"adapted": digest}, on_reply, on_error)

    def _serve_roam_sync(self, sender: str, body: dict) -> dict:
        """Anti-entropy exchange: merge the peer's claims, return ours.

        The peer sends the nodes it currently hosts, each with its roam
        epoch.  Claims newer than our knowledge are learned (dropping our
        leases where we host the same node — it provably moved); claims
        *older* than our knowledge are returned as conflicts so the peer
        drops its side.  Served inline: this is control-plane metadata and
        the reply must reflect current knowledge, not a queued snapshot.
        """
        conflicts: dict[str, list] = {}
        for node_id, raw in (body.get("adapted") or {}).items():
            epoch = (float(raw[0]), str(raw[1]))
            known = self._roam_epochs.get(node_id)
            if known is not None and known > epoch:
                conflicts[node_id] = [known[0], known[1]]
                continue
            self._learn_roam(node_id, epoch)
        return {"conflicts": conflicts}

    def _learn_roam(self, node_id: str, epoch: RoamEpoch) -> None:
        """Adopt a newer roam epoch learned via anti-entropy."""
        known = self._roam_epochs.get(node_id)
        if known is not None and epoch <= known:
            return
        self._roam_epochs[node_id] = epoch
        if epoch[1] != self.node_id and any(
            node == node_id for (node, _) in self._adapted
        ):
            recorder = _telemetry.get_recorder()
            recorder.count("midas.roam.reconciled", node=self.node_id)
            recorder.event(
                "midas.roam.reconciled",
                node=self.node_id,
                roamed=node_id,
                peer=epoch[1],
            )
            self._drop_node(
                node_id, action="roamed", detail=f"reconciled to {epoch[1]}"
            )

    # -- queries ----------------------------------------------------------------------------------

    def adapted_nodes(self) -> list[str]:
        """Node ids currently holding at least one extension from this base."""
        return sorted({node for (node, _) in self._adapted})

    def extensions_on(self, node_id: str) -> list[str]:
        """Names of this base's extensions live on ``node_id``."""
        return sorted(name for (node, name) in self._adapted if node == node_id)

    def activity_for(self, node_id: str) -> list[AdaptationRecord]:
        """Activity-log entries concerning ``node_id``."""
        return [record for record in self.activity_log if record.node_id == node_id]

    # -- keep-alive plumbing -------------------------------------------------------------------------

    def _send_keepalive(
        self,
        tracked: TrackedLease,
        on_success: Callable[[], None],
        on_failure: Callable[[Exception], None],
    ) -> None:
        # Shedding a keepalive looks like any other send failure to the
        # renewal agent: it backs off and retries within the silence
        # budget, so a transient overload does not abandon leases.
        self._submit(
            tracked.peer,
            "renew",
            lambda: self._do_keepalive(tracked, on_success, on_failure),
            on_shed=on_failure,
        )

    def _do_keepalive(
        self,
        tracked: TrackedLease,
        on_success: Callable[[], None],
        on_failure: Callable[[Exception], None],
    ) -> None:
        live = self._adapted.get((tracked.context, tracked.resource))
        span = _telemetry.get_recorder().start_span(
            "midas.keepalive",
            parent=live.trace if live is not None else None,
            node=self.node_id,
            target=tracked.peer,
            extension=tracked.resource,
        )

        def on_reply(body: dict) -> None:
            if tracked.lease_id in body.get("renewed", ()):
                span.end()
                on_success()
            else:
                # The node answered but no longer holds the lease — it
                # withdrew the extension (expiry during a lossy spell) or
                # crashed and lost everything.  No number of keepalives
                # can revive a dead lease: abandon now, so the reconciler
                # re-offers on its next pass instead of lease-terms later.
                span.end(status="error", error="lease unknown at peer")
                self._renewer.abandon(tracked.lease_id)

        def on_error(error: Exception) -> None:
            span.end(status="error", error=str(error))
            on_failure(error)

        with span.activate():
            self.transport.request(
                tracked.peer,
                KEEPALIVE,
                {"lease_ids": [tracked.lease_id]},
                on_reply=on_reply,
                on_error=on_error,
            )

    def _renewal_abandoned(self, tracked: TrackedLease) -> None:
        node_id: str = tracked.context
        name: str = tracked.resource
        self._adapted.pop((node_id, name), None)
        self._log(node_id, name, "renewed-lost", "keepalive failures")
        if not any(node == node_id for (node, _) in self._adapted):
            self.on_node_lost.fire(node_id)

    def _drop_node(self, node_id: str, action: str, detail: str) -> None:
        dropped = False
        for (node, name) in list(self._adapted):
            if node != node_id:
                continue
            live = self._adapted.pop((node, name))
            self._renewer.forget(live.lease_id)
            self._log(node_id, name, action, detail)
            dropped = True
        if dropped:
            self.on_node_lost.fire(node_id)

    def _log(self, node_id: str, extension: str, action: str, detail: str = "") -> None:
        self.activity_log.append(
            AdaptationRecord(self.simulator.now, node_id, extension, action, detail)
        )

    def __repr__(self) -> str:
        return (
            f"<ExtensionBase {self.node_id} catalog={self.catalog.names()} "
            f"adapted={self.adapted_nodes()}>"
        )
