"""Generator-based simulated processes.

Long-running simulated activities (a robot executing a task, a device
walking between production halls) read naturally as sequential code.  A
:class:`Process` wraps a generator that ``yield``\\ s :func:`sleep` delays;
the kernel resumes it after each delay, so the generator's local state *is*
the process state.

>>> sim = Simulator()
>>> log = []
>>> def worker():
...     log.append(("start", sim.now))
...     yield sleep(5.0)
...     log.append(("end", sim.now))
>>> p = Process(sim, worker())
>>> _ = sim.run()
>>> log
[('start', 0.0), ('end', 5.0)]
"""

from __future__ import annotations

import logging
from typing import Any, Generator

from repro.errors import ProcessError
from repro.sim.kernel import Simulator
from repro.util.signal import Signal

logger = logging.getLogger(__name__)


class _Sleep:
    """The value a process generator yields to suspend itself."""

    __slots__ = ("duration",)

    def __init__(self, duration: float):
        if duration < 0:
            raise ProcessError(f"cannot sleep for negative duration {duration}")
        self.duration = duration

    def __repr__(self) -> str:
        return f"sleep({self.duration})"


def sleep(duration: float) -> _Sleep:
    """Suspend the yielding process for ``duration`` virtual seconds."""
    return _Sleep(duration)


class Process:
    """Drives a generator on the simulator until it finishes or is stopped.

    The process starts at the current virtual time (its first segment runs
    as an immediate event).  ``on_exit`` fires with the process when the
    generator returns, raises, or is stopped.
    """

    def __init__(self, simulator: Simulator, generator: Generator[Any, None, None],
                 name: str = "process"):
        self.simulator = simulator
        self.name = name
        self.on_exit = Signal(f"{name}.on_exit")
        self._generator = generator
        self._alive = True
        self._failure: BaseException | None = None
        self._pending = simulator.schedule(0.0, self._resume)

    @property
    def alive(self) -> bool:
        """True while the generator has not finished or been stopped."""
        return self._alive

    @property
    def failure(self) -> BaseException | None:
        """The exception that killed the process, if any."""
        return self._failure

    def stop(self) -> None:
        """Terminate the process; its generator is closed immediately."""
        if not self._alive:
            return
        self._alive = False
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        self._generator.close()
        self.on_exit.fire(self)

    def _resume(self) -> None:
        if not self._alive:
            return
        self._pending = None
        try:
            yielded = next(self._generator)
        except StopIteration:
            self._finish()
            return
        except Exception as exc:  # noqa: BLE001 - surfaced via .failure
            logger.warning("process %s failed: %s", self.name, exc)
            self._failure = exc
            self._finish()
            return
        if not isinstance(yielded, _Sleep):
            self._failure = ProcessError(
                f"process {self.name} yielded {yielded!r}; expected sleep(...)"
            )
            self._generator.close()
            self._finish()
            return
        self._pending = self.simulator.schedule(yielded.duration, self._resume)

    def _finish(self) -> None:
        self._alive = False
        self.on_exit.fire(self)

    def __repr__(self) -> str:
        state = "alive" if self._alive else "finished"
        return f"<Process {self.name} {state}>"
