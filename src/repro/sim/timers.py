"""Periodic timers on the simulation kernel.

Lease renewal loops, discovery announcements and monitoring flushes are all
"do X every T seconds" activities; :class:`PeriodicTimer` factors that
pattern out.  The callback runs first after one full ``interval`` (not
immediately), matching how a freshly granted lease is renewed only when a
fraction of its term has elapsed.
"""

from __future__ import annotations

import logging
from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.kernel import Event, Simulator

logger = logging.getLogger(__name__)


class PeriodicTimer:
    """Invokes a callback every ``interval`` virtual seconds until stopped.

    If the callback raises, the error is logged and the timer keeps
    ticking — a periodic protocol activity must not die because one round
    failed (e.g. a renewal attempt while out of radio range).
    """

    def __init__(
        self,
        simulator: Simulator,
        interval: float,
        callback: Callable[[], Any],
        name: str = "timer",
    ):
        if interval <= 0:
            raise SimulationError(f"timer interval must be positive, got {interval}")
        self.simulator = simulator
        self.interval = interval
        self.callback = callback
        self.name = name
        self._event: Event | None = None
        self._stopped = True
        self._ticks = 0

    @property
    def running(self) -> bool:
        """True while the timer is armed."""
        return not self._stopped

    @property
    def ticks(self) -> int:
        """Number of times the callback has fired."""
        return self._ticks

    def start(self) -> "PeriodicTimer":
        """Arm the timer (idempotent); returns self for chaining."""
        if self._stopped:
            self._stopped = False
            self._event = self.simulator.schedule(self.interval, self._tick)
        return self

    def stop(self) -> None:
        """Disarm the timer (idempotent, safe from inside the callback)."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self) -> None:
        self._event = None
        self._ticks += 1
        try:
            self.callback()
        except Exception as exc:  # noqa: BLE001 - keep periodic work alive
            logger.warning("timer %s callback failed: %s", self.name, exc)
        # The callback may have re-armed the timer itself (stop() then
        # start() inside the fire); scheduling again here would fork a
        # second concurrent tick chain.
        if not self._stopped and self._event is None:
            self._event = self.simulator.schedule(self.interval, self._tick)

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return f"<PeriodicTimer {self.name} every {self.interval}s {state}>"
