"""Discrete-event simulation kernel.

The paper's platform runs over a wireless LAN with physically moving
devices.  We reproduce that substrate as a deterministic discrete-event
simulation: a single :class:`~repro.sim.kernel.Simulator` owns virtual time
and an ordered event queue; the network, discovery, leasing and mobility
layers all schedule their work on it.  Determinism makes every distributed
scenario in the paper (joining a hall, missing lease renewals, roaming)
exactly reproducible in tests and benchmarks.
"""

from repro.sim.kernel import Event, SimClock, Simulator
from repro.sim.process import Process, sleep
from repro.sim.timers import PeriodicTimer

__all__ = ["Event", "SimClock", "Simulator", "Process", "sleep", "PeriodicTimer"]
