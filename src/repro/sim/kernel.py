"""The simulation kernel: virtual time and an ordered event queue.

Events scheduled for the same instant fire in FIFO order of scheduling,
which gives the whole platform a deterministic total order of execution.
Callbacks run synchronously inside :meth:`Simulator.step`; a callback may
schedule further events (including at the current time).
"""

from __future__ import annotations

import heapq
import logging
from typing import Any, Callable

from repro.errors import SimulationError
from repro.util.clock import Clock

logger = logging.getLogger(__name__)


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Hold on to the event to :meth:`cancel` it.  Events compare by
    ``(time, seq)`` so the heap pops them in deterministic order.
    """

    __slots__ = ("time", "seq", "fn", "args", "kwargs", "canceled", "_sim", "_queued")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple[Any, ...],
        kwargs: dict[str, Any],
        sim: "Simulator | None" = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.canceled = False
        # Owning simulator and in-queue flag, so cancel() can keep the
        # simulator's live-event count exact without scanning the heap.
        self._sim = sim
        self._queued = sim is not None

    def cancel(self) -> None:
        """Prevent this event from firing (safe to call more than once)."""
        if self.canceled:
            return
        self.canceled = True
        if self._queued and self._sim is not None:
            self._sim._note_canceled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "canceled" if self.canceled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.6f} {name} {state}>"


class SimClock(Clock):
    """A :class:`~repro.util.clock.Clock` view of a simulator's virtual time."""

    def __init__(self, simulator: "Simulator"):
        self._simulator = simulator

    def now(self) -> float:
        return self._simulator.now


class Simulator:
    """A deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, fired.append, "b")
    >>> _ = sim.schedule(1.0, fired.append, "a")
    >>> sim.run()
    2
    >>> fired
    ['a', 'b']
    """

    #: Queues shorter than this are never compacted — rebuilding a tiny
    #: heap costs more than lazily skipping its tombstones.
    COMPACT_MIN = 64

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._queue: list[Event] = []
        self._seq = 0
        self._live = 0
        self._running = False
        #: Number of times the heap was rebuilt to shed canceled events.
        self.compactions = 0
        self.clock = SimClock(self)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of live (non-canceled) events still queued.  O(1): a
        counter maintained by schedule/cancel/step, not a queue scan —
        at fleet scale ``repr`` and progress checks must stay free."""
        return self._live

    def schedule(
        self, delay: float, fn: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> Event:
        """Schedule ``fn(*args, **kwargs)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args, **kwargs)

    def schedule_at(
        self, when: float, fn: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> Event:
        """Schedule ``fn`` to run at absolute virtual time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} before current time {self._now}"
            )
        event = Event(when, self._seq, fn, args, kwargs, sim=self)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._queue, event)
        return event

    def _note_canceled(self) -> None:
        """A queued event was just canceled: keep the live count exact and
        compact the heap once tombstones dominate it.

        Called by :meth:`Event.cancel` only (at most once per event).
        Compaction triggers when more than half of a non-trivial queue is
        canceled — the classic lazy-deletion amortization, which matters
        once fleets park hundreds of thousands of renewal/expiry timers
        that are mostly rescheduled (canceled + re-pushed) before firing.
        """
        self._live -= 1
        dead = len(self._queue) - self._live
        if len(self._queue) >= self.COMPACT_MIN and dead * 2 > len(self._queue):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without canceled events (O(live))."""
        survivors = []
        for event in self._queue:
            if event.canceled:
                event._queued = False
            else:
                survivors.append(event)
        self._queue = survivors
        heapq.heapify(self._queue)
        self.compactions += 1

    def step(self) -> bool:
        """Run the next pending event.  Returns False if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            event._queued = False
            if event.canceled:
                continue
            self._live -= 1
            self._now = event.time
            event.fn(*event.args, **event.kwargs)
            return True
        return False

    def run(self, until: float | None = None, max_steps: int | None = None) -> int:
        """Run events until the queue drains (or ``until``/``max_steps``).

        ``until`` is an absolute virtual time; events scheduled at exactly
        ``until`` still run, later ones stay queued.  Time advances to
        ``until`` even if the queue drains early, so periodic processes
        restarted afterwards resume from a consistent instant.  Returns the
        number of events executed.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        steps = 0
        try:
            while self._queue:
                if max_steps is not None and steps >= max_steps:
                    break
                head = self._queue[0]
                if head.canceled:
                    heapq.heappop(self._queue)._queued = False
                    continue
                if until is not None and head.time > until:
                    break
                self.step()
                steps += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
        return steps

    def run_for(self, duration: float, max_steps: int | None = None) -> int:
        """Run events for ``duration`` seconds of virtual time."""
        if duration < 0:
            raise SimulationError(f"cannot run for negative duration {duration}")
        return self.run(until=self._now + duration, max_steps=max_steps)

    def __repr__(self) -> str:
        return f"<Simulator t={self._now:.6f} pending={self.pending}>"
