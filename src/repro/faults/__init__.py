"""Deterministic fault injection.

The paper's premise is that its protocols — leases, announcements,
renewals, roaming — exist *because* the radio environment is hostile
(§3.2's "locality in time").  This package turns that hostility into a
first-class, reproducible input: declarative :class:`FaultPlan`\\ s
(drop/delay/duplicate/reorder messages, crash and restart nodes, flap
links, skew clocks) executed by a :class:`FaultInjector` hooked into the
simulated network, with every injected fault recorded in telemetry.

Chaos runs are exactly reproducible: all randomness comes from the
network's seeded RNG and all timing from the simulation clock.

Typical use, via the platform::

    plan = FaultPlan().drop(probability=0.2).crash("hall", at=30, down_for=8)
    platform.install_faults(plan)
    platform.run_for(120.0)
"""

from repro.faults.advice import (
    BUDGET_OVERRUN,
    FAULT_MODES,
    RAISE_ON_KTH,
    VIOLATION_PROBE,
    FaultyExtension,
)
from repro.faults.clock import SkewedClock
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    ClockSkew,
    CrashSchedule,
    FaultPlan,
    LinkFlap,
    MessageMatch,
    MessageRule,
)

__all__ = [
    "BUDGET_OVERRUN",
    "ClockSkew",
    "CrashSchedule",
    "FAULT_MODES",
    "FaultInjector",
    "FaultPlan",
    "FaultyExtension",
    "LinkFlap",
    "MessageMatch",
    "MessageRule",
    "RAISE_ON_KTH",
    "SkewedClock",
    "VIOLATION_PROBE",
]
