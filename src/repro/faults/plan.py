"""Declarative fault plans.

A :class:`FaultPlan` is pure data: a list of message-level rules
(drop/delay/duplicate/reorder, matched by operation, endpoint, kind and
time window), node crash/restart schedules, link flap schedules, and
per-node clock skews.  Plans say *what* goes wrong and *when*; the
:class:`~repro.faults.injector.FaultInjector` makes it happen against a
live network, deterministically.

Plans round-trip through plain dicts (:meth:`FaultPlan.to_dict` /
:meth:`FaultPlan.from_dict`), so a chaos scenario can live in a JSON
file next to the benchmark that replays it.
"""

from __future__ import annotations

import math
import random
from dataclasses import asdict, dataclass, field

from repro.errors import FaultPlanError
from repro.util.patterns import wildcard_match

#: Message-rule actions.
DROP = "drop"
DELAY = "delay"
DUPLICATE = "duplicate"
REORDER = "reorder"

_ACTIONS = (DROP, DELAY, DUPLICATE, REORDER)


@dataclass(frozen=True)
class MessageMatch:
    """Which messages a rule applies to.  ``*`` wildcards throughout.

    ``operation`` matches the transport-level operation carried in a
    request/reply/notify payload (e.g. ``midas.offer`` or ``lookup.*``);
    ``kind`` matches the raw message kind (``transport.request``, ...).
    The time window ``[after, before)`` is simulated seconds.
    """

    operation: str = "*"
    kind: str = "*"
    source: str = "*"
    destination: str = "*"
    after: float = 0.0
    before: float = math.inf

    def matches(
        self, now: float, kind: str, operation: str, source: str, destination: str
    ) -> bool:
        if not (self.after <= now < self.before):
            return False
        return (
            wildcard_match(self.kind, kind)
            and wildcard_match(self.operation, operation)
            and wildcard_match(self.source, source)
            and wildcard_match(self.destination, destination)
        )


@dataclass
class MessageRule:
    """One injected misbehavior on matching messages.

    ``probability`` is evaluated per matching message with the network's
    seeded RNG; ``max_count`` optionally budgets the rule (e.g. "drop
    the first three offers, then behave").  ``injected`` counts hits.
    """

    action: str
    match: MessageMatch = field(default_factory=MessageMatch)
    probability: float = 1.0
    max_count: int | None = None
    #: DELAY: fixed extra latency plus uniform seeded jitter on top.
    extra_delay: float = 0.0
    delay_jitter: float = 0.0
    #: DUPLICATE: total copies delivered (2 = one duplicate).
    copies: int = 2
    injected: int = 0

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise FaultPlanError(f"unknown fault action {self.action!r}")
        if not (0.0 <= self.probability <= 1.0):
            raise FaultPlanError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.copies < 2 and self.action == DUPLICATE:
            raise FaultPlanError(f"duplicate needs copies >= 2, got {self.copies}")

    def applies(
        self,
        now: float,
        kind: str,
        operation: str,
        source: str,
        destination: str,
        rng: random.Random,
    ) -> bool:
        if self.max_count is not None and self.injected >= self.max_count:
            return False
        if not self.match.matches(now, kind, operation, source, destination):
            return False
        return self.probability >= 1.0 or rng.random() < self.probability


@dataclass(frozen=True)
class CrashSchedule:
    """Take a node down at ``at``; bring it back ``down_for`` later.

    ``down_for=None`` means the node never restarts in this plan.
    """

    node_id: str
    at: float
    down_for: float | None = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise FaultPlanError(f"crash time must be >= 0, got {self.at}")
        if self.down_for is not None and self.down_for <= 0:
            raise FaultPlanError(f"down_for must be > 0, got {self.down_for}")


@dataclass(frozen=True)
class LinkFlap:
    """Periodically sever and heal one link inside a time window."""

    node_a: str
    node_b: str
    period: float
    down_for: float
    after: float = 0.0
    before: float = math.inf

    def __post_init__(self) -> None:
        if self.down_for <= 0 or self.period <= self.down_for:
            raise FaultPlanError(
                f"need period > down_for > 0, got period={self.period} "
                f"down_for={self.down_for}"
            )


@dataclass(frozen=True)
class ClockSkew:
    """A node's local clock runs ``offset`` seconds ahead and drifts by
    ``drift`` (0.01 = gains 10 ms per simulated second)."""

    node_id: str
    offset: float = 0.0
    drift: float = 0.0


class FaultPlan:
    """A complete chaos scenario, built fluently::

        plan = (
            FaultPlan()
            .drop(operation="midas.offer", probability=0.2)
            .delay(kind="transport.reply", extra=0.5, jitter=0.2)
            .duplicate(operation="midas.offer", probability=0.1)
            .crash("hall", at=30.0, down_for=8.0)
            .flap_link("hall", "node", period=4.0, down_for=1.0)
            .skew_clock("node", offset=0.25, drift=0.001)
        )
    """

    def __init__(self) -> None:
        self.message_rules: list[MessageRule] = []
        self.crashes: list[CrashSchedule] = []
        self.link_flaps: list[LinkFlap] = []
        self.clock_skews: list[ClockSkew] = []

    # -- fluent builders -----------------------------------------------------------

    def rule(self, rule: MessageRule) -> "FaultPlan":
        """Append a prebuilt message rule."""
        self.message_rules.append(rule)
        return self

    def drop(
        self,
        operation: str = "*",
        kind: str = "*",
        source: str = "*",
        destination: str = "*",
        probability: float = 1.0,
        between: tuple[float, float] | None = None,
        max_count: int | None = None,
    ) -> "FaultPlan":
        """Silently eat matching messages."""
        return self.rule(
            MessageRule(
                DROP,
                self._match(operation, kind, source, destination, between),
                probability=probability,
                max_count=max_count,
            )
        )

    def delay(
        self,
        extra: float,
        jitter: float = 0.0,
        operation: str = "*",
        kind: str = "*",
        source: str = "*",
        destination: str = "*",
        probability: float = 1.0,
        between: tuple[float, float] | None = None,
        max_count: int | None = None,
    ) -> "FaultPlan":
        """Add ``extra`` (plus seeded ``jitter``) latency to matches."""
        return self.rule(
            MessageRule(
                DELAY,
                self._match(operation, kind, source, destination, between),
                probability=probability,
                max_count=max_count,
                extra_delay=extra,
                delay_jitter=jitter,
            )
        )

    def duplicate(
        self,
        operation: str = "*",
        kind: str = "*",
        source: str = "*",
        destination: str = "*",
        probability: float = 1.0,
        copies: int = 2,
        between: tuple[float, float] | None = None,
        max_count: int | None = None,
    ) -> "FaultPlan":
        """Deliver matching messages ``copies`` times."""
        return self.rule(
            MessageRule(
                DUPLICATE,
                self._match(operation, kind, source, destination, between),
                probability=probability,
                max_count=max_count,
                copies=copies,
            )
        )

    def reorder(
        self,
        operation: str = "*",
        kind: str = "*",
        source: str = "*",
        destination: str = "*",
        probability: float = 1.0,
        between: tuple[float, float] | None = None,
        max_count: int | None = None,
    ) -> "FaultPlan":
        """Let matching messages bypass FIFO link ordering (overtake)."""
        return self.rule(
            MessageRule(
                REORDER,
                self._match(operation, kind, source, destination, between),
                probability=probability,
                max_count=max_count,
            )
        )

    def crash(
        self, node_id: str, at: float, down_for: float | None = None
    ) -> "FaultPlan":
        """Crash ``node_id`` at ``at``; restart after ``down_for`` seconds."""
        self.crashes.append(CrashSchedule(node_id, at, down_for))
        return self

    def flap_link(
        self,
        node_a: str,
        node_b: str,
        period: float,
        down_for: float,
        between: tuple[float, float] | None = None,
    ) -> "FaultPlan":
        """Flap the ``node_a``–``node_b`` link every ``period`` seconds."""
        after, before = between if between is not None else (0.0, math.inf)
        self.link_flaps.append(LinkFlap(node_a, node_b, period, down_for, after, before))
        return self

    def skew_clock(
        self, node_id: str, offset: float = 0.0, drift: float = 0.0
    ) -> "FaultPlan":
        """Skew ``node_id``'s local clock by ``offset`` and ``drift``."""
        self.clock_skews.append(ClockSkew(node_id, offset, drift))
        return self

    @staticmethod
    def _match(
        operation: str,
        kind: str,
        source: str,
        destination: str,
        between: tuple[float, float] | None,
    ) -> MessageMatch:
        after, before = between if between is not None else (0.0, math.inf)
        return MessageMatch(operation, kind, source, destination, after, before)

    # -- (de)serialization ----------------------------------------------------------

    def to_dict(self) -> dict:
        """The plan as plain data (JSON-safe except ``inf`` windows)."""
        return {
            "message_rules": [
                {
                    "action": rule.action,
                    "match": asdict(rule.match),
                    "probability": rule.probability,
                    "max_count": rule.max_count,
                    "extra_delay": rule.extra_delay,
                    "delay_jitter": rule.delay_jitter,
                    "copies": rule.copies,
                }
                for rule in self.message_rules
            ],
            "crashes": [asdict(crash) for crash in self.crashes],
            "link_flaps": [asdict(flap) for flap in self.link_flaps],
            "clock_skews": [asdict(skew) for skew in self.clock_skews],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Rebuild a plan produced by :meth:`to_dict`."""
        plan = cls()
        for raw in data.get("message_rules", ()):
            plan.rule(
                MessageRule(
                    raw["action"],
                    MessageMatch(**raw.get("match", {})),
                    probability=raw.get("probability", 1.0),
                    max_count=raw.get("max_count"),
                    extra_delay=raw.get("extra_delay", 0.0),
                    delay_jitter=raw.get("delay_jitter", 0.0),
                    copies=raw.get("copies", 2),
                )
            )
        for raw in data.get("crashes", ()):
            plan.crashes.append(CrashSchedule(**raw))
        for raw in data.get("link_flaps", ()):
            plan.link_flaps.append(LinkFlap(**raw))
        for raw in data.get("clock_skews", ()):
            plan.clock_skews.append(ClockSkew(**raw))
        return plan

    def __repr__(self) -> str:
        return (
            f"<FaultPlan rules={len(self.message_rules)} "
            f"crashes={len(self.crashes)} flaps={len(self.link_flaps)} "
            f"skews={len(self.clock_skews)}>"
        )
