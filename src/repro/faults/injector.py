"""The deterministic chaos engine.

A :class:`FaultInjector` executes a :class:`~repro.faults.plan.FaultPlan`
against a live :class:`~repro.net.network.Network`:

- message rules run as the network's ``fault_hook`` — called once per
  transmission attempt, drawing randomness only from the network's
  seeded RNG, so one seed reproduces the whole run;
- crash schedules detach a node at its crash instant (radio dead,
  in-flight traffic to it drops) and reattach it at restart; the
  ``on_crash``/``on_restart`` signals let the owning platform wipe the
  node's *volatile* state while durable state survives;
- link flaps drive :meth:`Network.partition`/:meth:`Network.heal` on a
  schedule;
- clock skews hand out :class:`~repro.faults.clock.SkewedClock` views
  per node.

Every injected fault is recorded through the telemetry runtime (events
named ``fault.*`` plus the ``faults.injected`` counter), so a trace of a
chaos run shows *why* each request died, not just that it timed out.
"""

from __future__ import annotations

import logging
import random

from repro.faults.clock import SkewedClock
from repro.faults.plan import (
    DELAY,
    DROP,
    DUPLICATE,
    REORDER,
    FaultPlan,
    MessageRule,
)
from repro.net.message import Message
from repro.net.network import FaultVerdict, Network
from repro.net.node import NetworkNode
from repro.sim.kernel import Simulator
from repro.telemetry import runtime as _telemetry
from repro.util.clock import Clock
from repro.util.signal import Signal

logger = logging.getLogger(__name__)


class FaultInjector:
    """Runs one fault plan against one network, deterministically."""

    def __init__(
        self,
        network: Network,
        simulator: Simulator,
        plan: FaultPlan | None = None,
        rng: random.Random | None = None,
    ):
        self.network = network
        self.simulator = simulator
        self.plan = plan or FaultPlan()
        #: Defaults to the network's own seeded RNG: one seed, one run.
        self.rng = rng or network.rng
        #: Fires with (node_id,) when a scheduled crash takes a node down.
        self.on_crash = Signal("faults.on_crash")
        #: Fires with (node_id,) when a crashed node comes back.
        self.on_restart = Signal("faults.on_restart")
        self.faults_injected = 0
        self.crashed: set[str] = set()
        self._skewed_clocks: dict[str, SkewedClock] = {}
        self._crashed_nodes: dict[str, NetworkNode] = {}
        self._installed = False
        for skew in self.plan.clock_skews:
            self._skewed_clocks[skew.node_id] = SkewedClock(
                simulator.clock, skew.offset, skew.drift
            )

    # -- lifecycle -----------------------------------------------------------------

    def install(self) -> "FaultInjector":
        """Hook the network and schedule every planned crash and flap."""
        if self._installed:
            return self
        self._installed = True
        if self.plan.message_rules:
            self.network.fault_hook = self._judge
        for crash in self.plan.crashes:
            self.simulator.schedule_at(
                max(crash.at, self.simulator.now), self._crash, crash.node_id
            )
            if crash.down_for is not None:
                self.simulator.schedule_at(
                    max(crash.at, self.simulator.now) + crash.down_for,
                    self._restart,
                    crash.node_id,
                )
        for flap in self.plan.link_flaps:
            first = max(flap.after, self.simulator.now)
            self.simulator.schedule_at(first, self._flap_down, flap)
        return self

    def uninstall(self) -> None:
        """Stop judging messages (scheduled crashes/flaps already queued
        still fire; use a fresh simulator for a truly clean world)."""
        # ``==``, not ``is``: bound methods are recreated on each access.
        if self.network.fault_hook == self._judge:
            self.network.fault_hook = None
        self._installed = False

    # -- message faults -------------------------------------------------------------

    def _judge(
        self, message: Message, source: NetworkNode, destination: NetworkNode
    ) -> FaultVerdict | None:
        now = self.simulator.now
        operation = getattr(message.payload, "operation", "") or ""
        for rule in self.plan.message_rules:
            if not rule.applies(
                now, message.kind, operation,
                source.node_id, destination.node_id, self.rng,
            ):
                continue
            rule.injected += 1
            self.faults_injected += 1
            self._record(rule, message, operation)
            if rule.action == DROP:
                return FaultVerdict(drop_reason="fault: injected drop")
            if rule.action == DELAY:
                extra = rule.extra_delay
                if rule.delay_jitter:
                    extra += self.rng.uniform(0, rule.delay_jitter)
                return FaultVerdict(extra_delay=extra)
            if rule.action == DUPLICATE:
                return FaultVerdict(copies=rule.copies)
            if rule.action == REORDER:
                return FaultVerdict(bypass_fifo=True)
        return None

    def _record(self, rule: MessageRule, message: Message, operation: str) -> None:
        recorder = _telemetry.get_recorder()
        recorder.count("faults.injected", action=rule.action)
        fields = {
            "action": rule.action,
            "kind": message.kind,
            "operation": operation,
            "source": message.source,
            "destination": message.destination,
            "message_id": message.message_id,
        }
        # Faults strike in transit, where no span is ambient — the
        # faulted message's own wire context ties the event to the trace
        # whose request just died.
        trace = getattr(message, "trace", None)
        if trace:
            fields["trace_id"] = trace.get("trace_id")
            fields["span_id"] = trace.get("span_id")
        recorder.event("fault.injected", **fields)

    # -- crash / restart --------------------------------------------------------------

    def crash_now(self, node_id: str) -> None:
        """Crash ``node_id`` immediately (manual chaos)."""
        self._crash(node_id)

    def restart_now(self, node_id: str) -> None:
        """Restart a crashed node immediately (manual chaos)."""
        self._restart(node_id)

    def _crash(self, node_id: str) -> None:
        if node_id in self.crashed:
            return
        try:
            node = self.network.node(node_id)
        except Exception:
            logger.warning("cannot crash unknown node %s", node_id)
            return
        self.crashed.add(node_id)
        self._crashed_nodes[node_id] = node
        self.network.detach(node)
        self.faults_injected += 1
        recorder = _telemetry.get_recorder()
        recorder.count("faults.injected", action="crash")
        recorder.event("fault.crash", node=node_id, time=self.simulator.now)
        logger.debug("fault: crashed %s at t=%.3f", node_id, self.simulator.now)
        self.on_crash.fire(node_id)

    def _restart(self, node_id: str) -> None:
        node = self._crashed_nodes.pop(node_id, None)
        if node is None:
            return
        self.crashed.discard(node_id)
        self.network.attach(node)
        _telemetry.get_recorder().event(
            "fault.restart", node=node_id, time=self.simulator.now
        )
        logger.debug("fault: restarted %s at t=%.3f", node_id, self.simulator.now)
        self.on_restart.fire(node_id)

    # -- link flaps --------------------------------------------------------------------

    def _flap_down(self, flap) -> None:
        if self.simulator.now >= flap.before:
            return
        self.network.partition(flap.node_a, flap.node_b)
        self.faults_injected += 1
        recorder = _telemetry.get_recorder()
        recorder.count("faults.injected", action="link-flap")
        recorder.event(
            "fault.link_down", a=flap.node_a, b=flap.node_b, time=self.simulator.now
        )
        self.simulator.schedule(flap.down_for, self._flap_up, flap)

    def _flap_up(self, flap) -> None:
        self.network.heal(flap.node_a, flap.node_b)
        _telemetry.get_recorder().event(
            "fault.link_up", a=flap.node_a, b=flap.node_b, time=self.simulator.now
        )
        next_down = self.simulator.now + (flap.period - flap.down_for)
        if next_down < flap.before:
            self.simulator.schedule_at(next_down, self._flap_down, flap)

    # -- clock skew ---------------------------------------------------------------------

    def clock_for(self, node_id: str) -> Clock:
        """``node_id``'s view of time (skewed if the plan says so)."""
        return self._skewed_clocks.get(node_id, self.simulator.clock)

    def __repr__(self) -> str:
        return (
            f"<FaultInjector rules={len(self.plan.message_rules)} "
            f"injected={self.faults_injected} crashed={sorted(self.crashed)}>"
        )
