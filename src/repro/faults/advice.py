"""Advice-level fault injectors.

The rest of this package attacks the *network* (dropped messages,
crashes, clock skew); this module attacks the *extensions themselves*,
so supervision (:mod:`repro.supervision`) can be driven deterministically:

- ``RAISE_ON_KTH`` — the advice raises on every K-th interception;
- ``BUDGET_OVERRUN`` — the advice burns a fixed number of interpreter
  steps on every K-th interception (tripping a policy ``step_budget``);
- ``VIOLATION_PROBE`` — the advice acquires a capability it never
  declared on every K-th interception (tripping the sandbox).

:class:`FaultyExtension` is an ordinary :class:`~repro.aop.aspect.Aspect`
and lives at module level, so it is picklable — it can be sealed into an
:class:`~repro.midas.envelope.ExtensionEnvelope` and distributed by a
real extension base, which is exactly how the chaos suites use it.
Determinism comes for free: misbehavior is a pure function of the
interception count, never of wall time or randomness.
"""

from __future__ import annotations

from typing import Any

from repro.aop.advice import AdviceKind
from repro.aop.aspect import Aspect
from repro.aop.crosscut import REST, MethodCut
from repro.aop.sandbox import Capability
from repro.errors import FaultPlanError

#: Raise ``RuntimeError`` on every K-th interception.
RAISE_ON_KTH = "raise-on-kth"
#: Burn ``spin_steps`` interpreter steps on every K-th interception.
BUDGET_OVERRUN = "budget-overrun"
#: Acquire an undeclared capability on every K-th interception.
VIOLATION_PROBE = "violation-probe"

FAULT_MODES = (RAISE_ON_KTH, BUDGET_OVERRUN, VIOLATION_PROBE)


class FaultyExtension(Aspect):
    """A deterministically misbehaving extension.

    ``every=3`` means interceptions 3, 6, 9, ... misbehave while the
    others run clean — the shape the supervision chaos demo needs (an
    extension that works most of the time but strikes out inside the
    policy window).  ``every=1`` misbehaves on every interception.

    Note the aspect *declares no capabilities*: in ``VIOLATION_PROBE``
    mode its gateway acquisition is denied by the restricted sandbox
    MIDAS builds from the (empty) declared set, even on permissive nodes.
    """

    def __init__(
        self,
        mode: str = RAISE_ON_KTH,
        every: int = 3,
        spin_steps: int = 10_000,
        capability: str = Capability.STORE,
        type_pattern: str = "*",
        method_pattern: str = "*",
    ):
        if mode not in FAULT_MODES:
            raise FaultPlanError(f"unknown advice fault mode {mode!r}")
        if every < 1:
            raise FaultPlanError(f"every must be >= 1, got {every}")
        if spin_steps < 1:
            raise FaultPlanError(f"spin_steps must be >= 1, got {spin_steps}")
        super().__init__()
        self.mode = mode
        self.every = every
        self.spin_steps = spin_steps
        self.capability = capability
        #: Total interceptions seen (misbehaving or not).
        self.calls = 0
        #: Interception ordinals (1-based) on which this aspect misbehaved.
        self.misbehaved: list[int] = []
        self.add_advice(
            kind=AdviceKind.BEFORE,
            crosscut=MethodCut(
                type=type_pattern, method=method_pattern, params=(REST,)
            ),
            callback=self.misbehave,
        )

    def misbehave(self, ctx: Any) -> None:
        self.calls += 1
        if self.calls % self.every != 0:
            return
        self.misbehaved.append(self.calls)
        if self.mode == RAISE_ON_KTH:
            raise RuntimeError(
                f"injected advice fault on call {self.calls} "
                f"at {ctx.method_name!r}"
            )
        if self.mode == BUDGET_OVERRUN:
            sink = 0
            for step in range(self.spin_steps):
                sink += step
            return
        # VIOLATION_PROBE: the sandbox built from our (empty) declared
        # capability set denies this and SandboxViolation escapes.
        self.gateway.acquire(self.capability)
