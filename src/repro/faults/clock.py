"""Skewed per-node clock views.

The platform shares one virtual clock, but real devices do not: a PDA's
clock gains a second an hour, a base station is a step behind NTP.  A
:class:`SkewedClock` wraps any :class:`~repro.util.clock.Clock` with an
offset and a drift rate, giving one node a *wrong but consistent* view
of time — exactly what lease-expiry and renewal logic must tolerate.
"""

from __future__ import annotations

from repro.util.clock import Clock


class SkewedClock(Clock):
    """``now() = base.now() * (1 + drift) + offset``.

    ``drift`` is seconds gained per base second (0.001 = +1 ms/s);
    monotonicity is preserved for any ``drift > -1``.
    """

    def __init__(self, base: Clock, offset: float = 0.0, drift: float = 0.0):
        if drift <= -1.0:
            raise ValueError(f"drift must be > -1, got {drift}")
        self.base = base
        self.offset = offset
        self.drift = drift

    def now(self) -> float:
        return self.base.now() * (1.0 + self.drift) + self.offset

    def __repr__(self) -> str:
        return f"<SkewedClock offset={self.offset} drift={self.drift}>"
