"""The per-receiver extension supervisor.

The paper's aspect sandbox promises that foreign advice "cannot touch
system resources"; this module adds the missing half of the containment
story — foreign advice cannot *break the application it rides in*
either.  An :class:`ExtensionSupervisor` hands the weaver a containment
object (:meth:`guard`) per inserted aspect; the resulting barrier wraps
every advice callback and

- **contains faults**: an exception escaping the advice is absorbed
  instead of propagating into the application call (``around`` advice
  that failed before proceeding is replaced by a plain ``proceed()`` so
  the application path stays intact);
- **enforces budgets**: an optional deterministic *step budget* aborts
  runaway advice mid-loop via a trace function, and an optional
  wall-clock *time budget* records overruns post hoc;
- **accounts violations**: :class:`~repro.errors.SandboxViolation`
  escaping advice is contained and recorded as its own strike kind;
- **escalates**: N strikes inside the policy's sliding window quarantine
  the extension — its advice stops running immediately and
  :attr:`on_quarantine` fires so the owner (the MIDAS receiver) can
  withdraw it, shutdown notification first, and report to its base.

Exceptions the platform treats as *intentional* (policy vetoes such as
``AccessDeniedError`` — anything in ``policy.passthrough``) pass through
untouched, as do exceptions that an ``around`` advice merely relayed
from the application via ``proceed()``.

Everything the supervisor observes lands in telemetry
(``supervision.contained`` / ``supervision.quarantined`` counters and
events), and all strike timestamps come from the simulation clock, so
supervised chaos runs stay deterministic.
"""

from __future__ import annotations

import sys
from time import perf_counter
from typing import Any, Callable

from repro.aop.advice import Advice, AdviceKind
from repro.aop.aspect import Aspect
from repro.aop.context import ExecutionContext
from repro.aop.hooks import AdviceContainment
from repro.errors import AdviceBudgetExceeded, SandboxViolation
from repro.sim.kernel import Simulator
from repro.supervision.policy import (
    STRIKE_BUDGET,
    STRIKE_ERROR,
    STRIKE_VIOLATION,
    SupervisionPolicy,
)
from repro.telemetry import runtime as _telemetry
from repro.util.signal import Signal

_PROCEED_CODE = ExecutionContext.proceed.__code__


class Strike:
    """One contained fault: when, what kind, where, and why."""

    __slots__ = ("time", "kind", "joinpoint", "detail")

    def __init__(self, time: float, kind: str, joinpoint: str, detail: str):
        self.time = time
        self.kind = kind
        self.joinpoint = joinpoint
        self.detail = detail

    def as_dict(self) -> dict[str, Any]:
        """Wire-safe form (carried on ``midas.health`` reports)."""
        return {
            "time": self.time,
            "kind": self.kind,
            "joinpoint": self.joinpoint,
            "detail": self.detail,
        }

    def __repr__(self) -> str:
        return f"<Strike {self.kind} at {self.joinpoint} t={self.time:.3f}>"


class ExtensionHealth:
    """Supervision record of one supervised aspect."""

    __slots__ = ("aspect_name", "strikes", "contained", "quarantined",
                 "quarantined_at")

    def __init__(self, aspect_name: str):
        self.aspect_name = aspect_name
        #: Strikes inside the current window (older ones are pruned).
        self.strikes: list[Strike] = []
        #: Total faults contained over this aspect's lifetime.
        self.contained = 0
        self.quarantined = False
        self.quarantined_at: float | None = None

    def as_dict(self) -> dict[str, Any]:
        """Summary used by reports and :meth:`ExtensionSupervisor.snapshot`."""
        return {
            "extension": self.aspect_name,
            "contained": self.contained,
            "recent_strikes": [strike.as_dict() for strike in self.strikes],
            "quarantined": self.quarantined,
            "quarantined_at": self.quarantined_at,
        }

    def __repr__(self) -> str:
        flag = " QUARANTINED" if self.quarantined else ""
        return f"<ExtensionHealth {self.aspect_name} contained={self.contained}{flag}>"


def _call_with_step_budget(
    callback: Callable[..., Any], ctx: Any, budget: int, label: str
) -> Any:
    """Run ``callback(ctx)`` aborting it once ``budget`` line events pass.

    Counting is suspended for everything executed under
    :meth:`ExecutionContext.proceed` — the application's own code (and
    deeper advice, which has its own barrier) is never charged to this
    advice.  The previous trace function is restored on exit, so nested
    supervised advice composes.
    """
    state = {"steps": 0, "suspended": 0}

    def pause(frame: Any, event: str, arg: Any) -> Any:
        if event == "return":
            state["suspended"] -= 1
        return pause

    def count(frame: Any, event: str, arg: Any) -> Any:
        if event == "line":
            state["steps"] += 1
            if state["steps"] > budget:
                raise AdviceBudgetExceeded(label, budget)
        return count

    def tracer(frame: Any, event: str, arg: Any) -> Any:
        if event != "call":
            return None
        if frame.f_code is _PROCEED_CODE:
            state["suspended"] += 1
            return pause
        if state["suspended"]:
            return None
        return count

    previous = sys.gettrace()
    sys.settrace(tracer)
    try:
        return callback(ctx)
    finally:
        sys.settrace(previous)


class _AspectGuard(AdviceContainment):
    """The containment object handed to ``ProseVM.insert`` for one aspect."""

    __slots__ = ("_supervisor", "_aspect", "_health")

    def __init__(
        self,
        supervisor: "ExtensionSupervisor",
        aspect: Aspect,
        health: ExtensionHealth,
    ):
        self._supervisor = supervisor
        self._aspect = aspect
        self._health = health

    def wrap(
        self, advice: Advice, callback: Callable[..., Any]
    ) -> Callable[..., Any]:
        supervisor = self._supervisor
        aspect = self._aspect
        health = self._health
        policy = supervisor.policy
        is_around = advice.kind is AdviceKind.AROUND
        label = f"{aspect.name}.{advice.name or 'advice'}"
        step_budget = policy.step_budget
        time_budget = policy.time_budget
        contain = self._contain

        # The barrier sits on every interception's hot path, so the
        # closure is specialized per configuration: with no budgets
        # configured (the default), the no-fault path is one attribute
        # check and a (zero-cost in CPython 3.11+) try block.
        if step_budget is None and time_budget is None:
            if is_around:
                def contained(ctx: Any) -> Any:
                    if health.quarantined:
                        return ctx.proceed()
                    proceeded_before = ctx.proceeded
                    try:
                        return callback(ctx)
                    except BaseException as exc:  # noqa: BLE001 - the barrier
                        return contain(ctx, exc, label, True, proceeded_before)
            else:
                def contained(ctx: Any) -> Any:
                    if health.quarantined:
                        return None
                    try:
                        return callback(ctx)
                    except BaseException as exc:  # noqa: BLE001 - the barrier
                        return contain(ctx, exc, label, False, 0)
        else:
            def contained(ctx: Any) -> Any:
                if health.quarantined:
                    # The offender is on its way out (or refused
                    # withdrawal): never run its advice again, but keep
                    # the application path alive.
                    return ctx.proceed() if is_around else None
                proceeded_before = ctx.proceeded if is_around else 0
                start = perf_counter() if time_budget is not None else 0.0
                try:
                    if step_budget is not None:
                        result = _call_with_step_budget(
                            callback, ctx, step_budget, label
                        )
                    else:
                        result = callback(ctx)
                except BaseException as exc:  # noqa: BLE001 - the barrier
                    return contain(ctx, exc, label, is_around, proceeded_before)
                if time_budget is not None:
                    elapsed = perf_counter() - start
                    if elapsed > time_budget:
                        supervisor._strike(
                            aspect,
                            health,
                            STRIKE_BUDGET,
                            label,
                            RuntimeError(
                                f"advice ran {elapsed * 1e3:.2f} ms, "
                                f"budget {time_budget * 1e3:.2f} ms"
                            ),
                        )
                return result

        contained.__name__ = getattr(callback, "__name__", "advice")
        contained.__prose_supervised__ = aspect  # type: ignore[attr-defined]
        return contained

    def _contain(
        self,
        ctx: Any,
        exc: BaseException,
        label: str,
        is_around: bool,
        proceeded_before: int,
    ) -> Any:
        """The barrier's slow path: triage, strike, pick a safe fallback.

        Runs inside the ``except`` block of the wrapped advice, so a bare
        ``raise`` re-raises the original exception with its traceback.
        """
        supervisor = self._supervisor
        policy = supervisor.policy
        if is_around and ctx.escaped is exc:
            raise  # the application's own exception, relayed by proceed()
        if isinstance(exc, AdviceBudgetExceeded):
            kind = STRIKE_BUDGET
        elif isinstance(exc, SandboxViolation):
            kind = STRIKE_VIOLATION
        elif isinstance(exc, policy.passthrough) or not isinstance(exc, Exception):
            raise  # intentional platform exception / interpreter exit
        else:
            kind = STRIKE_ERROR
        supervisor._strike(self._aspect, self._health, kind, label, exc)
        if not policy.contain:
            raise
        if is_around:
            if ctx.proceeded == proceeded_before:
                # The advice died before running the rest of the chain:
                # proceed on its behalf so the application call still
                # happens.
                return ctx.proceed()
            return ctx._last_proceed
        return None


class ExtensionSupervisor:
    """Tracks the health of every supervised aspect on one receiver."""

    def __init__(
        self,
        simulator: Simulator,
        policy: SupervisionPolicy | None = None,
        node_id: str = "node",
    ):
        self.simulator = simulator
        self.policy = policy or SupervisionPolicy()
        self.node_id = node_id
        #: Fires with (aspect, health) the moment an extension crosses
        #: the strike threshold.  Listener errors are isolated (Signal
        #: semantics), so a broken owner cannot corrupt advice dispatch.
        self.on_quarantine = Signal(f"{node_id}.on_quarantine")
        self._health: dict[Aspect, ExtensionHealth] = {}

    # -- weaver integration ------------------------------------------------------

    def guard(self, aspect: Aspect) -> AdviceContainment:
        """The containment object to pass to ``ProseVM.insert`` for ``aspect``."""
        health = self._health.get(aspect)
        if health is None:
            health = ExtensionHealth(aspect.name)
            self._health[aspect] = health
        return _AspectGuard(self, aspect, health)

    def release(self, aspect: Aspect) -> None:
        """Drop the health record of a withdrawn aspect."""
        self._health.pop(aspect, None)

    # -- queries ------------------------------------------------------------------

    def health_of(self, aspect: Aspect) -> ExtensionHealth | None:
        """The health record of ``aspect``, if it is supervised."""
        return self._health.get(aspect)

    def supervised(self) -> list[ExtensionHealth]:
        """Health records of every currently supervised aspect."""
        return list(self._health.values())

    def quarantined(self) -> list[ExtensionHealth]:
        """Health records currently in quarantine."""
        return [health for health in self._health.values() if health.quarantined]

    def snapshot(self) -> dict[str, Any]:
        """Serializable summary (for dashboards / platform summaries)."""
        return {
            "node": self.node_id,
            "policy": {
                "max_strikes": self.policy.max_strikes,
                "strike_window": self.policy.strike_window,
                "step_budget": self.policy.step_budget,
                "time_budget": self.policy.time_budget,
            },
            "extensions": [health.as_dict() for health in self._health.values()],
        }

    # -- strike accounting --------------------------------------------------------

    def _strike(
        self,
        aspect: Aspect,
        health: ExtensionHealth,
        kind: str,
        joinpoint: str,
        exc: BaseException,
    ) -> None:
        now = self.simulator.now
        policy = self.policy
        strike = Strike(now, kind, joinpoint, f"{type(exc).__name__}: {exc}")
        health.contained += 1
        health.strikes.append(strike)
        horizon = now - policy.strike_window
        if health.strikes[0].time <= horizon:
            health.strikes = [s for s in health.strikes if s.time > horizon]
        recorder = _telemetry.get_recorder()
        recorder.count(
            "supervision.contained",
            node=self.node_id,
            extension=health.aspect_name,
            kind=kind,
        )
        recorder.event(
            "supervision.contained",
            node=self.node_id,
            extension=health.aspect_name,
            kind=kind,
            joinpoint=joinpoint,
            detail=strike.detail,
        )
        if (
            policy.quarantine
            and not health.quarantined
            and len(health.strikes) >= policy.max_strikes
        ):
            health.quarantined = True
            health.quarantined_at = now
            recorder.count(
                "supervision.quarantined",
                node=self.node_id,
                extension=health.aspect_name,
            )
            recorder.event(
                "supervision.quarantined",
                node=self.node_id,
                extension=health.aspect_name,
                strikes=len(health.strikes),
                window=policy.strike_window,
            )
            self.on_quarantine.fire(aspect, health)

    def __repr__(self) -> str:
        return (
            f"<ExtensionSupervisor {self.node_id} "
            f"supervised={len(self._health)} "
            f"quarantined={len(self.quarantined())}>"
        )
