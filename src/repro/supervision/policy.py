"""Supervision policies — what a receiver tolerates from foreign advice.

A :class:`SupervisionPolicy` is pure data: the budgets one advice
execution must respect, the exception types an extension may
*intentionally* raise into the application (policy vetoes like
``AccessDeniedError``), and the strike rule (N strikes inside a sliding
window) that escalates repeated containment into quarantine.

Policies are immutable; derive variants with :func:`dataclasses.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FaultPlanError, ReproError

#: Strike kinds recorded by the supervisor.
STRIKE_ERROR = "error"
STRIKE_BUDGET = "budget"
STRIKE_VIOLATION = "violation"

STRIKE_KINDS = (STRIKE_ERROR, STRIKE_BUDGET, STRIKE_VIOLATION)


@dataclass(frozen=True)
class SupervisionPolicy:
    """Containment and quarantine knobs for one receiver.

    - ``max_strikes`` / ``strike_window``: an extension collecting
      ``max_strikes`` strikes within ``strike_window`` simulated seconds
      is quarantined (withdrawn, reported to its base).
    - ``step_budget``: maximum interpreter line-events one advice
      execution may burn.  Enforced *preemptively* with a trace function
      — a runaway loop is aborted mid-flight with
      :class:`~repro.errors.AdviceBudgetExceeded` — and deterministic
      (line counts do not depend on wall time).  Code the advice
      ``proceed()``s into is excluded from the count.  ``None`` disables
      the tracer entirely (zero overhead).
    - ``time_budget``: wall-clock seconds one advice execution may take,
      checked *post hoc* (Python cannot preempt on time); exceeding it
      records a budget strike but keeps the advice's result.  Not
      deterministic under simulation — prefer ``step_budget`` in tests.
    - ``contain``: when False the supervisor only records strikes and
      re-raises, for observe-only rollouts of a new policy.
    - ``quarantine``: when False strikes never escalate — containment
      keeps absorbing faults forever (pure error-barrier mode).
    - ``passthrough``: exception types advice may raise deliberately to
      the application (vetoes, denials).  Defaults to the platform's own
      :class:`~repro.errors.ReproError` family; sandbox violations and
      budget overruns are always treated as faults regardless.
    """

    max_strikes: int = 3
    strike_window: float = 30.0
    step_budget: int | None = None
    time_budget: float | None = None
    contain: bool = True
    quarantine: bool = True
    passthrough: tuple[type[BaseException], ...] = (ReproError,)

    def __post_init__(self) -> None:
        if self.max_strikes < 1:
            raise FaultPlanError(f"max_strikes must be >= 1, got {self.max_strikes}")
        if self.strike_window <= 0:
            raise FaultPlanError(
                f"strike_window must be > 0, got {self.strike_window}"
            )
        if self.step_budget is not None and self.step_budget < 1:
            raise FaultPlanError(f"step_budget must be >= 1, got {self.step_budget}")
        if self.time_budget is not None and self.time_budget <= 0:
            raise FaultPlanError(f"time_budget must be > 0, got {self.time_budget}")

    @classmethod
    def lenient(cls) -> "SupervisionPolicy":
        """Contain everything, never quarantine (pure error barrier)."""
        return cls(quarantine=False)

    @classmethod
    def observing(cls) -> "SupervisionPolicy":
        """Record strikes but let faults propagate (dry-run rollout)."""
        return cls(contain=False, quarantine=False)
