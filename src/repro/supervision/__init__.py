"""Extension supervision — fault containment, budgets, and quarantine.

The platform weaves *foreign* code into running applications, so the
receiver needs a supervisor standing between every woven advice and the
application it extends.  :class:`SupervisionPolicy` is the configuration
(budgets, strike rule, passthrough exceptions);
:class:`ExtensionSupervisor` does the work — its :meth:`~supervisor
.ExtensionSupervisor.guard` objects plug into the weaver's
:class:`~repro.aop.hooks.AdviceContainment` hook, and its
:attr:`~supervisor.ExtensionSupervisor.on_quarantine` signal tells the
MIDAS receiver when an extension must be withdrawn and reported.

See ``docs/supervision.md`` for the full lifecycle.
"""

from repro.supervision.policy import (
    STRIKE_BUDGET,
    STRIKE_ERROR,
    STRIKE_KINDS,
    STRIKE_VIOLATION,
    SupervisionPolicy,
)
from repro.supervision.supervisor import (
    ExtensionHealth,
    ExtensionSupervisor,
    Strike,
)

__all__ = [
    "ExtensionHealth",
    "ExtensionSupervisor",
    "STRIKE_BUDGET",
    "STRIKE_ERROR",
    "STRIKE_KINDS",
    "STRIKE_VIOLATION",
    "Strike",
    "SupervisionPolicy",
]
