"""A driving robot (rover) and the obstacle world it moves through.

The paper's task-layer story (§4.1) is about a *driving* robot: "a touch
sensor identified an obstacle", the hardware freezes, and the task
decides.  The plotter never moves through space, so this module adds the
missing body:

- a :class:`Rover` — differential drive: two motors (ports A/B) whose
  rotations advance/turn the chassis; a front :class:`TouchSensor`
  (port 1);
- an :class:`ObstacleWorld` — walls the rover can bump into; driving into
  one presses the bumper and raises the hardware event, exactly the
  freeze-and-decide flow the task layer implements.

The rover also carries the node-position bridge: attach it to a
:class:`~repro.net.node.NetworkNode` and the radio follows the chassis,
so driving out of a hall has the usual MIDAS consequences.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.net.geometry import Position, Region
from repro.net.node import NetworkNode
from repro.robot.hardware import LightSensor, Motor, TouchSensor
from repro.robot.rcx import HardwareMacro, RCXBrick


class _WorldLightSensor(LightSensor):
    """A light sensor reading the world's lighting at the rover's position."""

    def __init__(self, rover: "Rover"):
        super().__init__(f"{rover.robot_id}.eye")
        self._rover = rover

    def read(self) -> int:
        return self._rover.world.light_at(self._rover.position)

#: Chassis travel per degree of (synchronised) wheel rotation, meters.
METERS_PER_DEGREE = 0.001
#: Chassis turn per degree of differential wheel rotation, degrees.
TURN_RATIO = 0.5


#: Default ambient light level on the floor (0..100).
AMBIENT_LIGHT = 50


class ObstacleWorld:
    """Rectangular obstacles and lighting zones on the floor."""

    def __init__(
        self,
        obstacles: Iterable[Region] = (),
        ambient_light: int = AMBIENT_LIGHT,
    ):
        self.obstacles = list(obstacles)
        self.ambient_light = ambient_light
        self._light_zones: list[tuple[Region, int]] = []

    def add(self, region: Region) -> None:
        """Place one more obstacle."""
        self.obstacles.append(region)

    def blocked(self, position: Position) -> Region | None:
        """The obstacle containing ``position``, if any."""
        for region in self.obstacles:
            if region.contains(position):
                return region
        return None

    def add_light_zone(self, region: Region, level: int) -> None:
        """A floor area with its own light level (a lamp, a dark corner)."""
        if not 0 <= level <= 100:
            raise ValueError(f"light level {level} outside [0, 100]")
        self._light_zones.append((region, level))

    def light_at(self, position: Position) -> int:
        """Light level at ``position`` (innermost zone wins, else ambient)."""
        for region, level in reversed(self._light_zones):
            if region.contains(position):
                return level
        return self.ambient_light


class Rover:
    """A differential-drive robot on an RCX brick.

    Movement macros:

    - ``drive(degrees)`` on both wheel motors together — forward/back;
    - opposite rotations — turning in place.

    Convenience macro builders (:meth:`forward_macros`,
    :meth:`turn_macros`) produce the activity requests a
    :class:`~repro.robot.tasks.Task` yields.

    When the chassis would enter an obstacle, it stops *at the boundary*,
    the bumper is pressed, and the brick raises a sensor event — freezing
    the hardware until the application layer decides.
    """

    def __init__(
        self,
        robot_id: str,
        world: ObstacleWorld | None = None,
        position: Position = Position(0.0, 0.0),
        heading: float = 0.0,
    ):
        self.robot_id = robot_id
        self.world = world or ObstacleWorld()
        self.position = position
        self.heading = heading  # degrees, 0 = +x
        self.bumps = 0
        self._node: NetworkNode | None = None

        self.rcx = RCXBrick(f"{robot_id}.rcx")
        self.left = self.rcx.attach_motor("A", Motor(f"{robot_id}.motor.left"))
        self.right = self.rcx.attach_motor("B", Motor(f"{robot_id}.motor.right"))
        self.bumper = self.rcx.attach_sensor("1", TouchSensor(f"{robot_id}.bumper"))
        self.eye = self.rcx.attach_sensor("2", _WorldLightSensor(self))
        self.left.observe(self._wheel_turned)
        self.right.observe(self._wheel_turned)
        self._pending = {id(self.left): 0.0, id(self.right): 0.0}

    # -- radio bridge -----------------------------------------------------------

    def attach_node(self, node: NetworkNode) -> None:
        """Make ``node``'s radio position follow the chassis."""
        self._node = node
        node.move_to(self.position)

    # -- macro builders ------------------------------------------------------------

    def forward_macros(self, meters: float, step_m: float = 0.1) -> list[HardwareMacro]:
        """Activity requests driving ``meters`` forward in small steps."""
        macros = []
        remaining = meters
        while remaining > 1e-9:
            step = min(step_m, remaining)
            degrees = step / METERS_PER_DEGREE
            macros.append(HardwareMacro("A", "rotate", (degrees,), step / 0.2))
            macros.append(HardwareMacro("B", "rotate", (degrees,), 0.0))
            remaining -= step
        return macros

    def turn_macros(self, degrees: float) -> list[HardwareMacro]:
        """Activity requests turning in place by ``degrees`` (ccw > 0)."""
        wheel = degrees / TURN_RATIO / 2.0
        return [
            HardwareMacro("A", "rotate", (-wheel,), abs(degrees) / 90.0),
            HardwareMacro("B", "rotate", (wheel,), 0.0),
        ]

    # -- physics ---------------------------------------------------------------------

    def _wheel_turned(self, motor: Motor, degrees: float) -> None:
        self._pending[id(motor)] += degrees
        left = self._pending[id(self.left)]
        right = self._pending[id(self.right)]
        # Consume matched rotation: the common component drives, the
        # differential component turns.
        drive = (
            math.copysign(min(abs(left), abs(right)), left)
            if left * right > 0
            else 0.0
        )
        if drive:
            self._advance(drive)
            self._pending[id(self.left)] -= drive
            self._pending[id(self.right)] -= drive
            left = self._pending[id(self.left)]
            right = self._pending[id(self.right)]
        if left * right < 0:
            twist = math.copysign(min(abs(left), abs(right)), right)
            self.heading = (self.heading + twist * TURN_RATIO * 2.0) % 360.0
            self._pending[id(self.left)] += twist
            self._pending[id(self.right)] -= twist

    def _advance(self, wheel_degrees: float) -> None:
        distance = wheel_degrees * METERS_PER_DEGREE
        radians = math.radians(self.heading)
        target = Position(
            self.position.x + distance * math.cos(radians),
            self.position.y + distance * math.sin(radians),
        )
        obstacle = self.world.blocked(target)
        if obstacle is None:
            self._move_chassis(target)
            return
        # Bump: stop at the current position, press the bumper, freeze.
        self.bumps += 1
        self.bumper.press()
        self.rcx.raise_event("1", f"obstacle {obstacle.name or 'wall'}")
        self.bumper.release()

    def _move_chassis(self, target: Position) -> None:
        self.position = target
        if self._node is not None:
            self._node.move_to(target)

    def __repr__(self) -> str:
        return (
            f"<Rover {self.robot_id} at {self.position} "
            f"heading={self.heading:.0f}deg bumps={self.bumps}>"
        )
