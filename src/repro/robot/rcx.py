"""The RCX brick — the device controller layer.

Models the LeJOS-level view of LEGO's RCX: three output ports (A, B, C)
for motors, three input ports (1, 2, 3) for sensors, and a *hardware
macro* execution interface.  The crucial behaviour reproduced from §4.1:

  "A task is also notified whenever an event of interest is detected by
  the sensors.  When this happens, the hardware completely freezes its
  activity and notifies the robot application layer of the occurred
  event."

So :meth:`RCXBrick.raise_event` freezes the brick — further macros raise
:class:`~repro.errors.HardwareFrozenError` until the application layer
decides and calls :meth:`RCXBrick.resume`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import HardwareError, HardwareFrozenError
from repro.robot.hardware import Motor, Sensor
from repro.util.signal import Signal

MOTOR_PORTS = ("A", "B", "C")
SENSOR_PORTS = ("1", "2", "3")

#: Seconds a typical hardware macro occupies the drivetrain.
DEFAULT_MACRO_DURATION = 0.1


@dataclass(frozen=True)
class HardwareMacro:
    """One activity request sent from the task layer to the hardware.

    ``command`` names a method of the device on ``port`` (e.g.
    ``rotate``); ``args`` are its arguments; ``duration`` is how long the
    physical action takes.
    """

    port: str
    command: str
    args: tuple[Any, ...] = ()
    duration: float = DEFAULT_MACRO_DURATION

    def __repr__(self) -> str:
        args = ", ".join(repr(a) for a in self.args)
        return f"<Macro {self.port}.{self.command}({args}) {self.duration}s>"


@dataclass(frozen=True)
class SensorEvent:
    """An event of interest detected by a sensor."""

    port: str
    sensor_id: str
    value: Any
    description: str = ""
    time: float = field(default=0.0)

    def __repr__(self) -> str:
        return f"<SensorEvent {self.sensor_id}={self.value!r} ({self.description})>"


class RCXBrick:
    """The simulated RCX device controller."""

    def __init__(self, brick_id: str):
        self.brick_id = brick_id
        self.frozen = False
        #: Fires with (event,) when a sensor raises an event of interest.
        self.on_event = Signal(f"{brick_id}.on_event")
        self._motors: dict[str, Motor] = {}
        self._sensors: dict[str, Sensor] = {}
        self.macros_executed = 0

    # -- wiring ---------------------------------------------------------------

    def attach_motor(self, port: str, motor: Motor) -> Motor:
        """Attach a motor to output port A, B or C."""
        if port not in MOTOR_PORTS:
            raise HardwareError(f"no motor port {port!r} (have {MOTOR_PORTS})")
        self._motors[port] = motor
        return motor

    def attach_sensor(self, port: str, sensor: Sensor) -> Sensor:
        """Attach a sensor to input port 1, 2 or 3."""
        if port not in SENSOR_PORTS:
            raise HardwareError(f"no sensor port {port!r} (have {SENSOR_PORTS})")
        self._sensors[port] = sensor
        return sensor

    def motor(self, port: str) -> Motor:
        """The motor on ``port``."""
        try:
            return self._motors[port]
        except KeyError:
            raise HardwareError(f"no motor attached to port {port!r}") from None

    def sensor(self, port: str) -> Sensor:
        """The sensor on ``port``."""
        try:
            return self._sensors[port]
        except KeyError:
            raise HardwareError(f"no sensor attached to port {port!r}") from None

    def devices(self) -> list[Motor | Sensor]:
        """All attached devices."""
        return [*self._motors.values(), *self._sensors.values()]

    # -- macro execution ------------------------------------------------------------

    def execute(self, macro: HardwareMacro) -> Any:
        """Perform one hardware macro; raises while frozen."""
        if self.frozen:
            raise HardwareFrozenError(
                f"{self.brick_id} is frozen by a sensor event; macro {macro!r} refused"
            )
        device: Motor | Sensor
        if macro.port in MOTOR_PORTS:
            device = self.motor(macro.port)
        else:
            device = self.sensor(macro.port)
        method = getattr(device, macro.command, None)
        if method is None or not callable(method):
            raise HardwareError(
                f"device on port {macro.port} has no command {macro.command!r}"
            )
        self.macros_executed += 1
        return method(*macro.args)

    # -- events -----------------------------------------------------------------------

    def raise_event(self, port: str, description: str = "") -> SensorEvent:
        """A sensor detected something: freeze all activity, notify upward."""
        sensor = self.sensor(port)
        for motor in self._motors.values():
            motor.stop()
        self.frozen = True
        event = SensorEvent(port, sensor.get_id(), sensor.read(), description)
        self.on_event.fire(event)
        return event

    def resume(self) -> None:
        """Thaw the hardware after the application layer decided."""
        self.frozen = False

    def __repr__(self) -> str:
        state = "frozen" if self.frozen else "ready"
        return (
            f"<RCXBrick {self.brick_id} motors={sorted(self._motors)} "
            f"sensors={sorted(self._sensors)} {state}>"
        )
