"""The robot substrate (LEGO RCX / LeJOS analogue).

Section 4 of the paper develops its prototypes on LEGO Mindstorms RCX
bricks running LeJOS, driven from an iPAQ.  This package reproduces that
three-layer stack in simulation:

- :mod:`repro.robot.hardware` — the homogeneous hardware view: a
  ``Device`` class with ``Sensor`` and ``Motor`` subclasses, and concrete
  sensors per device kind (exactly the class hierarchy of §4.1);
- :mod:`repro.robot.rcx` — the RCX brick: ports, hardware macros, and the
  freeze-on-event semantics ("the hardware completely freezes its
  activity and notifies the robot application layer");
- :mod:`repro.robot.tasks` — the application layer: tasks broken into
  activity requests (hardware macros), event decisions, the *direct mode*
  and the *overriding layer*;
- :mod:`repro.robot.plotter` — the plotter prototype of §4.3: three
  motors moving a marking pen, plus the drawing program exported as a
  discovery service;
- :mod:`repro.robot.world` — the observable world: the canvas that
  records every stroke the pen draws (our ground truth for replication,
  control and replay experiments).
"""

from repro.robot.hardware import (
    Device,
    LightSensor,
    Motor,
    RotationSensor,
    Sensor,
    TouchSensor,
)
from repro.robot.plotter import DrawingService, Plotter, build_plotter
from repro.robot.rcx import HardwareMacro, RCXBrick, SensorEvent
from repro.robot.rover import ObstacleWorld, Rover
from repro.robot.tasks import (
    DirectMode,
    EventDecision,
    RobotApplication,
    SequenceTask,
    Task,
    TaskRun,
)
from repro.robot.world import Canvas

__all__ = [
    "Canvas",
    "Device",
    "DirectMode",
    "DrawingService",
    "EventDecision",
    "HardwareMacro",
    "LightSensor",
    "Motor",
    "ObstacleWorld",
    "Plotter",
    "RCXBrick",
    "Rover",
    "RobotApplication",
    "RotationSensor",
    "Sensor",
    "SensorEvent",
    "SequenceTask",
    "Task",
    "TaskRun",
    "TouchSensor",
    "build_plotter",
]
