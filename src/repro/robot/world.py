"""The observable world: the plotter's canvas.

The canvas records every stroke the marking pen draws.  It is the ground
truth the experiments check: a mirror robot reproduces the same strokes,
a scaled replication reproduces them amplified, a control extension keeps
ink out of forbidden regions, and a replay reproduces a recorded session.
"""

from __future__ import annotations

import math
from typing import Iterable

Point = tuple[float, float]


class Canvas:
    """A sheet of paper under the plotter head."""

    def __init__(self, name: str = "canvas"):
        self.name = name
        self.strokes: list[list[Point]] = []
        self._current: list[Point] | None = None

    # -- pen protocol (driven by the plotter) ------------------------------------

    @property
    def drawing(self) -> bool:
        """True while a stroke is open (pen is down)."""
        return self._current is not None

    def pen_down(self, at: Point) -> None:
        """Start a stroke at ``at`` (idempotent while already down)."""
        if self._current is None:
            self._current = [at]
            self.strokes.append(self._current)

    def pen_move(self, to: Point) -> None:
        """Extend the open stroke; pen-up movement leaves no ink."""
        if self._current is not None and self._current[-1] != to:
            self._current.append(to)

    def pen_up(self) -> None:
        """Close the open stroke."""
        if self._current is not None:
            # A stroke needs at least a dot; a single point counts as one.
            self._current = None

    # -- measurements ------------------------------------------------------------------

    def stroke_count(self) -> int:
        """Number of strokes drawn so far."""
        return len(self.strokes)

    def total_ink(self) -> float:
        """Total drawn length in millimeters."""
        total = 0.0
        for stroke in self.strokes:
            for (x0, y0), (x1, y1) in zip(stroke, stroke[1:]):
                total += math.hypot(x1 - x0, y1 - y0)
        return total

    def bounding_box(self) -> tuple[float, float, float, float] | None:
        """(min_x, min_y, max_x, max_y) over all ink, or None if blank."""
        points = [point for stroke in self.strokes for point in stroke]
        if not points:
            return None
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        return (min(xs), min(ys), max(xs), max(ys))

    def points(self) -> Iterable[Point]:
        """All ink points in drawing order."""
        for stroke in self.strokes:
            yield from stroke

    def clear(self) -> None:
        """Fresh sheet of paper."""
        self.strokes.clear()
        self._current = None

    # -- comparisons (for replication/replay experiments) ----------------------------------

    def scaled(self, factor: float) -> "Canvas":
        """A copy of this canvas with all coordinates scaled by ``factor``."""
        copy = Canvas(f"{self.name}*{factor}")
        copy.strokes = [
            [(x * factor, y * factor) for (x, y) in stroke] for stroke in self.strokes
        ]
        return copy

    def matches(self, other: "Canvas", tolerance: float = 1e-6) -> bool:
        """True if both canvases contain the same ink (within tolerance)."""
        if len(self.strokes) != len(other.strokes):
            return False
        for mine, theirs in zip(self.strokes, other.strokes):
            if len(mine) != len(theirs):
                return False
            for (x0, y0), (x1, y1) in zip(mine, theirs):
                if math.hypot(x1 - x0, y1 - y0) > tolerance:
                    return False
        return True

    def render(self, width: int = 40, height: int = 20, ink: str = "#") -> str:
        """ASCII rendering of the drawing (the paper's 'graphic display').

        Ink is rasterized onto a ``width`` × ``height`` character grid
        spanning the drawing's bounding box; y grows upward.  Returns an
        empty string for a blank canvas.
        """
        box = self.bounding_box()
        if box is None:
            return ""
        min_x, min_y, max_x, max_y = box
        span_x = max(max_x - min_x, 1e-9)
        span_y = max(max_y - min_y, 1e-9)
        grid = [[" "] * width for _ in range(height)]

        def plot(x: float, y: float) -> None:
            col = min(int((x - min_x) / span_x * (width - 1)), width - 1)
            row = min(int((y - min_y) / span_y * (height - 1)), height - 1)
            grid[height - 1 - row][col] = ink

        for stroke in self.strokes:
            for (x0, y0), (x1, y1) in zip(stroke, stroke[1:]):
                steps = max(int(math.hypot(x1 - x0, y1 - y0) / span_x * width), 1)
                for step in range(steps + 1):
                    t = step / steps
                    plot(x0 + (x1 - x0) * t, y0 + (y1 - y0) * t)
            if len(stroke) == 1:
                plot(*stroke[0])
        return "\n".join("".join(row) for row in grid)

    def __repr__(self) -> str:
        return (
            f"<Canvas {self.name} strokes={self.stroke_count()} "
            f"ink={self.total_ink():.1f}mm>"
        )
