"""The plotter prototype (§4.3, Fig. 4).

"This robot acts as the head of a printer as it moves a marking pen
across three dimensions. ... Movement across each dimension is controlled
by a motor.  The overall movement is determined by a drawing program that
exports a drawing interface as a Jini service.  The program and the robot
do not contain any code beyond that related to drawing."

- Motors on RCX ports A and B move the carriage in x and y; the motor on
  port C raises and lowers the pen.
- The :class:`Plotter` translates drawing calls into hardware macros, so
  every movement passes through ``Motor`` methods — the join points the
  ``HwMonitoring``, replication and control extensions crosscut.
- :class:`DrawingService` exports the drawing interface over the
  transport and registers it with discovery.
"""

from __future__ import annotations

from typing import Any

from repro.discovery.client import DiscoveryClient
from repro.discovery.service import ServiceItem
from repro.net.transport import Transport
from repro.robot.hardware import Motor
from repro.robot.rcx import HardwareMacro, RCXBrick
from repro.robot.world import Canvas

#: Carriage travel per degree of motor shaft rotation.
MM_PER_DEGREE = 0.5
#: Pen motor angle threshold separating "down" from "up".
PEN_DOWN_ANGLE = 45.0
#: Carriage speed used to derive macro durations (mm per second).
CARRIAGE_SPEED = 40.0

#: The interface name the drawing service advertises under.
DRAWING_INTERFACE = "robot.DrawingService"


class Plotter:
    """A three-motor plotter head over an RCX brick.

    The plotter owns the geometry: it observes its motors' rotations and
    moves the carriage/pen accordingly, inking the canvas while the pen
    is down.  All movement *commands* go through the motors (via RCX
    macros), never directly to the canvas — extensions that intercept
    ``Motor`` methods therefore see every physical action.
    """

    def __init__(
        self,
        robot_id: str,
        rcx: RCXBrick,
        canvas: Canvas,
        mm_per_degree: float = MM_PER_DEGREE,
    ):
        self.robot_id = robot_id
        self.rcx = rcx
        self.canvas = canvas
        self.mm_per_degree = mm_per_degree
        self.x = 0.0
        self.y = 0.0
        self.pen_is_down = False
        rcx.motor("A").observe(self._x_rotated)
        rcx.motor("B").observe(self._y_rotated)
        rcx.motor("C").observe(self._pen_rotated)

    # -- the drawing interface (the published API extensions crosscut) -----------

    def move_to(self, x: float, y: float) -> None:
        """Move the carriage to ``(x, y)``, inking if the pen is down.

        Axes move one motor at a time (x then y), so a diagonal request
        draws an L-shaped path — the behaviour of a simple two-motor
        gantry that does not interpolate both axes concurrently.
        """
        dx = x - self.x
        dy = y - self.y
        if dx:
            self.rcx.execute(self._axis_macro("A", dx))
        if dy:
            self.rcx.execute(self._axis_macro("B", dy))

    def pen_down(self) -> None:
        """Lower the marking pen."""
        if not self.pen_is_down:
            self.rcx.execute(HardwareMacro("C", "rotate", (90.0,), 0.2))

    def pen_up(self) -> None:
        """Raise the marking pen."""
        if self.pen_is_down:
            self.rcx.execute(HardwareMacro("C", "rotate", (-90.0,), 0.2))

    def draw_polyline(self, points: list[tuple[float, float]]) -> None:
        """Move to the first point, then draw through the rest."""
        if not points:
            return
        self.pen_up()
        self.move_to(*points[0])
        self.pen_down()
        for point in points[1:]:
            self.move_to(*point)
        self.pen_up()

    @property
    def position(self) -> tuple[float, float]:
        """Current carriage position (mm)."""
        return (self.x, self.y)

    # -- motor observers (physics) ---------------------------------------------------

    def _axis_macro(self, port: str, delta_mm: float) -> HardwareMacro:
        degrees = delta_mm / self.mm_per_degree
        duration = abs(delta_mm) / CARRIAGE_SPEED
        return HardwareMacro(port, "rotate", (degrees,), duration)

    def _x_rotated(self, motor: Motor, degrees: float) -> None:
        self.x += degrees * self.mm_per_degree
        self._carriage_moved()

    def _y_rotated(self, motor: Motor, degrees: float) -> None:
        self.y += degrees * self.mm_per_degree
        self._carriage_moved()

    def _pen_rotated(self, motor: Motor, degrees: float) -> None:
        down = motor.angle >= PEN_DOWN_ANGLE
        if down and not self.pen_is_down:
            self.pen_is_down = True
            self.canvas.pen_down((self.x, self.y))
        elif not down and self.pen_is_down:
            self.pen_is_down = False
            self.canvas.pen_up()

    def _carriage_moved(self) -> None:
        if self.pen_is_down:
            self.canvas.pen_move((self.x, self.y))

    def __repr__(self) -> str:
        pen = "down" if self.pen_is_down else "up"
        return f"<Plotter {self.robot_id} at ({self.x:.1f}, {self.y:.1f}) pen {pen}>"


def build_plotter(robot_id: str, canvas: Canvas | None = None) -> Plotter:
    """Assemble a standard plotter: RCX brick with x/y/pen motors."""
    rcx = RCXBrick(f"{robot_id}.rcx")
    rcx.attach_motor("A", Motor(f"{robot_id}.motor.x"))
    rcx.attach_motor("B", Motor(f"{robot_id}.motor.y"))
    rcx.attach_motor("C", Motor(f"{robot_id}.motor.pen"))
    return Plotter(robot_id, rcx, canvas or Canvas(f"{robot_id}.canvas"))


class DrawingService:
    """Exports a plotter's drawing interface over the network.

    Operations: ``draw.move_to``, ``draw.pen``, ``draw.polyline``,
    ``draw.position``.  Registered with discovery under
    :data:`DRAWING_INTERFACE` so drawing programs (and the replication
    extension's mirror feed) can find plotters.
    """

    def __init__(self, plotter: Plotter, transport: Transport):
        self.plotter = plotter
        self.transport = transport
        transport.register("draw.move_to", self._serve_move_to)
        transport.register("draw.pen", self._serve_pen)
        transport.register("draw.polyline", self._serve_polyline)
        transport.register("draw.position", self._serve_position)

    def advertise(self, discovery: DiscoveryClient) -> None:
        """Register the drawing interface with the discovery layer."""
        discovery.register(
            ServiceItem(
                DRAWING_INTERFACE,
                self.transport.node.node_id,
                {"robot": self.plotter.robot_id},
            )
        )

    def _serve_move_to(self, sender: str, body: dict[str, Any]) -> dict[str, Any]:
        self.plotter.move_to(body["x"], body["y"])
        return {"position": self.plotter.position}

    def _serve_pen(self, sender: str, body: dict[str, Any]) -> dict[str, Any]:
        if body["down"]:
            self.plotter.pen_down()
        else:
            self.plotter.pen_up()
        return {"pen_down": self.plotter.pen_is_down}

    def _serve_polyline(self, sender: str, body: dict[str, Any]) -> dict[str, Any]:
        self.plotter.draw_polyline([tuple(p) for p in body["points"]])
        return {"position": self.plotter.position}

    def _serve_position(self, sender: str, body: Any) -> dict[str, Any]:
        return {"position": self.plotter.position, "pen_down": self.plotter.pen_is_down}

    def __repr__(self) -> str:
        return f"<DrawingService for {self.plotter.robot_id}>"
