"""Hardware device models.

"The hardware entities have been encapsulated in a Device class with
Sensor and Motor as sub-classes.  For each particular device (e.g., light
sensor, motion sensor) further sub-classes are added to the system."
(§4.1)

These classes are deliberately plain Python with typed, small methods —
they are the *join points* the paper's extensions intercept (the
``HwMonitoring`` aspect of Fig. 5 crosscuts "any methods belonging to a
Motor class").  State changes go through ordinary attribute assignment so
field-write crosscuts can observe them too.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import HardwareError

#: Power limits of an RCX output port.
MIN_POWER = 0
MAX_POWER = 7


class Device:
    """Base class of every operative part of the robot."""

    def __init__(self, device_id: str):
        self.device_id = device_id

    def get_id(self) -> str:
        """The device's stable identifier (used in monitoring records)."""
        return self.device_id

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.device_id}>"


class Motor(Device):
    """An output device: a motor with power, direction and a shaft angle.

    ``on_rotate`` lets a robot body (e.g. the plotter carriage) observe
    shaft movement; it receives ``(motor, degrees)`` after each rotation.
    """

    def __init__(
        self,
        device_id: str,
        on_rotate: Callable[["Motor", float], None] | None = None,
    ):
        super().__init__(device_id)
        self.power = 0
        self.direction = 1  # +1 forward, -1 backward
        self.running = False
        self.angle = 0.0  # cumulative shaft angle, degrees
        self._on_rotate = on_rotate

    def set_power(self, power: int) -> None:
        """Set drive power (0..7, the RCX range)."""
        if not MIN_POWER <= power <= MAX_POWER:
            raise HardwareError(
                f"power {power} outside [{MIN_POWER}, {MAX_POWER}] on {self.device_id}"
            )
        self.power = power

    def forward(self, power: int | None = None) -> None:
        """Run forward (optionally setting power first)."""
        if power is not None:
            self.set_power(power)
        self.direction = 1
        self.running = True

    def backward(self, power: int | None = None) -> None:
        """Run backward (optionally setting power first)."""
        if power is not None:
            self.set_power(power)
        self.direction = -1
        self.running = True

    def stop(self) -> None:
        """Stop the motor."""
        self.running = False

    def rotate(self, degrees: float) -> float:
        """Rotate the shaft by ``degrees`` (sign gives direction).

        Returns the new cumulative angle.  This is the workhorse hardware
        macro of the plotter ("turn left 30 degrees" in §4.1 is the
        drivetrain equivalent).
        """
        self.angle += degrees
        if self._on_rotate is not None:
            self._on_rotate(self, degrees)
        return self.angle

    def observe(self, on_rotate: Callable[["Motor", float], None]) -> None:
        """Attach the rotation observer (one per motor)."""
        self._on_rotate = on_rotate


class Sensor(Device):
    """An input device: something the robot reads."""

    def read(self) -> Any:
        """Return the current sensor value."""
        raise NotImplementedError


class TouchSensor(Sensor):
    """A bumper: pressed or not.  The world presses it."""

    def __init__(self, device_id: str):
        super().__init__(device_id)
        self.pressed = False

    def read(self) -> bool:
        """True while the bumper is pressed."""
        return self.pressed

    def press(self) -> None:
        """World-side: press the bumper."""
        self.pressed = True

    def release(self) -> None:
        """World-side: release the bumper."""
        self.pressed = False


class LightSensor(Sensor):
    """Reads ambient light level (0..100)."""

    def __init__(self, device_id: str, level: int = 50):
        super().__init__(device_id)
        self.level = level

    def read(self) -> int:
        """Current light level."""
        return self.level

    def set_level(self, level: int) -> None:
        """World-side: change the ambient light."""
        if not 0 <= level <= 100:
            raise HardwareError(f"light level {level} outside [0, 100]")
        self.level = level


class RotationSensor(Sensor):
    """Reports the cumulative shaft angle of a motor."""

    def __init__(self, device_id: str, motor: Motor):
        super().__init__(device_id)
        self.motor = motor

    def read(self) -> float:
        """The observed motor's cumulative angle in degrees."""
        return self.motor.angle
