"""The robot application layer: tasks, direct mode, overriding.

Reproduces the second layer of Fig. 3a:

- a :class:`Task` "defines an objective for the robot" and is "broken
  into activity requests (hardware macros) that are sent to the lower
  layers";
- when a sensor event freezes the hardware, the running task is asked to
  decide: continue the interrupted sequence, or abort
  (:class:`EventDecision`);
- the :class:`DirectMode` layer "allows direct connection to the robot
  hardware" for human control;
- :meth:`RobotApplication.override` runs a second task in place of the
  current one without direct mode — the current task is suspended and
  resumed afterwards (the *overriding layer*).

Tasks run as simulated processes: each macro occupies the hardware for
its duration of virtual time.
"""

from __future__ import annotations

import enum
import logging
from typing import Iterator

from repro.errors import TaskError
from repro.robot.rcx import HardwareMacro, RCXBrick, SensorEvent
from repro.sim.kernel import Event, Simulator
from repro.util.signal import Signal

logger = logging.getLogger(__name__)


class EventDecision(enum.Enum):
    """A task's answer to a sensor event."""

    CONTINUE = "continue"
    ABORT = "abort"


class Task:
    """A basic program deciding what the robot is going to do.

    Subclasses override :meth:`macros` (a generator of hardware macros)
    and optionally :meth:`on_event`.  The default event policy is ABORT —
    the safe choice for an unexpected obstacle.
    """

    def __init__(self, name: str):
        self.name = name

    def macros(self) -> Iterator[HardwareMacro]:
        """Yield the activity requests realizing this task's objective."""
        raise NotImplementedError

    def on_event(self, event: SensorEvent) -> EventDecision:
        """Decide whether to continue after a sensor event."""
        return EventDecision.ABORT

    def __repr__(self) -> str:
        return f"<Task {self.name}>"


class SequenceTask(Task):
    """A task from a fixed list of macros (handy for tests and replay)."""

    def __init__(self, name: str, macros: list[HardwareMacro],
                 event_decision: EventDecision = EventDecision.ABORT):
        super().__init__(name)
        self._macros = list(macros)
        self._event_decision = event_decision

    def macros(self) -> Iterator[HardwareMacro]:
        yield from self._macros

    def on_event(self, event: SensorEvent) -> EventDecision:
        return self._event_decision


class TaskRun:
    """One execution of a task on the hardware, driven by the simulator."""

    def __init__(self, application: "RobotApplication", task: Task):
        self.application = application
        self.task = task
        self.finished = False
        self.aborted = False
        self.macros_run = 0
        #: Fires with (task_run,) on completion (normal or aborted).
        self.on_done = Signal(f"{task.name}.on_done")
        self._iterator = task.macros()
        self._pending: Event | None = None
        self._suspended = False
        self._interrupted_macro: HardwareMacro | None = None

    @property
    def running(self) -> bool:
        """True while the run is neither finished nor suspended."""
        return not self.finished and not self._suspended

    def start(self) -> "TaskRun":
        """Begin executing macros at the current virtual time."""
        self._schedule_next(0.0)
        return self

    def abort(self) -> None:
        """Stop the run; remaining macros are discarded."""
        if self.finished:
            return
        self.aborted = True
        self._finish()

    # -- suspension (overriding layer) --------------------------------------------

    def suspend(self) -> None:
        """Pause after the current macro (used by the overriding layer)."""
        self._suspended = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def resume(self) -> None:
        """Resume a suspended run."""
        if self.finished:
            raise TaskError(f"cannot resume finished task {self.task.name}")
        if not self._suspended:
            return
        self._suspended = False
        self._schedule_next(0.0)

    # -- event handling ------------------------------------------------------------------

    def deliver_event(self, event: SensorEvent) -> EventDecision:
        """The hardware froze: ask the task, act on its decision."""
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        decision = self.task.on_event(event)
        if decision is EventDecision.CONTINUE:
            self.application.rcx.resume()
            # Re-issue the interrupted command, then continue the sequence.
            if self._interrupted_macro is not None:
                self._execute(self._interrupted_macro, reissued=True)
            else:
                self._schedule_next(0.0)
        else:
            self.application.rcx.resume()
            self.abort()
        return decision

    # -- the macro pump ---------------------------------------------------------------------

    def _schedule_next(self, delay: float) -> None:
        if self.finished or self._suspended:
            return
        self._pending = self.application.simulator.schedule(delay, self._step)

    def _step(self) -> None:
        self._pending = None
        if self.finished or self._suspended:
            return
        if self.application.rcx.frozen:
            return  # an event is being decided; deliver_event re-pumps
        try:
            macro = next(self._iterator)
        except StopIteration:
            self._finish()
            return
        self._execute(macro)

    def _execute(self, macro: HardwareMacro, reissued: bool = False) -> None:
        self._interrupted_macro = macro
        try:
            self.application.rcx.execute(macro)
        except Exception as exc:  # noqa: BLE001 - surfaced as an abort
            logger.warning("task %s macro %r failed: %s", self.task.name, macro, exc)
            self.abort()
            return
        self.macros_run += 1
        self._interrupted_macro = None
        self._schedule_next(macro.duration)

    def _finish(self) -> None:
        self.finished = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        self.on_done.fire(self)

    def __repr__(self) -> str:
        state = (
            "finished" if self.finished else "suspended" if self._suspended else "running"
        )
        return f"<TaskRun {self.task.name} {state} macros={self.macros_run}>"


class DirectMode:
    """Direct connection to the robot hardware, bypassing the task model."""

    def __init__(self, rcx: RCXBrick):
        self.rcx = rcx
        self.commands_issued = 0

    def issue(self, macro: HardwareMacro):
        """Execute one macro immediately (still respects freezing)."""
        result = self.rcx.execute(macro)
        self.commands_issued += 1
        return result


class RobotApplication:
    """The application layer of one robot: task runner + direct mode."""

    def __init__(self, simulator: Simulator, rcx: RCXBrick):
        self.simulator = simulator
        self.rcx = rcx
        self.direct_mode = DirectMode(rcx)
        self.current_run: TaskRun | None = None
        self._override_stack: list[TaskRun] = []
        rcx.on_event.connect(self._hardware_event)

    def run_task(self, task: Task) -> TaskRun:
        """Start a task (aborting any currently running one)."""
        if self.current_run is not None and not self.current_run.finished:
            self.current_run.abort()
        run = TaskRun(self, task)
        self.current_run = run
        run.on_done.connect(self._run_done)
        return run.start()

    def override(self, task: Task) -> TaskRun:
        """Run ``task`` now, suspending the current one (overriding layer)."""
        if self.current_run is not None and not self.current_run.finished:
            self.current_run.suspend()
            self._override_stack.append(self.current_run)
        run = TaskRun(self, task)
        self.current_run = run
        run.on_done.connect(self._run_done)
        return run.start()

    def _run_done(self, run: TaskRun) -> None:
        if run is not self.current_run:
            return
        if self._override_stack:
            resumed = self._override_stack.pop()
            self.current_run = resumed
            if not resumed.finished:
                resumed.resume()
        else:
            self.current_run = None

    def _hardware_event(self, event: SensorEvent) -> None:
        if self.current_run is not None and not self.current_run.finished:
            self.current_run.deliver_event(event)
        else:
            self.rcx.resume()  # nobody to decide; thaw so direct mode works

    def __repr__(self) -> str:
        task = self.current_run.task.name if self.current_run else None
        return f"<RobotApplication rcx={self.rcx.brick_id} task={task}>"
