"""Exception hierarchy for the proactive middleware platform.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause.  Each
layer of the system (simulation kernel, network, AOP engine, discovery,
MIDAS, robot substrate) has its own subtree.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# Simulation kernel
# ---------------------------------------------------------------------------

class SimulationError(ReproError):
    """Base class for discrete-event simulation kernel errors."""


class ClockError(SimulationError):
    """An operation attempted to move a clock backwards in time."""


class ProcessError(SimulationError):
    """A simulated process was used after termination or misconfigured."""


# ---------------------------------------------------------------------------
# Network
# ---------------------------------------------------------------------------

class NetworkError(ReproError):
    """Base class for simulated-network errors."""


class UnknownNodeError(NetworkError):
    """A message was addressed to a node id not attached to the network."""


class NotReachableError(NetworkError):
    """The destination node is outside radio range or partitioned away."""


class TransportError(NetworkError):
    """A request/reply exchange failed (timeout, dropped reply, ...)."""


class RequestTimeout(TransportError):
    """A request did not receive a reply within its deadline."""


class CircuitOpenError(TransportError):
    """A request was rejected locally because the peer's circuit is open."""

    def __init__(self, peer: str, operation: str = ""):
        self.peer = peer
        self.operation = operation
        super().__init__(f"circuit to {peer!r} is open ({operation or 'any'})")


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------

class FaultPlanError(ReproError):
    """A fault plan is malformed (unknown action, bad window, ...)."""


# ---------------------------------------------------------------------------
# AOP engine (PROSE)
# ---------------------------------------------------------------------------

class AopError(ReproError):
    """Base class for PROSE (dynamic AOP) errors."""


class PatternSyntaxError(AopError):
    """A crosscut signature pattern could not be parsed."""


class WeaveError(AopError):
    """An aspect could not be inserted into (woven through) the runtime."""


class NotWovenError(AopError):
    """An attempt was made to withdraw an aspect that is not inserted."""


class ClassNotLoadedError(AopError):
    """An operation required a class that was never loaded into the VM."""


class AdviceError(AopError):
    """Advice code raised an error that the engine chose to surface."""


class AdviceBudgetExceeded(AdviceError):
    """Advice exhausted its supervision step budget and was aborted."""

    def __init__(self, advice_label: str, budget: int):
        self.advice_label = advice_label
        self.budget = budget
        super().__init__(f"advice {advice_label!r} exceeded its step budget ({budget})")


class SandboxViolation(AopError):
    """Extension code attempted a resource access its sandbox policy denies."""

    def __init__(self, capability: str, aspect_name: str | None = None):
        self.capability = capability
        self.aspect_name = aspect_name
        who = aspect_name or "extension"
        super().__init__(f"{who} denied capability {capability!r}")


# ---------------------------------------------------------------------------
# Discovery (Jini workalike)
# ---------------------------------------------------------------------------

class DiscoveryError(ReproError):
    """Base class for spontaneous-networking (discovery) errors."""


class NoRegistrarError(DiscoveryError):
    """No lookup service responded to a discovery request."""


class RegistrationError(DiscoveryError):
    """A service registration was rejected or has expired."""


# ---------------------------------------------------------------------------
# Leasing
# ---------------------------------------------------------------------------

class LeaseError(ReproError):
    """Base class for lease protocol errors."""


class LeaseExpiredError(LeaseError):
    """An operation was attempted on a lease that has already expired."""


class LeaseDeniedError(LeaseError):
    """The grantor refused to grant or renew a lease."""


# ---------------------------------------------------------------------------
# MIDAS extension management
# ---------------------------------------------------------------------------

class MidasError(ReproError):
    """Base class for MIDAS extension-management errors."""


class VerificationError(MidasError):
    """An extension's signature failed verification."""


class UntrustedSignerError(MidasError):
    """An extension is signed by a party the receiver does not trust."""


class UnknownExtensionError(MidasError):
    """An extension id is not present in the relevant catalog/registry."""


class DependencyError(MidasError):
    """An implicit (required) extension could not be resolved."""


class VettingError(MidasError):
    """Static vetting found install-blocking defects in an extension."""

    def __init__(self, message: str, report: object = None):
        #: The offending :class:`~repro.vetting.report.VetReport`, when
        #: the rejection came from an actual vet run (None for e.g. a
        #: tampered report hash).
        self.report = report
        super().__init__(message)


class DistributionError(MidasError):
    """An extension base failed to deliver an extension to a receiver."""


class PipelineOverloadError(MidasError):
    """A base-station pipeline shed work because its accept queue is full."""


# ---------------------------------------------------------------------------
# Robot substrate
# ---------------------------------------------------------------------------

class RobotError(ReproError):
    """Base class for robot-substrate errors."""


class HardwareError(RobotError):
    """A device-level fault (unknown port, invalid power, ...)."""


class HardwareFrozenError(RobotError):
    """A hardware macro was issued while the hardware is frozen by an event."""


class TaskError(RobotError):
    """Task-layer misuse (aborting a task that never ran, ...)."""


class MovementDeniedError(RobotError):
    """A movement was blocked by a control extension's policy."""


class AccessDeniedError(ReproError):
    """A call was rejected by the access-control extension."""


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------

class StoreError(ReproError):
    """Base class for movement-store errors."""


class QueryError(StoreError):
    """A malformed query was issued against the movement store."""
