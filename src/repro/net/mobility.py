"""Mobility models.

Devices in the paper physically roam: a robot is carried between
production halls, a PDA enters a building.  :class:`WaypointMobility`
animates that on the simulator — the node's position is updated in small
time steps along a queue of waypoints, so range-based connectivity (and
with it discovery and lease renewal) changes *gradually*, exactly the
behaviour the revocation machinery must tolerate.
"""

from __future__ import annotations

from typing import Callable

from repro.net.geometry import Position, Region
from repro.net.node import NetworkNode
from repro.sim.kernel import Event, Simulator
from repro.util.signal import Signal

#: Seconds between position updates while moving.
DEFAULT_STEP = 0.5
#: Meters per second of a walking device/robot.
DEFAULT_SPEED = 1.5


class WaypointMobility:
    """Moves a node through a queue of waypoints at constant speed."""

    def __init__(
        self,
        simulator: Simulator,
        node: NetworkNode,
        speed: float = DEFAULT_SPEED,
        step: float = DEFAULT_STEP,
    ):
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed}")
        self.simulator = simulator
        self.node = node
        self.speed = speed
        self.step = step
        #: Fires with (waypoint,) each time a waypoint is reached.
        self.on_arrival = Signal(f"{node.node_id}.on_arrival")
        #: Fires with () when the waypoint queue drains.
        self.on_idle = Signal(f"{node.node_id}.on_idle")
        self._waypoints: list[Position] = []
        self._tick_event: Event | None = None

    @property
    def moving(self) -> bool:
        """True while waypoints remain."""
        return bool(self._waypoints)

    @property
    def destination(self) -> Position | None:
        """The final queued waypoint, if any."""
        return self._waypoints[-1] if self._waypoints else None

    def go_to(self, target: Position | Region) -> None:
        """Append a waypoint (a region's center if given a region)."""
        waypoint = target.center if isinstance(target, Region) else target
        self._waypoints.append(waypoint)
        self._ensure_ticking()

    def stop(self) -> None:
        """Drop all waypoints and halt in place."""
        self._waypoints.clear()
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None

    def eta(self) -> float:
        """Seconds until the last waypoint is reached, at current speed."""
        total = 0.0
        here = self.node.position
        for waypoint in self._waypoints:
            total += here.distance_to(waypoint)
            here = waypoint
        return total / self.speed

    def _ensure_ticking(self) -> None:
        if self._tick_event is None and self._waypoints:
            self._tick_event = self.simulator.schedule(self.step, self._tick)

    def _tick(self) -> None:
        self._tick_event = None
        if not self._waypoints:
            self.on_idle.fire()
            return
        target = self._waypoints[0]
        new_position = self.node.position.moved_towards(target, self.speed * self.step)
        self.node.move_to(new_position)
        if new_position == target:
            self._waypoints.pop(0)
            self.on_arrival.fire(target)
        if self._waypoints:
            self._tick_event = self.simulator.schedule(self.step, self._tick)
        else:
            self.on_idle.fire()

    def __repr__(self) -> str:
        return (
            f"<WaypointMobility {self.node.node_id} "
            f"waypoints={len(self._waypoints)} speed={self.speed}>"
        )


def follow_path(
    simulator: Simulator,
    node: NetworkNode,
    waypoints: list[Position],
    speed: float = DEFAULT_SPEED,
    on_done: Callable[[], None] | None = None,
) -> WaypointMobility:
    """Convenience: walk ``node`` through ``waypoints``, call ``on_done``."""
    mobility = WaypointMobility(simulator, node, speed=speed)
    if on_done is not None:
        def _maybe_done() -> None:
            if not mobility.moving:
                on_done()
        mobility.on_idle.connect(_maybe_done)
    for waypoint in waypoints:
        mobility.go_to(waypoint)
    return mobility
