"""Plane geometry for the physical world model.

Positions are immutable 2-D points in meters.  Regions are axis-aligned
rectangles used for production halls and radio coverage areas.
"""

from __future__ import annotations

import math
from typing import Iterator, NamedTuple


class Position(NamedTuple):
    """An immutable point in the plane (meters)."""

    x: float
    y: float

    def distance_to(self, other: "Position") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def moved_towards(self, target: "Position", distance: float) -> "Position":
        """The point ``distance`` meters from here towards ``target``.

        Never overshoots: if ``target`` is closer than ``distance``, the
        result is ``target`` itself.
        """
        total = self.distance_to(target)
        if total <= distance or total == 0.0:
            return target
        fraction = distance / total
        return Position(
            self.x + (target.x - self.x) * fraction,
            self.y + (target.y - self.y) * fraction,
        )

    def __repr__(self) -> str:
        return f"({self.x:.2f}, {self.y:.2f})"


ORIGIN = Position(0.0, 0.0)


class Region:
    """An axis-aligned rectangle, e.g. the floor area of a production hall."""

    __slots__ = ("name", "min_x", "min_y", "max_x", "max_y")

    def __init__(
        self, min_x: float, min_y: float, max_x: float, max_y: float, name: str = ""
    ):
        if max_x < min_x or max_y < min_y:
            raise ValueError(
                f"degenerate region [{min_x},{max_x}]x[{min_y},{max_y}]"
            )
        self.name = name
        self.min_x = min_x
        self.min_y = min_y
        self.max_x = max_x
        self.max_y = max_y

    @property
    def center(self) -> Position:
        """The region's geometric center."""
        return Position((self.min_x + self.max_x) / 2, (self.min_y + self.max_y) / 2)

    @property
    def width(self) -> float:
        """Extent along x."""
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        """Extent along y."""
        return self.max_y - self.min_y

    def contains(self, position: Position) -> bool:
        """True if ``position`` lies inside (or on the edge of) the region."""
        return (
            self.min_x <= position.x <= self.max_x
            and self.min_y <= position.y <= self.max_y
        )

    def corners(self) -> Iterator[Position]:
        """The four corner points, counter-clockwise from (min_x, min_y)."""
        yield Position(self.min_x, self.min_y)
        yield Position(self.max_x, self.min_y)
        yield Position(self.max_x, self.max_y)
        yield Position(self.min_x, self.max_y)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<Region{label} [{self.min_x},{self.max_x}]x[{self.min_y},{self.max_y}]>"
        )
