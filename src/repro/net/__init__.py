"""Simulated wireless network.

The paper's devices (robots, PDAs, base stations) interact over a wireless
LAN and move physically between locations.  This package reproduces that
substrate on the discrete-event kernel:

- :class:`~repro.net.network.Network` — the radio fabric: range-based
  connectivity, distance-dependent latency, seeded probabilistic loss,
  explicit partitions;
- :class:`~repro.net.node.NetworkNode` — an addressable device with a
  position and radio range;
- :class:`~repro.net.transport.Transport` — request/reply and one-way
  messaging with timeouts, on top of raw messages;
- :class:`~repro.net.mobility.WaypointMobility` — moves a node through
  space over simulated time (walking a robot between production halls).
"""

from repro.net.geometry import Position, Region
from repro.net.message import BROADCAST, Message
from repro.net.mobility import WaypointMobility
from repro.net.network import Network
from repro.net.node import NetworkNode
from repro.net.transport import RemoteError, Transport

__all__ = [
    "BROADCAST",
    "Message",
    "Network",
    "NetworkNode",
    "Position",
    "Region",
    "RemoteError",
    "Transport",
    "WaypointMobility",
]
