"""The radio fabric.

Connectivity is symmetric and range-based: two nodes can exchange messages
only when their distance is within *both* radio ranges (and no explicit
partition separates them).  Latency is distance-dependent plus seeded
jitter; loss is seeded-probabilistic.  All randomness comes from one
``random.Random(seed)``, so runs are reproducible.

Payloads are deep-copied on delivery — see :mod:`repro.net.message`.
"""

from __future__ import annotations

import copy
import logging
import random
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.errors import UnknownNodeError
from repro.net.message import Message
from repro.net.node import NetworkNode
from repro.sim.kernel import Simulator
from repro.util.signal import Signal

logger = logging.getLogger(__name__)


class NetworkConfig:
    """Tunable radio parameters."""

    __slots__ = (
        "base_latency",
        "latency_per_meter",
        "jitter",
        "loss_probability",
        "fifo_links",
    )

    def __init__(
        self,
        base_latency: float = 0.002,
        latency_per_meter: float = 0.00001,
        jitter: float = 0.0005,
        loss_probability: float = 0.0,
        fifo_links: bool = True,
    ):
        self.base_latency = base_latency
        self.latency_per_meter = latency_per_meter
        self.jitter = jitter
        self.loss_probability = loss_probability
        #: Deliver messages on each (source, destination) link in send
        #: order (link-layer/TCP-style ordering).  Jitter still varies
        #: latency but can no longer reorder a flow.
        self.fifo_links = fifo_links


@dataclass(frozen=True)
class FaultVerdict:
    """What a fault hook wants done with one message.

    ``drop_reason`` set means the message dies (counted and reported
    like any other drop).  Otherwise it is delivered ``copies`` times,
    each ``extra_delay`` seconds later than physics alone would allow;
    ``bypass_fifo`` exempts it from link-FIFO ordering so it can
    overtake earlier traffic (reordering).
    """

    drop_reason: str | None = None
    extra_delay: float = 0.0
    copies: int = 1
    bypass_fifo: bool = False


#: Hook signature: (message, source, destination) -> verdict or None.
#: None means "no opinion" — the message takes the normal path.
FaultHook = Callable[[Message, NetworkNode, NetworkNode], "FaultVerdict | None"]

#: Shared "no opinion" verdict, so the unfaulted path allocates nothing.
_CLEAN = FaultVerdict()


class Network:
    """A simulated wireless network over the discrete-event kernel."""

    def __init__(
        self,
        simulator: Simulator,
        config: NetworkConfig | None = None,
        seed: int = 0,
        copy_payloads: bool = True,
    ):
        self.simulator = simulator
        self.config = config or NetworkConfig()
        self.copy_payloads = copy_payloads
        self._rng = random.Random(seed)
        self._nodes: dict[str, NetworkNode] = {}
        self._partitions: set[frozenset[str]] = set()
        self._wired: set[frozenset[str]] = set()
        self._link_clock: dict[tuple[str, str], float] = {}
        #: Optional fault-injection hook (see :mod:`repro.faults`).  None
        #: keeps transmission on the exact unfaulted code path — no call,
        #: no RNG draw — so chaos tooling costs nothing when unused.
        self.fault_hook: FaultHook | None = None
        #: Fires with (message, reason) when a message cannot be delivered.
        self.on_drop = Signal("network.on_drop")
        self.messages_transmitted = 0
        self.messages_delivered = 0
        self.messages_dropped = 0

    @property
    def rng(self) -> random.Random:
        """The network's seeded RNG (shared with fault injection so one
        seed reproduces an entire chaos run)."""
        return self._rng

    # -- membership --------------------------------------------------------------

    def attach(self, node: NetworkNode) -> NetworkNode:
        """Add ``node`` to the network; returns it for chaining."""
        if node.node_id in self._nodes:
            raise UnknownNodeError(f"node id {node.node_id!r} already attached")
        self._nodes[node.node_id] = node
        node.network = self
        return node

    def detach(self, node: NetworkNode) -> None:
        """Remove ``node``; in-flight messages to it will be dropped."""
        self._nodes.pop(node.node_id, None)
        node.network = None

    def node(self, node_id: str) -> NetworkNode:
        """Look up an attached node by id."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownNodeError(f"no node {node_id!r} on this network") from None

    def nodes(self) -> Iterator[NetworkNode]:
        """All attached nodes."""
        return iter(self._nodes.values())

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    # -- partitions ----------------------------------------------------------------

    def partition(self, node_a: str, node_b: str) -> None:
        """Forcibly sever the link between two nodes (fault injection).

        Messages already in flight on the link were transmitted before
        the wall went up and still arrive — only *detaching* a node kills
        its in-flight traffic.  Accounting stays consistent either way:
        every unicast transmission ends in exactly one delivery or one
        counted drop.
        """
        self._partitions.add(frozenset((node_a, node_b)))

    def heal(self, node_a: str, node_b: str) -> None:
        """Undo a :meth:`partition`."""
        self._partitions.discard(frozenset((node_a, node_b)))

    def heal_all(self) -> None:
        """Undo all partitions."""
        self._partitions.clear()

    # -- wired links ---------------------------------------------------------------

    def wire(self, node_a: str, node_b: str) -> None:
        """Connect two nodes by wire: reachable at any distance.

        Models the fixed backbone between base stations (partitions still
        sever wired links — backbones can fail too).
        """
        self._wired.add(frozenset((node_a, node_b)))

    def unwire(self, node_a: str, node_b: str) -> None:
        """Remove a wired link (radio rules apply again)."""
        self._wired.discard(frozenset((node_a, node_b)))

    # -- connectivity -----------------------------------------------------------------

    def reachable(self, source: NetworkNode, destination: NetworkNode) -> bool:
        """Can a message travel from ``source`` to ``destination`` right now?"""
        link = frozenset((source.node_id, destination.node_id))
        if link in self._partitions:
            return False
        if link in self._wired:
            return True
        distance = source.distance_to(destination)
        return distance <= source.radio_range and distance <= destination.radio_range

    def neighbors(self, node: NetworkNode) -> list[NetworkNode]:
        """All nodes currently reachable from ``node``."""
        return [
            other
            for other in self._nodes.values()
            if other is not node and self.reachable(node, other)
        ]

    # -- transmission ------------------------------------------------------------------

    def transmit(self, message: Message) -> None:
        """Send ``message`` from its source; called by nodes."""
        self.messages_transmitted += 1
        source = self._nodes.get(message.source)
        if source is None:
            self._drop(message, "source detached")
            return
        if message.is_broadcast:
            for neighbor in self.neighbors(source):
                self._transmit_one(message, source, neighbor)
            return
        destination = self._nodes.get(message.destination)
        if destination is None:
            self._drop(message, "destination unknown")
            return
        self._transmit_one(message, source, destination)

    def _transmit_one(
        self, message: Message, source: NetworkNode, destination: NetworkNode
    ) -> None:
        if not self.reachable(source, destination):
            self._drop(message, "out of range")
            return
        verdict = _CLEAN
        if self.fault_hook is not None:
            verdict = self.fault_hook(message, source, destination) or _CLEAN
            if verdict.drop_reason is not None:
                self._drop(message, verdict.drop_reason)
                return
        if (
            self.config.loss_probability > 0
            and self._rng.random() < self.config.loss_probability
        ):
            self._drop(message, "radio loss")
            return
        fifo = self.config.fifo_links and not verdict.bypass_fifo
        for _ in range(verdict.copies):
            deliver_at = (
                self.simulator.now
                + self._latency(source, destination)
                + verdict.extra_delay
            )
            if fifo:
                link = (source.node_id, destination.node_id)
                deliver_at = max(deliver_at, self._link_clock.get(link, 0.0))
                self._link_clock[link] = deliver_at
            self.simulator.schedule_at(
                deliver_at, self._deliver, message, destination.node_id
            )

    def _latency(self, source: NetworkNode, destination: NetworkNode) -> float:
        distance = source.distance_to(destination)
        jitter = self._rng.uniform(0, self.config.jitter) if self.config.jitter else 0.0
        return (
            self.config.base_latency
            + self.config.latency_per_meter * distance
            + jitter
        )

    def _deliver(self, message: Message, destination_id: str) -> None:
        destination = self._nodes.get(destination_id)
        if destination is None:
            self._drop(message, "destination detached in flight")
            return
        if self.copy_payloads and message.payload is not None:
            message = Message(
                message.source,
                message.destination,
                message.kind,
                copy.deepcopy(message.payload),
                message.message_id,
                trace=message.trace,
            )
        self.messages_delivered += 1
        destination.deliver(message)

    def _drop(self, message: Message, reason: str) -> None:
        self.messages_dropped += 1
        logger.debug("dropped %r: %s", message, reason)
        self.on_drop.fire(message, reason)

    def __repr__(self) -> str:
        return f"<Network nodes={len(self._nodes)} delivered={self.messages_delivered}>"
