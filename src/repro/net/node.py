"""Network nodes.

A :class:`NetworkNode` is an addressable device attached to a
:class:`~repro.net.network.Network`: it has a position, a radio range, and
a table of message handlers keyed by message kind.  Higher layers
(transport, discovery, MIDAS) register their handlers here; the node
itself knows nothing about protocols.
"""

from __future__ import annotations

import logging
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import NetworkError
from repro.net.geometry import ORIGIN, Position
from repro.net.message import BROADCAST, Message
from repro.telemetry import runtime as _telemetry
from repro.util.signal import Signal

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.network import Network

logger = logging.getLogger(__name__)

Handler = Callable[[Message], None]

#: Radio range, in meters, of a typical node (a WLAN cell).
DEFAULT_RADIO_RANGE = 50.0


class NetworkNode:
    """An addressable device on the simulated radio network."""

    def __init__(
        self,
        node_id: str,
        position: Position = ORIGIN,
        radio_range: float = DEFAULT_RADIO_RANGE,
    ):
        if radio_range <= 0:
            raise NetworkError(f"radio range must be positive, got {radio_range}")
        self.node_id = node_id
        self.position = position
        self.radio_range = radio_range
        self.network: "Network | None" = None
        #: Fires with (message,) when a message with no handler arrives.
        self.on_unhandled = Signal(f"{node_id}.on_unhandled")
        #: Fires with (position,) whenever the node moves.
        self.on_moved = Signal(f"{node_id}.on_moved")
        self._handlers: dict[str, Handler] = {}
        self.messages_sent = 0
        self.messages_received = 0

    # -- attachment ------------------------------------------------------------

    @property
    def attached(self) -> bool:
        """True while the node is attached to a network."""
        return self.network is not None

    # -- sending ----------------------------------------------------------------

    def send(self, destination: str, kind: str, payload: Any = None) -> Message:
        """Send a unicast message; delivery is best-effort (radio).

        A detached node's sends vanish silently — its software may still
        be running, but the radio is gone (crash/power-off model).
        """
        message = Message(
            self.node_id, destination, kind, payload,
            trace=_telemetry.current_wire(),
        )
        if self.network is None:
            logger.debug("node %s is detached; dropping %r", self.node_id, message)
            return message
        self.network.transmit(message)
        self.messages_sent += 1
        return message

    def broadcast(self, kind: str, payload: Any = None) -> Message:
        """Send to every node currently in radio range."""
        message = Message(
            self.node_id, BROADCAST, kind, payload,
            trace=_telemetry.current_wire(),
        )
        if self.network is None:
            logger.debug("node %s is detached; dropping %r", self.node_id, message)
            return message
        self.network.transmit(message)
        self.messages_sent += 1
        return message

    # -- receiving ----------------------------------------------------------------

    def set_handler(self, kind: str, handler: Handler) -> None:
        """Install the handler for messages of ``kind`` (one per kind)."""
        self._handlers[kind] = handler

    def remove_handler(self, kind: str) -> None:
        """Remove the handler for ``kind`` (no error if absent)."""
        self._handlers.pop(kind, None)

    def deliver(self, message: Message) -> None:
        """Called by the network when a message arrives at this node.

        If the message carries a telemetry trace context, the handler
        runs under it, so spans it opens join the sender's trace.
        """
        self.messages_received += 1
        if message.trace is None:
            self._dispatch(message)
            return
        token = _telemetry.activate_wire(message.trace)
        try:
            self._dispatch(message)
        finally:
            _telemetry.deactivate(token)

    def _dispatch(self, message: Message) -> None:
        handler = self._handlers.get(message.kind)
        if handler is None:
            self.on_unhandled.fire(message)
            return
        try:
            handler(message)
        except Exception as exc:  # noqa: BLE001 - a bad handler must not kill the net
            logger.warning(
                "node %s handler for %s failed: %s", self.node_id, message.kind, exc
            )

    # -- movement -------------------------------------------------------------------

    def move_to(self, position: Position) -> None:
        """Teleport the node to ``position`` (mobility models animate this)."""
        self.position = position
        self.on_moved.fire(position)

    def distance_to(self, other: "NetworkNode") -> float:
        """Euclidean distance to another node."""
        return self.position.distance_to(other.position)

    def __repr__(self) -> str:
        return f"<NetworkNode {self.node_id} at {self.position}>"
