"""Network messages.

A message carries a ``kind`` string used for handler dispatch and an
arbitrary ``payload``.  The network deep-copies payloads on delivery, so
two nodes can never accidentally share mutable state through a message —
the same discipline a serializing network imposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.util.ids import fresh_id

#: Destination address meaning "every node currently in radio range".
BROADCAST = "*"


@dataclass(frozen=True)
class Message:
    """One network datagram."""

    source: str
    destination: str
    kind: str
    payload: Any = None
    message_id: str = field(default_factory=lambda: fresh_id("msg"))
    #: Telemetry trace context (wire form of
    #: :class:`repro.telemetry.spans.SpanContext`), stamped by the sending
    #: node when an operation span is active there.  None on ordinary
    #: traffic; handlers on the receiving node run under this context, so
    #: cross-node protocol chains share one trace id.
    trace: dict | None = None

    @property
    def is_broadcast(self) -> bool:
        """True if this message was addressed to every node in range."""
        return self.destination == BROADCAST

    def __repr__(self) -> str:
        return (
            f"<Message {self.kind} {self.source}->{self.destination} "
            f"id={self.message_id}>"
        )
