"""Request/reply transport.

Protocols above the raw network (discovery, lease renewal, extension
delivery, remote logging) all need "send a request, get a reply or a
timeout".  :class:`Transport` provides that as a callback API — natural in
a discrete-event world where nothing may block:

- servers register *operation* handlers; a handler returns the reply body
  or raises (the error travels back as a fault reply);
- clients call :meth:`Transport.request` with ``on_reply``/``on_error``
  callbacks and get a timeout if the radio eats either direction.

One-way ``notify`` and community-wide ``broadcast`` round out the API.
"""

from __future__ import annotations

import contextvars
import logging
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import RequestTimeout, TransportError
from repro.net.message import Message
from repro.net.node import NetworkNode
from repro.sim.kernel import Event, Simulator
from repro.telemetry import runtime as _telemetry
from repro.util.ids import fresh_id

logger = logging.getLogger(__name__)

_REQUEST = "transport.request"
_REPLY = "transport.reply"
_NOTIFY = "transport.notify"

#: Seconds a request waits for its reply before failing.
DEFAULT_TIMEOUT = 2.0

#: Served request ids remembered for at-most-once execution.  A
#: duplicated request (radio echo, injected duplicate) within the window
#: re-sends the cached reply instead of re-running the handler.
DEDUP_WINDOW = 128

_caller: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "transport_current_caller", default=None
)


def current_caller() -> str | None:
    """The node id of the remote caller, inside a handler execution.

    This is the "session information like the caller's identity" that the
    paper's implicit session-management extension extracts (Fig. 2 step
    2): while a transport handler runs, any code it reaches — including
    advice woven into the application — can learn who called.
    """
    return _caller.get()


class RemoteError(TransportError):
    """A handler on the remote node raised; carries the remote message."""

    def __init__(self, operation: str, remote_message: str):
        self.operation = operation
        self.remote_message = remote_message
        super().__init__(f"remote {operation} failed: {remote_message}")


@dataclass(frozen=True)
class _RequestBody:
    request_id: str
    operation: str
    body: Any


@dataclass(frozen=True)
class _ReplyBody:
    request_id: str
    operation: str
    body: Any
    error: str | None


OnReply = Callable[[Any], None]
OnError = Callable[[Exception], None]
OperationHandler = Callable[[str, Any], Any]  # (sender_id, body) -> reply body


class _Pending:
    __slots__ = ("on_reply", "on_error", "timeout_event", "operation", "sent_at")

    def __init__(
        self,
        operation: str,
        on_reply: OnReply | None,
        on_error: OnError | None,
        timeout_event: Event,
        sent_at: float,
    ):
        self.operation = operation
        self.on_reply = on_reply
        self.on_error = on_error
        self.timeout_event = timeout_event
        #: Simulated send instant, for round-trip-time telemetry.
        self.sent_at = sent_at


class Transport:
    """Request/reply and one-way messaging for one node."""

    def __init__(
        self,
        node: NetworkNode,
        simulator: Simulator,
        default_timeout: float = DEFAULT_TIMEOUT,
    ):
        self.node = node
        self.simulator = simulator
        self.default_timeout = default_timeout
        self._handlers: dict[str, OperationHandler] = {}
        self._pending: dict[str, _Pending] = {}
        #: request id -> reply already sent, for at-most-once execution.
        self._served: OrderedDict[str, _ReplyBody] = OrderedDict()
        self.requests_sent = 0
        self.requests_served = 0
        self.timeouts = 0
        #: Replies that arrived with no pending request (late after a
        #: timeout, or wire duplicates of an answered request).  Each is
        #: dropped exactly once and never re-fires ``on_reply``.
        self.stray_replies = 0
        #: Wire-duplicated requests answered from the served cache.
        self.duplicate_requests = 0
        node.set_handler(_REQUEST, self._handle_request)
        node.set_handler(_REPLY, self._handle_reply)
        node.set_handler(_NOTIFY, self._handle_notify)

    # -- server side ------------------------------------------------------------

    def register(self, operation: str, handler: OperationHandler) -> None:
        """Serve ``operation``; the handler returns the reply body."""
        self._handlers[operation] = handler

    def unregister(self, operation: str) -> None:
        """Stop serving ``operation``."""
        self._handlers.pop(operation, None)

    def serves(self, operation: str) -> bool:
        """True if a handler is registered for ``operation``."""
        return operation in self._handlers

    # -- client side ---------------------------------------------------------------

    def request(
        self,
        destination: str,
        operation: str,
        body: Any = None,
        on_reply: OnReply | None = None,
        on_error: OnError | None = None,
        timeout: float | None = None,
    ) -> str:
        """Send a request; exactly one of the callbacks will fire later.

        Returns the request id.  With no ``on_error``, errors are logged
        and swallowed (fire-and-hope semantics fit for periodic renewals).
        """
        request_id = fresh_id("req")
        deadline = timeout if timeout is not None else self.default_timeout
        timeout_event = self.simulator.schedule(
            deadline, self._handle_timeout, request_id
        )
        self._pending[request_id] = _Pending(
            operation, on_reply, on_error, timeout_event, self.simulator.now
        )
        self.requests_sent += 1
        _telemetry.get_recorder().count(
            "net.transport.requests", node=self.node.node_id, operation=operation
        )
        self.node.send(
            destination, _REQUEST, _RequestBody(request_id, operation, body)
        )
        return request_id

    def notify(self, destination: str, operation: str, body: Any = None) -> None:
        """One-way message to ``destination`` (no reply, no timeout)."""
        self.node.send(destination, _NOTIFY, _RequestBody("", operation, body))

    def broadcast(self, operation: str, body: Any = None) -> None:
        """One-way message to every node in radio range."""
        self.node.broadcast(_NOTIFY, _RequestBody("", operation, body))

    # -- crash support -----------------------------------------------------------------

    def reset_volatile(self) -> None:
        """Forget all in-flight client state (crash model: memory wipe).

        Pending callbacks never fire and their timeout events are
        cancelled; the served-request cache is cleared too, so a
        restarted server answers old duplicates by re-executing — which
        is why handlers must stay idempotent.
        """
        for pending in self._pending.values():
            pending.timeout_event.cancel()
        self._pending.clear()
        self._served.clear()

    # -- plumbing ---------------------------------------------------------------------

    def _handle_request(self, message: Message) -> None:
        req: _RequestBody = message.payload
        cached = self._served.get(req.request_id)
        if cached is not None:
            # At-most-once: a duplicated request must not re-run the
            # handler; the caller just gets the original answer again.
            self.duplicate_requests += 1
            _telemetry.get_recorder().count(
                "net.transport.duplicate_requests",
                node=self.node.node_id,
                operation=req.operation,
            )
            self.node.send(message.source, _REPLY, cached)
            return
        handler = self._handlers.get(req.operation)
        if handler is None:
            reply = _ReplyBody(
                req.request_id, req.operation, None, f"no such operation {req.operation!r}"
            )
        else:
            self.requests_served += 1
            _telemetry.get_recorder().count(
                "net.transport.served",
                node=self.node.node_id,
                operation=req.operation,
            )
            token = _caller.set(message.source)
            try:
                result = handler(message.source, req.body)
                reply = _ReplyBody(req.request_id, req.operation, result, None)
            except Exception as exc:  # noqa: BLE001 - fault travels to caller
                logger.debug(
                    "%s: handler %s raised %s", self.node.node_id, req.operation, exc
                )
                reply = _ReplyBody(req.request_id, req.operation, None, str(exc))
            finally:
                _caller.reset(token)
        self._remember_served(req.request_id, reply)
        self.node.send(message.source, _REPLY, reply)

    def _remember_served(self, request_id: str, reply: _ReplyBody) -> None:
        if not request_id:
            return
        self._served[request_id] = reply
        while len(self._served) > DEDUP_WINDOW:
            self._served.popitem(last=False)

    def _handle_reply(self, message: Message) -> None:
        reply: _ReplyBody = message.payload
        pending = self._pending.pop(reply.request_id, None)
        if pending is None:
            # Late (after timeout) or duplicated reply: drop exactly once,
            # visibly — duplicate injection relies on this being counted.
            self.stray_replies += 1
            recorder = _telemetry.get_recorder()
            recorder.count(
                "net.transport.stray_replies",
                node=self.node.node_id,
                operation=reply.operation,
            )
            recorder.event(
                "transport.stray_reply",
                node=self.node.node_id,
                operation=reply.operation,
                request_id=reply.request_id,
            )
            return
        pending.timeout_event.cancel()
        recorder = _telemetry.get_recorder()
        recorder.observe(
            "net.transport.rtt",
            self.simulator.now - pending.sent_at,
            operation=reply.operation,
        )
        recorder.count(
            "net.transport.replies",
            node=self.node.node_id,
            operation=reply.operation,
            outcome="error" if reply.error is not None else "ok",
        )
        if reply.error is not None:
            self._fail(pending, RemoteError(reply.operation, reply.error))
        elif pending.on_reply is not None:
            pending.on_reply(reply.body)

    def _handle_notify(self, message: Message) -> None:
        req: _RequestBody = message.payload
        handler = self._handlers.get(req.operation)
        if handler is None:
            return
        token = _caller.set(message.source)
        try:
            handler(message.source, req.body)
        except Exception as exc:  # noqa: BLE001 - notifications are best effort
            logger.warning(
                "%s: notify handler %s failed: %s",
                self.node.node_id,
                req.operation,
                exc,
            )
        finally:
            _caller.reset(token)

    def _handle_timeout(self, request_id: str) -> None:
        pending = self._pending.pop(request_id, None)
        if pending is None:
            return  # already answered (or already timed out): at most once
        self.timeouts += 1
        recorder = _telemetry.get_recorder()
        recorder.count(
            "net.transport.timeouts",
            node=self.node.node_id,
            operation=pending.operation,
        )
        recorder.event(
            "transport.timeout",
            node=self.node.node_id,
            operation=pending.operation,
            request_id=request_id,
            waited=self.simulator.now - pending.sent_at,
        )
        self._fail(
            pending,
            RequestTimeout(
                f"{pending.operation} to remote node timed out "
                f"(node {self.node.node_id})"
            ),
        )

    @staticmethod
    def _fail(pending: _Pending, error: Exception) -> None:
        if pending.on_error is not None:
            pending.on_error(error)
        else:
            logger.debug("unobserved request failure: %s", error)

    def __repr__(self) -> str:
        return f"<Transport {self.node.node_id} pending={len(self._pending)}>"
