"""Physical environments: production halls with per-hall policies.

The introduction's motivating scenario: "a mobile robot used in different
production halls.  Every time the robot enters a particular hall, it is
the hall (e.g., a base station supervising the hall) that adapts the
robot to the task at hand."

A :class:`ProductionHall` is a floor region supervised by a base station
whose radio covers the hall; its *policy* is the extension catalog of
that station.  :class:`ProactiveEnvironment` groups the halls of a site
and answers geometric questions ("which hall is this robot in?").
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping

from repro.aop.aspect import Aspect
from repro.core.platform import BaseStation, MobileNode, ProactivePlatform
from repro.net.geometry import Position, Region


class ProductionHall:
    """One hall: a region, a supervising base station, a policy."""

    def __init__(self, region: Region, station: BaseStation):
        self.region = region
        self.station = station

    @property
    def name(self) -> str:
        """The hall's label (its region name)."""
        return self.region.name or self.station.node_id

    def covers(self, position: Position) -> bool:
        """True if ``position`` is inside this hall."""
        return self.region.contains(position)

    def set_policy(self, extensions: Mapping[str, Callable[[], Aspect]]) -> None:
        """Install this hall's extension policy (name → factory)."""
        for name, factory in extensions.items():
            self.station.add_extension(name, factory)

    def __repr__(self) -> str:
        return (
            f"<ProductionHall {self.name} policy={self.station.catalog.names()}>"
        )


class ProactiveEnvironment:
    """A site: several halls sharing one platform."""

    def __init__(self, platform: ProactivePlatform):
        self.platform = platform
        self.halls: list[ProductionHall] = []

    def add_hall(
        self,
        region: Region,
        policy: Mapping[str, Callable[[], Aspect]] | None = None,
        radio_margin: float = 5.0,
    ) -> ProductionHall:
        """Create a hall: base station at the region center, radio sized
        to cover the whole region (plus ``radio_margin`` meters)."""
        center = region.center
        corner_distance = max(center.distance_to(corner) for corner in region.corners())
        station = self.platform.create_base_station(
            f"base.{region.name or len(self.halls)}",
            position=center,
            radio_range=corner_distance + radio_margin,
        )
        hall = ProductionHall(region, station)
        if policy:
            hall.set_policy(policy)
        self.halls.append(hall)
        return hall

    def hall_of(self, node: MobileNode) -> ProductionHall | None:
        """The hall whose floor the node currently stands on, if any."""
        for hall in self.halls:
            if hall.covers(node.node.position):
                return hall
        return None

    def hall_named(self, name: str) -> ProductionHall:
        """Look up a hall by name."""
        for hall in self.halls:
            if hall.name == name:
                return hall
        raise KeyError(f"no hall named {name!r}")

    def __iter__(self) -> Iterator[ProductionHall]:
        return iter(self.halls)

    def __repr__(self) -> str:
        return f"<ProactiveEnvironment halls={[hall.name for hall in self.halls]}>"
